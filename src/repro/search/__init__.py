"""Cost-model-guided schedule search (the Fig. 14b experiment)."""

from repro.search.ansor import SearchResult, evolutionary_search, search_model_schedules

__all__ = ["SearchResult", "evolutionary_search", "search_model_schedules"]
