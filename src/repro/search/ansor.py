"""Ansor-style schedule search driven by a cost model (Section 7.5, Fig. 14b).

Each search round samples a population of candidate schedules, asks the cost
model to score them, keeps the most promising candidates and measures only
those on the (simulated) device -- exactly the role a cost model plays inside
Ansor's auto-tuner.  A better cost model prunes the space more effectively
and therefore finds faster schedules within the same measurement budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.devices.simulator import DeviceSimulator
from repro.devices.spec import DeviceSpec, get_device
from repro.errors import SearchError
from repro.graph.model import ModelGraph
from repro.tir.lower import lower
from repro.tir.program import TensorProgram
from repro.tir.schedule import Schedule, random_schedule
from repro.tir.task import Task
from repro.utils.rng import new_rng, spawn_rng

# A cost model for search: maps a list of candidate programs to scores where
# LOWER means predicted-faster.
ScoreFn = Callable[[List[TensorProgram]], np.ndarray]


@dataclass
class SearchResult:
    """Outcome of a schedule search for one task."""

    task_key: str
    best_latency_s: float
    best_schedule: Optional[Schedule]
    best_latency_per_round: List[float] = field(default_factory=list)
    num_measurements: int = 0


def evolutionary_search(
    task: Task,
    device: Union[str, DeviceSpec],
    score_fn: ScoreFn,
    num_rounds: int = 10,
    population: int = 16,
    measurements_per_round: int = 4,
    seed: int | str | None = 0,
) -> SearchResult:
    """Search for a fast schedule of ``task`` on ``device``.

    Per round: sample ``population`` random candidate schedules, score them
    with ``score_fn``, measure the ``measurements_per_round`` best-scored
    candidates on the simulated device and keep the best latency seen so far
    (the quantity Fig. 14b plots against the number of rounds).
    """
    if num_rounds <= 0 or population <= 0:
        raise SearchError("num_rounds and population must be positive")
    device = get_device(device) if isinstance(device, str) else device
    simulator = DeviceSimulator(device, seed=seed)
    rng = new_rng(seed)

    best_latency = float("inf")
    best_schedule: Optional[Schedule] = None
    history: List[float] = []
    measurements = 0

    for round_index in range(num_rounds):
        round_rng = spawn_rng(rng, "round", round_index)
        candidates: List[Tuple[Schedule, TensorProgram]] = []
        for _ in range(population):
            schedule = random_schedule(task, round_rng, target_kind=device.taxonomy)
            candidates.append((schedule, lower(task, schedule)))
        scores = np.asarray(score_fn([program for _, program in candidates]), dtype=np.float64)
        if scores.shape[0] != len(candidates):
            raise SearchError("score function returned the wrong number of scores")
        chosen = np.argsort(scores)[: max(measurements_per_round, 1)]
        for index in chosen:
            schedule, program = candidates[int(index)]
            latency = simulator.measure(program)
            measurements += 1
            if latency < best_latency:
                best_latency = latency
                best_schedule = schedule
        history.append(best_latency)

    return SearchResult(
        task_key=task.workload_key,
        best_latency_s=best_latency,
        best_schedule=best_schedule,
        best_latency_per_round=history,
        num_measurements=measurements,
    )


def search_model_schedules(
    model: ModelGraph,
    device: Union[str, DeviceSpec],
    score_fn: ScoreFn,
    num_rounds: int = 10,
    population: int = 16,
    measurements_per_round: int = 4,
    seed: int | str | None = 0,
) -> Dict[str, SearchResult]:
    """Run the schedule search for every unique task of a model.

    Returns results keyed by workload key; the sum of best latencies is the
    tuned model latency Fig. 14b tracks.
    """
    results: Dict[str, SearchResult] = {}
    for key, task in model.unique_tasks().items():
        results[key] = evolutionary_search(
            task,
            device,
            score_fn,
            num_rounds=num_rounds,
            population=population,
            measurements_per_round=measurements_per_round,
            seed=(seed, key),
        )
    return results
