"""Ansor-style schedule search driven by a cost model (Section 7.5, Fig. 14b).

Each search round samples a population of candidate schedules, asks the cost
model to score them, keeps the most promising candidates and measures only
those on the (simulated) device -- exactly the role a cost model plays inside
Ansor's auto-tuner.  A better cost model prunes the space more effectively
and therefore finds faster schedules within the same measurement budget.

The scorer contract is deliberately batched: ``score_fn`` receives the whole
round's candidate list at once, so a serving-backed scorer (see
:mod:`repro.serving.search`) can answer each round with one vectorized
predict instead of one model call per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.devices.simulator import DeviceSimulator
from repro.devices.spec import DeviceSpec, get_device
from repro.errors import SearchError
from repro.graph.model import ModelGraph
from repro.tir.lower import lower
from repro.tir.program import TensorProgram
from repro.tir.schedule import Schedule, random_schedule, schedule_from_dict, schedule_to_dict
from repro.tir.task import Task
from repro.utils.rng import derive_rng, spawn_rng

# A cost model for search: maps a list of candidate programs to scores where
# LOWER means predicted-faster.  Must return one finite score per candidate.
ScoreFn = Callable[[List[TensorProgram]], np.ndarray]


@dataclass
class SearchResult:
    """Outcome of a schedule search for one task."""

    task_key: str
    best_latency_s: float
    best_schedule: Optional[Schedule]
    best_latency_per_round: List[float] = field(default_factory=list)
    num_measurements: int = 0
    num_scored: int = 0
    scoring_batches: int = 0

    def to_dict(self) -> Dict:
        """A JSON-serializable dict; the exact inverse of :meth:`from_dict`.

        Floats survive a JSON round-trip bit-identically (``json`` emits
        ``repr``-based shortest decimals), so a persisted result replays to
        the same ``SearchResult`` the search produced.
        """
        return {
            "task_key": self.task_key,
            "best_latency_s": self.best_latency_s,
            "best_schedule": (
                schedule_to_dict(self.best_schedule) if self.best_schedule is not None else None
            ),
            "best_latency_per_round": list(self.best_latency_per_round),
            "num_measurements": self.num_measurements,
            "num_scored": self.num_scored,
            "scoring_batches": self.scoring_batches,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "SearchResult":
        """Rebuild a result from :meth:`to_dict` output."""
        schedule = payload.get("best_schedule")
        return cls(
            task_key=payload["task_key"],
            best_latency_s=float(payload["best_latency_s"]),
            best_schedule=schedule_from_dict(schedule) if schedule is not None else None,
            best_latency_per_round=[float(v) for v in payload.get("best_latency_per_round", [])],
            num_measurements=int(payload.get("num_measurements", 0)),
            num_scored=int(payload.get("num_scored", 0)),
            scoring_batches=int(payload.get("scoring_batches", 0)),
        )


def _validate_scores(scores: object, num_candidates: int) -> np.ndarray:
    """Check a scorer's output against the ScoreFn contract.

    The contract: a 1-D array with exactly one finite float per candidate.
    NaN/inf scores would silently poison ``argsort`` (NaN sorts last on some
    paths, first on others), so they are rejected loudly instead.
    """
    try:
        array = np.asarray(scores, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise SearchError(f"score function returned non-numeric scores: {exc}") from exc
    if array.ndim != 1:
        raise SearchError(
            f"score function must return a 1-D array of scores, got shape {array.shape}"
        )
    if array.shape[0] != num_candidates:
        raise SearchError(
            "score function returned the wrong number of scores: "
            f"expected {num_candidates}, got {array.shape[0]}"
        )
    if not np.all(np.isfinite(array)):
        bad = int(np.count_nonzero(~np.isfinite(array)))
        raise SearchError(
            f"score function returned {bad} non-finite score(s) (NaN/inf) "
            f"out of {num_candidates}; every candidate needs a finite score"
        )
    return array


def _search_rng(seed: Union[int, str, tuple, np.random.Generator, None]) -> np.random.Generator:
    """Seed handling for the search loop.

    Hashable seeds (int/str/tuple/None) keep the historical byte-identical
    stream.  A ``Generator`` seed used to be aliased directly -- consuming
    the caller's stream and (worse) hashing the generator's ``repr``, which
    embeds a memory address, inside ``DeviceSimulator`` -- so a Generator now
    derives an independent child stream instead.
    """
    return derive_rng(seed, "evolutionary-search")


def evolutionary_search(
    task: Task,
    device: Union[str, DeviceSpec],
    score_fn: ScoreFn,
    num_rounds: int = 10,
    population: int = 16,
    measurements_per_round: int = 4,
    seed: Union[int, str, tuple, np.random.Generator, None] = 0,
) -> SearchResult:
    """Search for a fast schedule of ``task`` on ``device``.

    Per round: sample ``population`` random candidate schedules, score them
    with ``score_fn`` in ONE batched call, measure the
    ``measurements_per_round`` best-scored candidates on the simulated device
    and keep the best latency seen so far (the quantity Fig. 14b plots
    against the number of rounds).
    """
    if num_rounds <= 0 or population <= 0:
        raise SearchError("num_rounds and population must be positive")
    device = get_device(device) if isinstance(device, str) else device
    rng = _search_rng(seed)
    # With a Generator seed the simulator must not hash the generator's repr
    # (it embeds a memory address); draw a plain int seed from the stream.
    sim_seed = int(rng.integers(0, 2**31 - 1)) if isinstance(seed, np.random.Generator) else seed
    simulator = DeviceSimulator(device, seed=sim_seed)

    best_latency = float("inf")
    best_schedule: Optional[Schedule] = None
    history: List[float] = []
    measurements = 0
    scored = 0
    scoring_batches = 0

    for round_index in range(num_rounds):
        round_rng = spawn_rng(rng, "round", round_index)
        candidates: List[Tuple[Schedule, TensorProgram]] = []
        for _ in range(population):
            schedule = random_schedule(task, round_rng, target_kind=device.taxonomy)
            candidates.append((schedule, lower(task, schedule)))
        scores = _validate_scores(
            score_fn([program for _, program in candidates]), len(candidates)
        )
        scored += len(candidates)
        scoring_batches += 1
        chosen = np.argsort(scores)[: max(measurements_per_round, 1)]
        for index in chosen:
            schedule, program = candidates[int(index)]
            latency = simulator.measure(program)
            measurements += 1
            if latency < best_latency:
                best_latency = latency
                best_schedule = schedule
        history.append(best_latency)

    return SearchResult(
        task_key=task.workload_key,
        best_latency_s=best_latency,
        best_schedule=best_schedule,
        best_latency_per_round=history,
        num_measurements=measurements,
        num_scored=scored,
        scoring_batches=scoring_batches,
    )


def search_model_schedules(
    model: ModelGraph,
    device: Union[str, DeviceSpec],
    score_fn: ScoreFn,
    num_rounds: int = 10,
    population: int = 16,
    measurements_per_round: int = 4,
    seed: Union[int, str, None] = 0,
) -> Dict[str, SearchResult]:
    """Run the schedule search for every unique task of a model.

    Returns results keyed by workload key; the sum of best latencies is the
    tuned model latency Fig. 14b tracks.
    """
    results: Dict[str, SearchResult] = {}
    for key, task in model.unique_tasks().items():
        results[key] = evolutionary_search(
            task,
            device,
            score_fn,
            num_rounds=num_rounds,
            population=population,
            measurements_per_round=measurements_per_round,
            seed=(seed, key),
        )
    return results
