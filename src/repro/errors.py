"""Exception hierarchy used across the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can catch
library failures without swallowing unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class TIRError(ReproError):
    """Malformed tensor-program IR (bad extents, unbound variables, ...)."""


class ScheduleError(ReproError):
    """A schedule primitive could not be applied to a task."""


class FeatureError(ReproError):
    """Feature extraction failed or produced an inconsistent shape."""


class DeviceError(ReproError):
    """Unknown device or invalid device specification."""


class DatasetError(ReproError):
    """Dataset generation, splitting or loading failed."""


class ModelError(ReproError):
    """Neural-network model construction or execution failed."""


class TrainingError(ReproError):
    """Training/fine-tuning could not proceed (bad config, divergence, ...)."""


class ReplayError(ReproError):
    """End-to-end replay failed (cyclic DFG, missing predictions, ...)."""


class SearchError(ReproError):
    """Schedule search failed."""


class ConfigError(ReproError):
    """Invalid experiment or model configuration."""


class ServingError(ReproError):
    """Prediction serving failed (no model for a device, unfitted model, ...)."""
