"""The scale-insensitive hybrid training objective (Section 5.2, Eq. 3).

The hybrid loss minimises MSE and MAPE concurrently: MSE keeps the absolute
error of large-latency samples under control while the MAPE term prevents the
model from collapsing to the mean of the (skewed) label distribution.
"""

from __future__ import annotations

from repro.errors import TrainingError
from repro.nn.losses import mse_loss
from repro.nn.tensor import Tensor

# λ in Eq. 3.  The paper reports 1e-3 on raw (microsecond-scale) labels; our
# labels are Box-Cox-standardised so the two terms are already commensurate
# and a larger default works better, but the coefficient stays configurable
# (and is part of the auto-tuner's search space).
DEFAULT_LAMBDA = 0.1

# Floor for the |target| denominator of the relative-error term.  Labels are
# standardised (zero mean), so without a floor samples whose transformed label
# happens to sit near zero would dominate the gradient.
DENOMINATOR_FLOOR = 0.25


def hybrid_loss(
    pred: Tensor,
    target: Tensor,
    lambda_mape: float = DEFAULT_LAMBDA,
    denominator_floor: float = DENOMINATOR_FLOOR,
) -> Tensor:
    """``MSE(pred, target) + λ · MAPE(pred, target)`` (Eq. 3).

    Both terms are computed in the (transformed) label space the predictor is
    trained in; the relative-error denominator is floored at
    ``denominator_floor`` because that space is standardised around zero.
    """
    if lambda_mape < 0:
        raise TrainingError(f"lambda_mape must be non-negative, got {lambda_mape}")
    if pred.shape != target.shape:
        raise TrainingError(f"loss shape mismatch: pred {pred.shape} vs target {target.shape}")
    loss = mse_loss(pred, target)
    if lambda_mape > 0:
        denom = target.abs() + denominator_floor
        relative = ((pred - target).abs() / denom).mean()
        loss = loss + relative * lambda_mape
    return loss
