"""Central Moment Discrepancy (CMD) -- the domain-distance regulariser (Eq. 6).

CMD measures the distance between two distributions through the difference of
their means and higher-order central moments.  The paper adds a CMD term
between the latent representations of the source and target domains to the
fine-tuning objective (Eq. 7), which provably bounds the cross-domain
generalisation gap (Eq. 4).

Two implementations are provided: a NumPy one for analysis (Fig. 18) and a
:class:`~repro.nn.tensor.Tensor` one that participates in back-propagation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.nn.tensor import Tensor

DEFAULT_NUM_MOMENTS = 5


def _span(a: np.ndarray, b: np.ndarray) -> float:
    """|b - a| in Eq. 6: the span of the joint support, estimated empirically."""
    joint_min = min(float(a.min()), float(b.min()))
    joint_max = max(float(a.max()), float(b.max()))
    return max(joint_max - joint_min, 1.0)


def cmd_distance(
    source: np.ndarray,
    target: np.ndarray,
    num_moments: int = DEFAULT_NUM_MOMENTS,
) -> float:
    """CMD between two sample matrices ``[N_s, D]`` and ``[N_t, D]`` (NumPy)."""
    source = np.atleast_2d(np.asarray(source, dtype=np.float64))
    target = np.atleast_2d(np.asarray(target, dtype=np.float64))
    if source.shape[1] != target.shape[1]:
        raise TrainingError(
            f"CMD requires equal feature dimensions, got {source.shape[1]} vs {target.shape[1]}"
        )
    if num_moments < 1:
        raise TrainingError("num_moments must be >= 1")

    span = _span(source, target)
    mean_s = source.mean(axis=0)
    mean_t = target.mean(axis=0)
    distance = float(np.linalg.norm(mean_s - mean_t)) / span

    centered_s = source - mean_s
    centered_t = target - mean_t
    for order in range(2, num_moments + 1):
        moment_s = (centered_s**order).mean(axis=0)
        moment_t = (centered_t**order).mean(axis=0)
        distance += float(np.linalg.norm(moment_s - moment_t)) / (span**order)
    return distance


def cmd_distance_tensor(
    source: Tensor,
    target: Tensor,
    num_moments: int = DEFAULT_NUM_MOMENTS,
) -> Tensor:
    """Differentiable CMD between two latent batches (used in Eq. 7).

    The support span |b - a| is treated as a constant (computed from the
    detached data), matching standard CMD implementations where the latent
    space is assumed bounded.
    """
    if source.shape[-1] != target.shape[-1]:
        raise TrainingError(
            f"CMD requires equal feature dimensions, got {source.shape[-1]} vs {target.shape[-1]}"
        )
    if num_moments < 1:
        raise TrainingError("num_moments must be >= 1")
    span = _span(source.data, target.data)
    eps = 1e-12

    mean_s = source.mean(axis=0)
    mean_t = target.mean(axis=0)
    diff = mean_s - mean_t
    distance = ((diff * diff).sum() + eps).sqrt() * (1.0 / span)

    centered_s = source - mean_s
    centered_t = target - mean_t
    for order in range(2, num_moments + 1):
        moment_s = (centered_s**float(order)).mean(axis=0)
        moment_t = (centered_t**float(order)).mean(axis=0)
        moment_diff = moment_s - moment_t
        norm = ((moment_diff * moment_diff).sum() + eps).sqrt()
        distance = distance + norm * (1.0 / (span**order))
    return distance
