"""The high-level CDMPP facade.

``CDMPP`` wires the whole system together the way the paper's command-line
tool does: pre-train on a dataset of measured records, optionally fine-tune
to a new device, then answer latency queries at the tensor-program level or
at the whole-model level (through the replayer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.config import PredictorConfig, TrainingConfig
from repro.core.finetune import CrossDeviceResult, cross_device_adaptation
from repro.core.trainer import Trainer, TrainingResult
from repro.devices.spec import DeviceSpec, get_device
from repro.errors import TrainingError
from repro.features.pipeline import FeatureSet, featurize_programs, featurize_records
from repro.graph.model import ModelGraph
from repro.profiler.records import MeasureRecord
from repro.tir.program import TensorProgram


@dataclass
class EndToEndPrediction:
    """Result of a whole-model latency query."""

    model: str
    device: str
    predicted_latency_s: float
    per_program_latency_s: Dict[str, float]
    num_nodes: int


class CDMPP:
    """Pre-train, fine-tune and query the CDMPP cost model."""

    def __init__(
        self,
        predictor_config: Optional[PredictorConfig] = None,
        training_config: Optional[TrainingConfig] = None,
    ):
        self.predictor_config = predictor_config or PredictorConfig()
        self.training_config = training_config or TrainingConfig()
        self.trainer = Trainer(predictor_config=self.predictor_config, config=self.training_config)
        self._max_leaves: Optional[int] = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def pretrain(
        self,
        train_records: Sequence[MeasureRecord],
        valid_records: Sequence[MeasureRecord] = (),
        epochs: Optional[int] = None,
    ) -> TrainingResult:
        """Pre-train the predictor on measured records."""
        if not train_records:
            raise TrainingError("pretrain needs at least one training record")
        train_fs = featurize_records(list(train_records), max_leaves=self.predictor_config.max_leaves)
        self._max_leaves = train_fs.max_leaves
        valid_fs = (
            featurize_records(list(valid_records), max_leaves=self._max_leaves)
            if valid_records
            else None
        )
        return self.trainer.fit(train_fs, valid_fs, epochs=epochs)

    def pretrain_features(
        self, train: FeatureSet, valid: Optional[FeatureSet] = None, epochs: Optional[int] = None
    ) -> TrainingResult:
        """Pre-train directly from already-featurized data."""
        self._max_leaves = train.max_leaves
        return self.trainer.fit(train, valid, epochs=epochs)

    def finetune_to_device(
        self,
        source_train: FeatureSet,
        target_records: Sequence[MeasureRecord],
        target_test: FeatureSet,
        num_tasks: int = 10,
        strategy: str = "kmeans",
        epochs: int = 5,
    ) -> CrossDeviceResult:
        """Adapt a pre-trained model to a new device (Sec. 5.3 + Algorithm 1)."""
        return cross_device_adaptation(
            self.trainer,
            source_train=source_train,
            target_records=target_records,
            target_test=target_test,
            num_tasks=num_tasks,
            strategy=strategy,
            epochs=epochs,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def predict_programs(
        self, programs: Sequence[TensorProgram], device: Union[str, DeviceSpec]
    ) -> Dict[str, float]:
        """Predicted latency (seconds) per workload key for a batch of programs."""
        if not programs:
            return {}
        features = featurize_programs(
            list(programs), device, max_leaves=self.predictor_config.max_leaves
        )
        predictions = self.trainer.predict(features)
        result: Dict[str, float] = {}
        for key, value in zip(features.task_keys, predictions):
            result[key] = float(value)
        return result

    def predict_program(self, program: TensorProgram, device: Union[str, DeviceSpec]) -> float:
        """Predicted latency (seconds) of a single tensor program."""
        return self.predict_programs([program], device)[program.task.workload_key]

    def predict_model(
        self,
        model: Union[str, ModelGraph],
        device: Union[str, DeviceSpec],
        batch_size: int = 1,
        seed: int | str | None = 0,
    ) -> EndToEndPrediction:
        """Predict the end-to-end latency of a DNN model on a device.

        The model is dissected into a TIR data-flow graph, the predictor is
        queried once per unique tensor program, and the replayer simulates
        the execution order (Algorithm 2) to produce the iteration time.
        """
        from repro.graph.zoo import build_model
        from repro.replay.e2e import predict_end_to_end

        device_spec = get_device(device) if isinstance(device, str) else device
        graph = model if isinstance(model, ModelGraph) else build_model(model, batch_size=batch_size)
        outcome = predict_end_to_end(
            graph,
            device_spec,
            cost_fn=lambda programs: self.predict_programs(programs, device_spec),
            seed=seed,
        )
        return EndToEndPrediction(
            model=graph.name,
            device=device_spec.name,
            predicted_latency_s=outcome.iteration_time_s,
            per_program_latency_s=dict(outcome.durations),
            num_nodes=len(graph),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def evaluate(self, features: FeatureSet) -> Dict[str, float]:
        """Evaluate prediction error on a featurized split."""
        return self.trainer.evaluate(features)

    def latent(self, features: FeatureSet) -> np.ndarray:
        """Latent representations of featurized samples."""
        return self.trainer.latent(features)
