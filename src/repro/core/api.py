"""The high-level CDMPP facade.

``CDMPP`` wires the whole system together the way the paper's command-line
tool does: pre-train on a dataset of measured records, optionally fine-tune
to a new device, then answer latency queries at the tensor-program level or
at the whole-model level (through the replayer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.config import PredictorConfig, TrainingConfig
from repro.core.finetune import CrossDeviceResult, cross_device_adaptation
from repro.core.trainer import Trainer, TrainingResult
from repro.devices.spec import DeviceSpec, get_device
from repro.errors import TrainingError
from repro.features.pipeline import FeatureSet
from repro.graph.model import ModelGraph
from repro.profiler.records import MeasureRecord
from repro.tir.program import TensorProgram


@dataclass
class EndToEndPrediction:
    """Result of a whole-model latency query."""

    model: str
    device: str
    predicted_latency_s: float
    per_program_latency_s: Dict[str, float]
    num_nodes: int


class CDMPP:
    """Pre-train, fine-tune and query the CDMPP cost model.

    The facade is a thin shim over :class:`repro.backends.CDMPPBackend`
    (exposed as :attr:`backend`), which implements the backend-agnostic
    :class:`repro.backends.CostModel` protocol the serving stack consumes.
    """

    def __init__(
        self,
        predictor_config: Optional[PredictorConfig] = None,
        training_config: Optional[TrainingConfig] = None,
    ):
        from repro.backends.cdmpp import CDMPPBackend

        self.predictor_config = predictor_config or PredictorConfig()
        self.training_config = training_config or TrainingConfig()
        self.backend = CDMPPBackend(
            predictor_config=self.predictor_config, training_config=self.training_config
        )

    @property
    def trainer(self) -> Trainer:
        """The underlying trainer (owned by :attr:`backend`)."""
        return self.backend.trainer

    # ------------------------------------------------------------------
    # Construction from existing / persisted trainers
    # ------------------------------------------------------------------
    @classmethod
    def from_trainer(cls, trainer: Trainer) -> "CDMPP":
        """Wrap an already-fitted :class:`Trainer` in the query facade."""
        from repro.backends.cdmpp import CDMPPBackend

        cdmpp = cls.__new__(cls)
        cdmpp.predictor_config = trainer.predictor.config
        cdmpp.training_config = trainer.config
        cdmpp.backend = CDMPPBackend(trainer=trainer)
        return cdmpp

    @classmethod
    def load(cls, path) -> "CDMPP":
        """Load a facade around a checkpoint written by :meth:`save`."""
        from repro.core.persistence import load_trainer

        return cls.from_trainer(load_trainer(path))

    def save(self, path, extra_meta: Optional[Dict] = None):
        """Persist the trained cost model to ``path`` (.npz)."""
        from repro.core.persistence import save_trainer

        return save_trainer(self.trainer, path, extra_meta=extra_meta)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def pretrain(
        self,
        train_records: Sequence[MeasureRecord],
        valid_records: Sequence[MeasureRecord] = (),
        epochs: Optional[int] = None,
    ) -> TrainingResult:
        """Pre-train the predictor on measured records."""
        if not train_records:
            raise TrainingError("pretrain needs at least one training record")
        self.backend.fit(list(train_records), list(valid_records) or None, epochs=epochs)
        return self.backend.last_training_result

    def pretrain_features(
        self, train: FeatureSet, valid: Optional[FeatureSet] = None, epochs: Optional[int] = None
    ) -> TrainingResult:
        """Pre-train directly from already-featurized data."""
        self.backend.fit_features(train, valid, epochs=epochs)
        return self.backend.last_training_result

    def finetune_to_device(
        self,
        source_train: FeatureSet,
        target_records: Sequence[MeasureRecord],
        target_test: FeatureSet,
        num_tasks: int = 10,
        strategy: str = "kmeans",
        epochs: int = 5,
    ) -> CrossDeviceResult:
        """Adapt a pre-trained model to a new device (Sec. 5.3 + Algorithm 1).

        Fine-tuning trains a detached clone; this facade then adopts the
        adapted clone as its serving model.  A trainer handed in through
        :meth:`from_trainer` (possibly shared with a fleet via
        ``ModelRegistry.load_shared``) keeps its pre-trained weights
        bit-identical.
        """
        result = cross_device_adaptation(
            self.trainer,
            source_train=source_train,
            target_records=target_records,
            target_test=target_test,
            num_tasks=num_tasks,
            strategy=strategy,
            epochs=epochs,
        )
        if result.adapted_trainer is not None:
            self.backend.trainer = result.adapted_trainer
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def predict_latencies(
        self, programs: Sequence[TensorProgram], device: Union[str, DeviceSpec]
    ) -> np.ndarray:
        """Predicted latency (seconds) per program, in input order.

        Unlike :meth:`predict_programs` this never collapses programs: two
        different schedules of the same task (which share a ``workload_key``)
        each get their own prediction.
        """
        return self.backend.predict_programs(list(programs), device)

    def predict_programs(
        self, programs: Sequence[TensorProgram], device: Union[str, DeviceSpec]
    ) -> Dict[str, float]:
        """Predicted latency (seconds) per *workload key* for a batch of programs.

        The mapping is keyed by ``task.workload_key``, so programs sharing a
        workload key are explicitly de-duplicated: only the first occurrence
        of each key is featurized and predicted (the replayer feeds one
        program per unique workload, where this is exact).  Use
        :meth:`predict_latencies` when distinct schedules of the same task
        must each be scored.
        """
        programs = list(programs)
        if not programs:
            return {}
        unique: Dict[str, TensorProgram] = {}
        for program in programs:
            unique.setdefault(program.task.workload_key, program)
        predictions = self.predict_latencies(list(unique.values()), device)
        return {key: float(value) for key, value in zip(unique.keys(), predictions)}

    def predict_program(self, program: TensorProgram, device: Union[str, DeviceSpec]) -> float:
        """Predicted latency (seconds) of a single tensor program."""
        return float(self.predict_latencies([program], device)[0])

    def predict_model(
        self,
        model: Union[str, ModelGraph],
        device: Union[str, DeviceSpec],
        batch_size: int = 1,
        seed: int | str | None = 0,
        cost_fn=None,
        compose: str = "replay",
    ) -> EndToEndPrediction:
        """Predict the end-to-end latency of a DNN model on a device.

        The model is dissected into a TIR data-flow graph, the predictor is
        queried once per unique tensor program, and the replayer simulates
        the execution order (Algorithm 2) to produce the iteration time.
        ``cost_fn`` overrides where per-kernel costs come from (the serving
        layer routes them through its cache); the default queries this
        facade's predictor directly.  ``compose`` picks the composition mode
        (``"replay"`` critical-path simulation, ``"serial"`` serial sum — see
        :func:`repro.replay.compose_latencies`).
        """
        from repro.graph.zoo import build_model
        from repro.replay.e2e import predict_end_to_end

        device_spec = get_device(device) if isinstance(device, str) else device
        graph = model if isinstance(model, ModelGraph) else build_model(model, batch_size=batch_size)
        outcome = predict_end_to_end(
            graph,
            device_spec,
            cost_fn=cost_fn or (lambda programs: self.predict_programs(programs, device_spec)),
            seed=seed,
            compose=compose,
        )
        return EndToEndPrediction(
            model=graph.name,
            device=device_spec.name,
            predicted_latency_s=outcome.iteration_time_s,
            per_program_latency_s=dict(outcome.durations),
            num_nodes=len(graph),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def evaluate(self, features: FeatureSet) -> Dict[str, float]:
        """Evaluate prediction error on a featurized split."""
        return self.trainer.evaluate(features)

    def latent(self, features: FeatureSet) -> np.ndarray:
        """Latent representations of featurized samples."""
        return self.trainer.latent(features)
