"""CMD-regularized fine-tuning (Section 5.3) and the cross-device pipeline.

Fine-tuning minimises Eq. 7: the hybrid supervised loss on labeled data plus
``α × CMD(z_s, z_t)`` between latent representations of the source domain and
the target domain.  For cross-device adaptation the labeled target data comes
from profiling the κ tasks chosen by the KMeans-based sampling strategy
(Algorithm 1) on the target device.

Fine-tuning is **non-destructive**: :class:`FineTuner` clones the pre-trained
trainer (see :meth:`repro.core.trainer.Trainer.clone`) and optimises the
clone, so the pre-trained model — which a serving fleet may share in memory
via ``ModelRegistry.load_shared`` — keeps its weights bit-identical.  The
adapted model is :attr:`FineTuner.trainer` /
:attr:`CrossDeviceResult.adapted_trainer`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.cmd import cmd_distance_tensor
from repro.core.losses import hybrid_loss
from repro.core.sampling import select_tasks_kmeans, select_tasks_random
from repro.core.trainer import Trainer, TrainingResult
from repro.errors import FeatureError, TrainingError
from repro.features.pipeline import FeatureSet, featurize_records
from repro.nn.optim import make_optimizer
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng


def featurize_for_predictor(records: Sequence, max_leaves: int) -> FeatureSet:
    """Featurize records padded to the *predictor's* Compact-AST width.

    Cross-device data must be padded to the width the predictor was built
    for, not to the widest program that happened to appear in the source
    training set: a target-device program may be wider than any source
    program while still fitting the predictor.  Raises a clear
    :class:`TrainingError` only when a program genuinely exceeds the
    predictor's capacity.
    """
    try:
        return featurize_records(list(records), max_leaves=int(max_leaves))
    except FeatureError as error:
        raise TrainingError(
            f"a target-device program exceeds the predictor's Compact-AST capacity "
            f"(PredictorConfig.max_leaves={max_leaves}): {error}; re-train with a "
            "larger max_leaves to onboard this workload"
        ) from error


class FineTuner:
    """Fine-tunes a pre-trained predictor with the CMD-regularized objective.

    By default the pre-trained trainer is **cloned** and only the clone is
    optimised (``clone=False`` restores the legacy in-place behaviour for
    callers that explicitly own their trainer).  After :meth:`finetune`,
    :attr:`trainer` is the adapted model and :attr:`source_trainer` the
    untouched pre-trained one.
    """

    def __init__(self, trainer: Trainer, clone: bool = True):
        if not getattr(trainer, "_fitted", False):
            raise TrainingError("FineTuner requires a pre-trained Trainer (call fit() first)")
        self.source_trainer = trainer
        self.trainer = trainer.clone() if clone else trainer
        self.config = trainer.config
        self._rng = new_rng(("finetune", trainer.config.seed))

    # ------------------------------------------------------------------
    def _labels(self, features: FeatureSet) -> np.ndarray:
        return self.trainer.transform.transform(features.y)

    def finetune(
        self,
        source: FeatureSet,
        target: FeatureSet,
        target_labeled: Optional[FeatureSet] = None,
        epochs: int = 5,
        alpha: Optional[float] = None,
        learning_rate: Optional[float] = None,
        valid: Optional[FeatureSet] = None,
        patience: Optional[int] = None,
    ) -> TrainingResult:
        """Run CMD-regularized fine-tuning on the (cloned) trainer.

        Args:
            source: Labeled source-domain data (a subset of S_train).
            target: Target-domain samples; only their *input features* are
                used, for the CMD term.
            target_labeled: Optionally, labeled target-domain samples (the
                profiled representative tasks) added to the supervised term.
            epochs: Number of fine-tuning epochs.
            alpha: CMD coefficient (defaults to ``TrainingConfig.cmd_alpha``).
            learning_rate: Overrides the pre-training learning rate (commonly
                reduced for fine-tuning).
            valid: Optional labeled validation set (*not* normalized by the
                caller), evaluated after every epoch.  The best epoch's
                weights are restored at the end, and
                ``best_epoch``/``best_valid_mape`` are populated in the
                result.  The zero-shot weights count as the epoch ``-1``
                baseline: a fine-tune that never beats zero-shot on the
                validation split is rolled back entirely, so adaptation can
                only help.
            patience: With ``valid``, stop after this many epochs without a
                validation-MAPE improvement (``None`` disables early
                stopping).
        """
        if len(source) == 0 or len(target) == 0:
            raise TrainingError("fine-tuning needs non-empty source and target sets")
        alpha = self.config.cmd_alpha if alpha is None else float(alpha)
        predictor = self.trainer.predictor
        has_valid = valid is not None and len(valid) > 0

        # Inputs use the same feature standardisation as pre-training
        # (labels are untouched by normalisation).
        source = self.trainer.normalize_features(source)
        target = self.trainer.normalize_features(target)
        if target_labeled is not None:
            target_labeled = self.trainer.normalize_features(target_labeled)

        lr = learning_rate if learning_rate is not None else self.config.learning_rate * 0.3
        optimizer = make_optimizer(
            self.config.optimizer, predictor.parameters(), lr=lr, weight_decay=self.config.weight_decay
        )

        source_labels = self._labels(source)
        target_labels = self._labels(target_labeled) if target_labeled is not None else None

        result = TrainingResult()
        best_state = None
        if has_valid:
            # The zero-shot model is the baseline to beat (epoch -1): if no
            # epoch improves on it, the fine-tune is rolled back below.
            best_state = predictor.state_dict()
            result.best_valid_mape = self.trainer.evaluate(valid)["mape"]
            result.best_epoch = -1
        epochs_without_improvement = 0
        start = time.perf_counter()
        samples = 0
        batch_size = self.config.batch_size

        for epoch in range(epochs):
            predictor.train()
            order = self._rng.permutation(len(source))
            epoch_losses = []
            for batch_start in range(0, len(order), batch_size):
                batch = order[batch_start : batch_start + batch_size]
                target_batch = self._rng.choice(
                    len(target), size=min(len(target), max(len(batch), 8)), replace=False
                )

                optimizer.zero_grad()
                x, mask, counts, dev = predictor.tensors_from(source, batch)
                latent_source = predictor.encode(x, mask, counts, dev)
                pred_source = predictor.decoder(latent_source).reshape(-1)
                loss = hybrid_loss(
                    pred_source, Tensor(source_labels[batch]), lambda_mape=self.config.lambda_mape
                )

                tx, tmask, tcounts, tdev = predictor.tensors_from(target, target_batch)
                latent_target = predictor.encode(tx, tmask, tcounts, tdev)
                if alpha > 0:
                    loss = loss + cmd_distance_tensor(
                        latent_source, latent_target, num_moments=self.config.cmd_moments
                    ) * alpha

                if target_labeled is not None and len(target_labeled) > 0:
                    lab_batch = self._rng.choice(
                        len(target_labeled),
                        size=min(len(target_labeled), batch_size),
                        replace=False,
                    )
                    lx, lmask, lcounts, ldev = predictor.tensors_from(target_labeled, lab_batch)
                    pred_target = predictor(lx, lmask, lcounts, ldev)
                    loss = loss + hybrid_loss(
                        pred_target,
                        Tensor(target_labels[lab_batch]),
                        lambda_mape=self.config.lambda_mape,
                    )

                loss.backward()
                if self.config.grad_clip > 0:
                    optimizer.clip_grad_norm(self.config.grad_clip)
                optimizer.step()
                epoch_losses.append(float(loss.item()))
                samples += len(batch)
            entry: Dict[str, float] = {
                "epoch": float(epoch),
                "train_loss": float(np.mean(epoch_losses)),
            }
            if has_valid:
                valid_mape = self.trainer.evaluate(valid)["mape"]
                entry["valid_mape"] = valid_mape
                if valid_mape < result.best_valid_mape:
                    result.best_valid_mape = valid_mape
                    result.best_epoch = epoch
                    best_state = predictor.state_dict()
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
            result.history.append(entry)
            if has_valid and patience and epochs_without_improvement >= patience:
                break

        result.train_seconds = time.perf_counter() - start
        result.throughput_samples_per_s = samples / max(result.train_seconds, 1e-9)
        if best_state is not None and result.best_valid_mape < float("inf"):
            predictor.load_state_dict(best_state)
        return result

    def latent_cmd(self, source: FeatureSet, target: FeatureSet) -> float:
        """CMD between source and target latents of the *adapted* model (Fig. 8/11/16)."""
        from repro.core.cmd import cmd_distance

        return cmd_distance(self.trainer.latent(source), self.trainer.latent(target))


# ---------------------------------------------------------------------------
# Cross-device adaptation pipeline (Section 5.3 + Algorithm 1)
# ---------------------------------------------------------------------------
@dataclass
class CrossDeviceResult:
    """Outcome of one cross-device adaptation experiment.

    ``adapted_trainer`` is a detached clone carrying the fine-tuned weights;
    the trainer passed to :func:`cross_device_adaptation` is left untouched.
    """

    target_device: str
    selected_tasks: List[str]
    metrics_before: Dict[str, float]
    metrics_after: Dict[str, float]
    cmd_before: float
    cmd_after: float
    finetune_result: TrainingResult = field(default_factory=TrainingResult)
    adapted_trainer: Optional[Trainer] = None


def cross_device_adaptation(
    trainer: Trainer,
    source_train: FeatureSet,
    target_records: Sequence,
    target_test: FeatureSet,
    num_tasks: int = 10,
    strategy: str = "kmeans",
    epochs: int = 5,
    alpha: Optional[float] = None,
    seed: int | str | None = 0,
) -> CrossDeviceResult:
    """Adapt a pre-trained predictor to a new device.

    The pre-trained ``trainer`` is only read (zero-shot evaluation, latent
    extraction); fine-tuning happens on a detached clone returned as
    ``CrossDeviceResult.adapted_trainer``.

    Args:
        trainer: A pre-trained :class:`Trainer` (on the source devices).
        source_train: The source-device training features used for the
            supervised term during fine-tuning.
        target_records: All measured records available on the target device
            (the experiment harness samples the labeled subset from these;
            in a real deployment only the selected tasks would be profiled).
        target_test: Featurized target-device test split for evaluation.
        num_tasks: κ, how many tasks to profile on the target device.
        strategy: ``"kmeans"`` (Algorithm 1) or ``"random"`` (baseline).
        epochs: Fine-tuning epochs.
        alpha: CMD coefficient override.
        seed: Seed for sampling.
    """
    target_records = list(target_records)
    if not target_records:
        raise TrainingError("cross_device_adaptation needs target-device records")
    # Pad to the predictor's width: a target program may be wider than every
    # source program yet still fit the predictor (PredictorConfig.max_leaves).
    target_all = featurize_for_predictor(target_records, trainer.max_leaves)

    metrics_before = trainer.evaluate(target_test)
    finetuner = FineTuner(trainer)
    cmd_before = finetuner.latent_cmd(source_train, target_all)

    # Group device-independent features by task and select representatives.
    by_task = target_all.by_task()
    latents = trainer.latent(target_all)
    features_by_task = {key: latents[idx] for key, idx in by_task.items()}
    if strategy == "kmeans":
        selected = select_tasks_kmeans(features_by_task, num_tasks, seed=seed)
    elif strategy == "random":
        selected = select_tasks_random(list(features_by_task), num_tasks, seed=seed)
    else:
        raise TrainingError(f"unknown sampling strategy {strategy!r}")

    selected_set = set(selected)
    labeled_indices = [i for i, key in enumerate(target_all.task_keys) if key in selected_set]
    target_labeled = target_all.subset(labeled_indices)

    finetune_result = finetuner.finetune(
        source=source_train,
        target=target_all,
        target_labeled=target_labeled,
        epochs=epochs,
        alpha=alpha,
    )
    metrics_after = finetuner.trainer.evaluate(target_test)
    cmd_after = finetuner.latent_cmd(source_train, target_all)

    return CrossDeviceResult(
        target_device=target_test.devices[0] if target_test.devices else "unknown",
        selected_tasks=list(selected),
        metrics_before=metrics_before,
        metrics_after=metrics_after,
        cmd_before=cmd_before,
        cmd_after=cmd_after,
        finetune_result=finetune_result,
        adapted_trainer=finetuner.trainer,
    )
