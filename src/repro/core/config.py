"""Configuration dataclasses for the predictor and its training."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigError
from repro.features.compact_ast import COMPUTATION_VECTOR_LENGTH
from repro.features.device_features import DEVICE_FEATURE_DIM


@dataclass(frozen=True)
class PredictorConfig:
    """Architecture of the CDMPP predictor (Fig. 4 / Appendix B).

    The paper's auto-tuned configuration uses 11 transformer layers and
    ~1000-wide linear layers (13.8M parameters); the defaults here are scaled
    down so the NumPy implementation trains in seconds, but every structural
    element (transformer encoder, per-leaf-count embedding layers, device
    MLP, MLP decoder) is preserved and the auto-tuner can scale them up.
    """

    feature_dim: int = COMPUTATION_VECTOR_LENGTH
    device_feature_dim: int = DEVICE_FEATURE_DIM
    d_model: int = 64
    num_heads: int = 4
    num_encoder_layers: int = 2
    embedding_dim: int = 64
    device_embedding_dim: int = 16
    decoder_hidden: Tuple[int, ...] = (64, 64)
    device_hidden: Tuple[int, ...] = (32,)
    max_leaves: int = 16
    dropout: float = 0.0
    use_device_features: bool = True

    def __post_init__(self) -> None:
        if self.d_model % self.num_heads != 0:
            raise ConfigError(
                f"d_model ({self.d_model}) must be divisible by num_heads ({self.num_heads})"
            )
        if self.max_leaves <= 0:
            raise ConfigError("max_leaves must be positive")
        if self.num_encoder_layers <= 0:
            raise ConfigError("num_encoder_layers must be positive")


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of predictor pre-training / fine-tuning."""

    batch_size: int = 128
    epochs: int = 60
    learning_rate: float = 3e-3
    weight_decay: float = 1e-4
    optimizer: str = "adam"
    scheduler: str = "cosine"
    lambda_mape: float = 0.1
    grad_clip: float = 5.0
    label_transform: str = "box-cox"
    cmd_alpha: float = 1.0
    cmd_moments: int = 5
    early_stopping_patience: int = 0
    seed: int = 0
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.batch_size <= 0 or self.epochs <= 0:
            raise ConfigError("batch_size and epochs must be positive")
        if self.learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")
        if self.optimizer not in ("adam", "sgd"):
            raise ConfigError(f"unknown optimizer {self.optimizer!r}")
        if self.scheduler not in ("cyclic", "step", "cosine", "none"):
            raise ConfigError(f"unknown scheduler {self.scheduler!r}")
        if self.label_transform not in ("box-cox", "yeo-johnson", "quantile", "none"):
            raise ConfigError(f"unknown label transform {self.label_transform!r}")
