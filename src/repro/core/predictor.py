"""The CDMPP predictor model (Fig. 4 of the paper).

Architecture:

* an input projection from computation vectors (with positional encoding
  already added) to the model dimension;
* a Transformer encoder over the leaf sequence (padding masked);
* one *leaf-count-specific* linear embedding layer per possible leaf count:
  the encoder outputs of a Compact AST with ``L`` leaves are flattened and
  projected by the ``L``-th layer, giving a fixed-size device-independent
  embedding ``z_x`` without padding-induced sparsity;
* a small MLP embedding the device-dependent features into ``z_v``;
* a regression decoder applied to ``z = z_x ++ z_v``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import PredictorConfig
from repro.errors import FeatureError, ModelError
from repro.features.pipeline import FeatureSet
from repro.nn.layers import Linear
from repro.nn.mlp import MLP
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concatenate
from repro.nn.transformer import TransformerEncoder
from repro.utils.rng import new_rng


class CDMPPPredictor(Module):
    """Cross-device / cross-model latency predictor."""

    def __init__(self, config: Optional[PredictorConfig] = None, seed: int | str | None = 0):
        super().__init__()
        self.config = config = config if config is not None else PredictorConfig()
        rng = new_rng(("cdmpp-predictor", seed))

        self.input_proj = Linear(config.feature_dim, config.d_model, rng=rng)
        self.encoder = TransformerEncoder(
            dim=config.d_model,
            num_heads=config.num_heads,
            num_layers=config.num_encoder_layers,
            dropout=config.dropout,
            rng=rng,
        )
        # One embedding layer per leaf count 1..max_leaves (Sec. 5.1).
        self.leaf_embeddings = [
            Linear(config.d_model * count, config.embedding_dim, rng=rng)
            for count in range(1, config.max_leaves + 1)
        ]
        if config.use_device_features:
            self.device_mlp = MLP(
                config.device_feature_dim,
                list(config.device_hidden),
                config.device_embedding_dim,
                activation="relu",
                rng=rng,
            )
            decoder_in = config.embedding_dim + config.device_embedding_dim
        else:
            self.device_mlp = None
            decoder_in = config.embedding_dim
        self.decoder = MLP(
            decoder_in,
            list(config.decoder_hidden),
            1,
            activation="relu",
            dropout=config.dropout,
            rng=rng,
        )

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _leaf_groups(self, leaf_counts: np.ndarray) -> Dict[int, np.ndarray]:
        groups: Dict[int, np.ndarray] = {}
        for count in np.unique(leaf_counts):
            groups[int(count)] = np.flatnonzero(leaf_counts == count)
        return groups

    def encode(
        self,
        x: Tensor,
        mask: Tensor,
        leaf_counts: np.ndarray,
        device_features: Optional[Tensor] = None,
    ) -> Tensor:
        """Compute the latent representation ``z`` (Eq. 2's ``h(x)``)."""
        if x.ndim != 3:
            raise ModelError(f"expected [batch, leaves, features] input, got shape {x.shape}")
        batch, max_leaves, _ = x.shape

        hidden = self.input_proj(x)
        hidden = self.encoder(hidden, mask=mask)

        # Leaf-count-specific embedding layers.
        groups = self._leaf_groups(np.asarray(leaf_counts))
        outputs: List[Tensor] = []
        orders: List[np.ndarray] = []
        for count, indices in sorted(groups.items()):
            if count <= 0:
                raise FeatureError("encountered a sample with zero leaves")
            if count > self.config.max_leaves:
                raise FeatureError(
                    f"Compact AST has {count} leaves but the predictor supports at most "
                    f"{self.config.max_leaves}; increase PredictorConfig.max_leaves"
                )
            sub = hidden[indices][:, :count, :]
            flat = sub.reshape(len(indices), count * self.config.d_model)
            outputs.append(self.leaf_embeddings[count - 1](flat))
            orders.append(indices)
        stacked = concatenate(outputs, axis=0)
        # Restore the original batch order.
        original_positions = np.concatenate(orders)
        permutation = np.argsort(original_positions)
        z_x = stacked[permutation]

        if self.device_mlp is not None:
            if device_features is None:
                raise ModelError("predictor configured with device features but none were given")
            z_v = self.device_mlp(device_features)
            return concatenate([z_x, z_v], axis=-1)
        return z_x

    def infer_encode(
        self,
        x: np.ndarray,
        mask: np.ndarray,
        leaf_counts: np.ndarray,
        device_features: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Autograd-free :meth:`encode` over raw ndarrays (same math, no graph)."""
        if x.ndim != 3:
            raise ModelError(f"expected [batch, leaves, features] input, got shape {x.shape}")

        hidden = self.input_proj.infer(x)
        hidden = self.encoder.infer(hidden, mask=mask)

        groups = self._leaf_groups(np.asarray(leaf_counts))
        outputs: List[np.ndarray] = []
        orders: List[np.ndarray] = []
        for count, indices in sorted(groups.items()):
            if count <= 0:
                raise FeatureError("encountered a sample with zero leaves")
            if count > self.config.max_leaves:
                raise FeatureError(
                    f"Compact AST has {count} leaves but the predictor supports at most "
                    f"{self.config.max_leaves}; increase PredictorConfig.max_leaves"
                )
            sub = hidden[indices][:, :count, :]
            flat = sub.reshape(len(indices), count * self.config.d_model)
            outputs.append(self.leaf_embeddings[count - 1].infer(flat))
            orders.append(indices)
        stacked = np.concatenate(outputs, axis=0)
        permutation = np.argsort(np.concatenate(orders))
        z_x = stacked[permutation]

        if self.device_mlp is not None:
            if device_features is None:
                raise ModelError("predictor configured with device features but none were given")
            z_v = self.device_mlp.infer(device_features)
            return np.concatenate([z_x, z_v], axis=-1)
        return z_x

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def forward(
        self,
        x: Tensor,
        mask: Tensor,
        leaf_counts: np.ndarray,
        device_features: Optional[Tensor] = None,
    ) -> Tensor:
        """Predict the (transformed) latency of each sample; shape ``[batch]``."""
        latent = self.encode(x, mask, leaf_counts, device_features)
        return self.decoder(latent).reshape(-1)

    def infer(
        self,
        x: np.ndarray,
        mask: np.ndarray,
        leaf_counts: np.ndarray,
        device_features: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Autograd-free :meth:`forward`; bit-identical to it for float64 inputs."""
        latent = self.infer_encode(x, mask, leaf_counts, device_features)
        return self.decoder.infer(latent).reshape(-1)

    # ------------------------------------------------------------------
    # FeatureSet conveniences
    # ------------------------------------------------------------------
    @staticmethod
    def tensors_from(features: FeatureSet, indices: Optional[np.ndarray] = None) -> Tuple:
        """Build input tensors (x, mask, leaf_counts, device_features) from a FeatureSet."""
        if indices is None:
            subset = features
        else:
            subset = features.subset(list(np.asarray(indices)))
        return (
            Tensor(subset.x),
            Tensor(subset.mask),
            subset.leaf_counts,
            Tensor(subset.device_features),
        )

    @property
    def latent_dim(self) -> int:
        """Width of the latent representation ``z`` produced by :meth:`encode`."""
        if self.device_mlp is not None:
            return self.config.embedding_dim + self.config.device_embedding_dim
        return self.config.embedding_dim

    def predict_transformed(
        self, features: FeatureSet, batch_size: int = 256, dtype=None
    ) -> np.ndarray:
        """Predict in the transformed label space, batching to bound memory.

        Runs the autograd-free :meth:`infer` path (no ``Tensor`` graph, no
        ``FeatureSet.subset`` copies) — bit-identical to the old
        forward-under-``no_grad`` for the default float64; ``dtype=np.float32``
        trades the last digits for speed.
        """
        if len(features) == 0:
            return np.zeros(0, dtype=np.float64)
        outputs = []
        for start in range(0, len(features), batch_size):
            stop = min(start + batch_size, len(features))
            x = features.x[start:stop]
            mask = features.mask[start:stop]
            dev = features.device_features[start:stop]
            if dtype is not None:
                x, mask, dev = x.astype(dtype), mask.astype(dtype), dev.astype(dtype)
            outputs.append(self.infer(x, mask, features.leaf_counts[start:stop], dev))
        return np.concatenate(outputs, axis=0)

    def encode_features(
        self, features: FeatureSet, batch_size: int = 256, dtype=None
    ) -> np.ndarray:
        """Latent representations of all samples (for CMD analysis / sampling)."""
        if len(features) == 0:
            return np.zeros((0, self.latent_dim), dtype=np.float64)
        outputs = []
        for start in range(0, len(features), batch_size):
            stop = min(start + batch_size, len(features))
            x = features.x[start:stop]
            mask = features.mask[start:stop]
            dev = features.device_features[start:stop]
            if dtype is not None:
                x, mask, dev = x.astype(dtype), mask.astype(dtype), dev.astype(dtype)
            outputs.append(self.infer_encode(x, mask, features.leaf_counts[start:stop], dev))
        return np.concatenate(outputs, axis=0)
