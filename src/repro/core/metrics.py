"""Prediction-quality metrics: MAPE, RMSE, MSPE and threshold accuracy.

These mirror the metrics the paper reports: MAPE (the headline "prediction
error"), RMSE in milliseconds (Table 5) and the k%-accuracy numbers printed
by the reference implementation's training log (fraction of samples whose
relative error is below k%).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import TrainingError

_EPS = 1e-12


def _validate(pred: np.ndarray, target: np.ndarray) -> tuple:
    pred = np.asarray(pred, dtype=np.float64).reshape(-1)
    target = np.asarray(target, dtype=np.float64).reshape(-1)
    if pred.shape != target.shape:
        raise TrainingError(f"metric shape mismatch: {pred.shape} vs {target.shape}")
    if pred.size == 0:
        raise TrainingError("cannot compute metrics on empty arrays")
    return pred, target


def mape(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute percentage error, as a fraction (0.14 == 14%)."""
    pred, target = _validate(pred, target)
    return float(np.mean(np.abs(pred - target) / np.maximum(np.abs(target), _EPS)))


def rmse(pred: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error (same unit as the inputs)."""
    pred, target = _validate(pred, target)
    return float(np.sqrt(np.mean((pred - target) ** 2)))


def mspe(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean squared percentage error."""
    pred, target = _validate(pred, target)
    ratio = (pred - target) / np.maximum(np.abs(target), _EPS)
    return float(np.mean(ratio**2))


def threshold_accuracy(pred: np.ndarray, target: np.ndarray, threshold: float) -> float:
    """Fraction of samples whose relative error is below ``threshold``."""
    pred, target = _validate(pred, target)
    relative = np.abs(pred - target) / np.maximum(np.abs(target), _EPS)
    return float(np.mean(relative < threshold))


def error_report(
    pred: np.ndarray,
    target: np.ndarray,
    thresholds: Sequence[float] = (0.05, 0.10, 0.20),
) -> Dict[str, float]:
    """The full metric dictionary logged during training/evaluation."""
    report = {
        "mape": mape(pred, target),
        "rmse": rmse(pred, target),
        "mspe": mspe(pred, target),
    }
    for threshold in thresholds:
        report[f"{int(round(threshold * 100))}%accuracy"] = threshold_accuracy(
            pred, target, threshold
        )
    return report
