"""Label normalization: Box-Cox, Yeo-Johnson and Quantile transforms (Sec. 5.4).

Tensor-program latencies are heavily right-skewed (most programs are fast,
a few are orders of magnitude slower).  The paper normalises labels with the
Box-Cox power transformation fitted by maximum likelihood on the training
set, trains the predictor in the transformed space and inverse-transforms the
predictions for error measurement.  Yeo-Johnson and Quantile transforms are
implemented for the Table 3 ablation.

Every transform also standardises (zero mean, unit variance) after the power
mapping so the regression head always sees well-scaled targets.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import stats

from repro.errors import TrainingError


class LabelTransform:
    """Base class: fit on training labels, transform/inverse-transform arrays."""

    name = "identity"

    def __init__(self) -> None:
        self._mean = 0.0
        self._std = 1.0
        self._fitted = False

    # -- mapping to override ------------------------------------------------
    def _forward(self, y: np.ndarray) -> np.ndarray:
        return y

    def _inverse(self, y: np.ndarray) -> np.ndarray:
        return y

    def _fit_mapping(self, y: np.ndarray) -> None:
        """Fit mapping-specific parameters (λ for power transforms, ...)."""

    # -- public API ----------------------------------------------------------
    def fit(self, y: np.ndarray) -> "LabelTransform":
        """Fit the transform on training labels (strictly positive latencies)."""
        y = np.asarray(y, dtype=np.float64)
        if y.size == 0:
            raise TrainingError("cannot fit a label transform on an empty array")
        if np.any(~np.isfinite(y)):
            raise TrainingError("labels contain non-finite values")
        self._fit_mapping(y)
        mapped = self._forward(y)
        self._mean = float(mapped.mean())
        self._std = float(mapped.std())
        if self._std < 1e-12:
            self._std = 1.0
        self._fitted = True
        return self

    def transform(self, y: np.ndarray) -> np.ndarray:
        """Map labels into the normalised training space."""
        self._require_fitted()
        mapped = self._forward(np.asarray(y, dtype=np.float64))
        return (mapped - self._mean) / self._std

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        """Map predictions back to the original label space (seconds)."""
        self._require_fitted()
        mapped = np.asarray(z, dtype=np.float64) * self._std + self._mean
        return self._inverse(mapped)

    def fit_transform(self, y: np.ndarray) -> np.ndarray:
        """Fit then transform."""
        return self.fit(y).transform(y)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise TrainingError(f"{type(self).__name__} used before fit()")


class IdentityTransform(LabelTransform):
    """No power mapping; only standardisation ("original Y" in Table 3)."""

    name = "none"


class LogTransform(LabelTransform):
    """Plain log transform (not in the paper's ablation, useful as a baseline)."""

    name = "log"

    def _forward(self, y: np.ndarray) -> np.ndarray:
        return np.log(np.maximum(y, 1e-12))

    def _inverse(self, y: np.ndarray) -> np.ndarray:
        return np.exp(y)


class BoxCoxTransform(LabelTransform):
    """Box-Cox power transform with maximum-likelihood λ (the paper's choice)."""

    name = "box-cox"

    def __init__(self) -> None:
        super().__init__()
        self.lambda_: Optional[float] = None

    def _fit_mapping(self, y: np.ndarray) -> None:
        if np.any(y <= 0):
            raise TrainingError("Box-Cox requires strictly positive labels")
        # boxcox_normmax fits λ by maximising the log-likelihood.  Degenerate
        # inputs (near-constant arrays) make the optimiser fail or return
        # extreme λ; fall back to λ=0 (the log transform) in those cases and
        # clamp λ to a numerically safe range otherwise.
        if y.size < 4 or float(y.std()) < 1e-12 * max(float(y.mean()), 1e-30):
            self.lambda_ = 0.0
            return
        try:
            fitted = float(stats.boxcox_normmax(y, method="mle"))
        except Exception:
            fitted = 0.0
        if not np.isfinite(fitted):
            fitted = 0.0
        self.lambda_ = float(np.clip(fitted, -5.0, 5.0))

    def _forward(self, y: np.ndarray) -> np.ndarray:
        if self.lambda_ is None:
            raise TrainingError("BoxCoxTransform.transform called before fit")
        return stats.boxcox(np.maximum(y, 1e-12), lmbda=self.lambda_)

    def _inverse(self, y: np.ndarray) -> np.ndarray:
        lam = self.lambda_
        if lam is None:
            raise TrainingError("BoxCoxTransform.inverse_transform called before fit")
        if abs(lam) < 1e-12:
            return np.exp(y)
        # Invert (x^λ - 1) / λ, clamping into the valid domain so extreme
        # (bad) predictions map to tiny positive latencies instead of NaN.
        base = np.maximum(y * lam + 1.0, 1e-12)
        return base ** (1.0 / lam)


class YeoJohnsonTransform(LabelTransform):
    """Yeo-Johnson power transform (handles zeros/negatives)."""

    name = "yeo-johnson"

    def __init__(self) -> None:
        super().__init__()
        self.lambda_: Optional[float] = None

    def _fit_mapping(self, y: np.ndarray) -> None:
        self.lambda_ = float(stats.yeojohnson_normmax(y))

    def _forward(self, y: np.ndarray) -> np.ndarray:
        if self.lambda_ is None:
            raise TrainingError("YeoJohnsonTransform.transform called before fit")
        return stats.yeojohnson(y, lmbda=self.lambda_)

    def _inverse(self, y: np.ndarray) -> np.ndarray:
        lam = self.lambda_
        if lam is None:
            raise TrainingError("YeoJohnsonTransform.inverse_transform called before fit")
        out = np.empty_like(y)
        positive = y >= 0
        if abs(lam) < 1e-12:
            out[positive] = np.expm1(y[positive])
        else:
            out[positive] = np.maximum(y[positive] * lam + 1.0, 1e-12) ** (1.0 / lam) - 1.0
        two_minus = 2.0 - lam
        if abs(two_minus) < 1e-12:
            out[~positive] = -np.expm1(-y[~positive])
        else:
            out[~positive] = 1.0 - np.maximum(1.0 - y[~positive] * two_minus, 1e-12) ** (1.0 / two_minus)
        return out


class QuantileTransform(LabelTransform):
    """Map labels to a standard normal via their empirical quantiles."""

    name = "quantile"

    def __init__(self, num_quantiles: int = 256) -> None:
        super().__init__()
        self.num_quantiles = int(num_quantiles)
        self._quantiles: Optional[np.ndarray] = None
        self._references: Optional[np.ndarray] = None

    def _fit_mapping(self, y: np.ndarray) -> None:
        probs = np.linspace(0.0, 1.0, min(self.num_quantiles, max(y.size, 2)))
        self._quantiles = np.quantile(y, probs)
        # Reference points of the standard normal (clipped for stability).
        self._references = stats.norm.ppf(np.clip(probs, 1e-5, 1 - 1e-5))

    def _forward(self, y: np.ndarray) -> np.ndarray:
        if self._quantiles is None or self._references is None:
            raise TrainingError("QuantileTransform.transform called before fit")
        return np.interp(y, self._quantiles, self._references)

    def _inverse(self, y: np.ndarray) -> np.ndarray:
        if self._quantiles is None or self._references is None:
            raise TrainingError("QuantileTransform.inverse_transform called before fit")
        return np.interp(y, self._references, self._quantiles)


_TRANSFORMS = {
    "none": IdentityTransform,
    "log": LogTransform,
    "box-cox": BoxCoxTransform,
    "yeo-johnson": YeoJohnsonTransform,
    "quantile": QuantileTransform,
}


def make_transform(name: str) -> LabelTransform:
    """Instantiate a label transform by name."""
    try:
        return _TRANSFORMS[name]()
    except KeyError as exc:
        raise TrainingError(
            f"unknown label transform {name!r}; available: {', '.join(sorted(_TRANSFORMS))}"
        ) from exc
