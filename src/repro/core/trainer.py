"""Predictor pre-training (Section 5.2) and evaluation.

The trainer owns the label transform (Box-Cox by default), the optimizer,
the learning-rate scheduler and the training loop with the hybrid MSE+MAPE
objective; it reports MAPE/RMSE/threshold-accuracy in the *original* label
space and records training throughput (samples/second), which the paper uses
to compare training efficiency across cost models.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import PredictorConfig, TrainingConfig
from repro.core.losses import hybrid_loss
from repro.core.metrics import error_report
from repro.core.predictor import CDMPPPredictor
from repro.core.transforms import LabelTransform, make_transform
from repro.errors import TrainingError
from repro.features.pipeline import FeatureSet
from repro.nn.optim import make_optimizer
from repro.nn.schedulers import LRScheduler, make_scheduler
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng


@dataclass
class TrainingResult:
    """Outcome of one training run."""

    history: List[Dict[str, float]] = field(default_factory=list)
    best_epoch: int = 0
    best_valid_mape: float = float("inf")
    throughput_samples_per_s: float = 0.0
    train_seconds: float = 0.0

    @property
    def final_train_loss(self) -> float:
        """Training loss of the last epoch."""
        return self.history[-1]["train_loss"] if self.history else float("nan")


class Trainer:
    """Pre-trains and evaluates a :class:`CDMPPPredictor`."""

    def __init__(
        self,
        predictor: Optional[CDMPPPredictor] = None,
        predictor_config: Optional[PredictorConfig] = None,
        config: Optional[TrainingConfig] = None,
    ):
        # Constructed per instance: a `config=TrainingConfig()` default would
        # be evaluated once at def time and shared by every default trainer.
        self.config = config if config is not None else TrainingConfig()
        config = self.config
        self.predictor = predictor or CDMPPPredictor(
            predictor_config or PredictorConfig(), seed=config.seed
        )
        self.transform: LabelTransform = make_transform(config.label_transform)
        self._rng = new_rng(config.seed)
        self._fitted = False
        # Per-feature standardisation statistics, fitted on the training set
        # (over real leaves only) so the transformer sees well-scaled inputs.
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None
        self._dev_mean: Optional[np.ndarray] = None
        self._dev_std: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _make_optimizer(self):
        optimizer = make_optimizer(
            self.config.optimizer,
            self.predictor.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        scheduler: Optional[LRScheduler] = None
        if self.config.scheduler != "none":
            scheduler = make_scheduler(self.config.scheduler, optimizer)
        return optimizer, scheduler

    def _batches(self, num_samples: int) -> List[np.ndarray]:
        order = self._rng.permutation(num_samples)
        return [
            order[start : start + self.config.batch_size]
            for start in range(0, num_samples, self.config.batch_size)
        ]

    def _fit_normalizer(self, features: FeatureSet) -> None:
        """Fit per-feature standardisation statistics on real (unmasked) leaves.

        Features that are constant across the training set (e.g. the taxonomy
        one-hots when all source devices are GPUs) keep a unit scale: dividing
        by their near-zero standard deviation would turn a small cross-domain
        difference into an enormous input and destroy zero-shot transfer.
        """
        real = features.mask.astype(bool)
        leaves = features.x[real]  # [num_real_leaves, F]
        x_std = leaves.std(axis=0)
        self._x_mean = leaves.mean(axis=0)
        self._x_std = np.where(x_std < 1e-8, 1.0, x_std)
        dev_std = features.device_features.std(axis=0)
        self._dev_mean = features.device_features.mean(axis=0)
        self._dev_std = np.where(dev_std < 1e-8, 1.0, dev_std)

    def _normalize(self, features: FeatureSet) -> FeatureSet:
        """Apply the fitted feature standardisation to a feature set."""
        if self._x_mean is None:
            raise TrainingError("feature normaliser used before fit()")
        x = (features.x - self._x_mean) / self._x_std
        x = x * features.mask[:, :, None]  # keep padding at exactly zero
        # Clip device features: unseen devices can sit far outside the
        # training range, and bounded extrapolation keeps zero-shot
        # cross-device predictions finite (fine-tuning then corrects them).
        dev = np.clip((features.device_features - self._dev_mean) / self._dev_std, -12.0, 12.0)
        return FeatureSet(
            x=x,
            mask=features.mask,
            leaf_counts=features.leaf_counts,
            device_features=dev,
            y=features.y,
            task_keys=features.task_keys,
            models=features.models,
            op_types=features.op_types,
            devices=features.devices,
        )

    def train_step(self, features: FeatureSet, indices: np.ndarray, optimizer, labels: np.ndarray) -> float:
        """One optimisation step on the given batch; returns the batch loss."""
        x, mask, counts, dev = self.predictor.tensors_from(features, indices)
        target = Tensor(labels[indices])
        optimizer.zero_grad()
        pred = self.predictor(x, mask, counts, dev)
        loss = hybrid_loss(pred, target, lambda_mape=self.config.lambda_mape)
        loss.backward()
        if self.config.grad_clip > 0:
            optimizer.clip_grad_norm(self.config.grad_clip)
        optimizer.step()
        return float(loss.item())

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def fit(
        self,
        train: FeatureSet,
        valid: Optional[FeatureSet] = None,
        epochs: Optional[int] = None,
    ) -> TrainingResult:
        """Pre-train the predictor on ``train`` (validating on ``valid``)."""
        if len(train) == 0:
            raise TrainingError("training feature set is empty")
        epochs = epochs or self.config.epochs

        labels = self.transform.fit_transform(train.y)
        self._fit_normalizer(train)
        self._fitted = True
        train = self._normalize(train)
        optimizer, scheduler = self._make_optimizer()

        result = TrainingResult()
        best_state = self.predictor.state_dict()
        samples_seen = 0
        start_time = time.perf_counter()
        patience = self.config.early_stopping_patience
        epochs_without_improvement = 0

        for epoch in range(epochs):
            self.predictor.train()
            epoch_losses = []
            for batch in self._batches(len(train)):
                epoch_losses.append(self.train_step(train, batch, optimizer, labels))
                samples_seen += len(batch)
                if scheduler is not None:
                    scheduler.step()
            entry: Dict[str, float] = {
                "epoch": float(epoch),
                "train_loss": float(np.mean(epoch_losses)),
                "lr": float(optimizer.lr),
            }
            if valid is not None and len(valid) > 0:
                valid_metrics = self.evaluate(valid)
                entry["valid_mape"] = valid_metrics["mape"]
                entry["valid_rmse"] = valid_metrics["rmse"]
                if valid_metrics["mape"] < result.best_valid_mape:
                    result.best_valid_mape = valid_metrics["mape"]
                    result.best_epoch = epoch
                    best_state = self.predictor.state_dict()
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
            result.history.append(entry)
            if self.config.verbose:
                print(f"[trainer] epoch {epoch}: " + ", ".join(f"{k}={v:.4g}" for k, v in entry.items()))
            if patience and epochs_without_improvement >= patience:
                break

        elapsed = time.perf_counter() - start_time
        result.train_seconds = elapsed
        result.throughput_samples_per_s = samples_seen / max(elapsed, 1e-9)
        if valid is not None and len(valid) > 0 and result.best_valid_mape < float("inf"):
            self.predictor.load_state_dict(best_state)
        return result

    def clone(self) -> "Trainer":
        """A detached deep copy of this fitted trainer.

        The clone owns its own predictor parameters (copied via
        ``state_dict``), feature-normalisation statistics and fitted label
        transform, so training the clone — the fine-tuning path — can never
        touch this trainer's weights.  A fleet serving this trainer through
        ``ModelRegistry.load_shared`` therefore keeps answering queries from
        the original weights while the clone adapts.  The clone's training
        RNG restarts from ``config.seed``.
        """
        if not self._fitted:
            raise TrainingError("Trainer.clone requires a fitted trainer (call fit() first)")
        twin = Trainer(
            predictor_config=self.predictor.config,  # frozen dataclass, safe to share
            config=self.config,
        )
        twin.predictor.load_state_dict(self.predictor.state_dict())
        twin.transform = copy.deepcopy(self.transform)
        twin._x_mean = None if self._x_mean is None else np.array(self._x_mean, copy=True)
        twin._x_std = None if self._x_std is None else np.array(self._x_std, copy=True)
        twin._dev_mean = None if self._dev_mean is None else np.array(self._dev_mean, copy=True)
        twin._dev_std = None if self._dev_std is None else np.array(self._dev_std, copy=True)
        twin._fitted = True
        return twin

    def normalize_features(self, features: FeatureSet) -> FeatureSet:
        """Apply the training-set feature standardisation to ``features``."""
        if not self._fitted:
            raise TrainingError("Trainer.normalize_features called before fit()")
        return self._normalize(features)

    @property
    def max_leaves(self) -> int:
        """Padded Compact-AST width the predictor was built for."""
        return self.predictor.config.max_leaves

    def predict(
        self, features: FeatureSet, batch_size: Optional[int] = None, dtype=None
    ) -> np.ndarray:
        """Predict latencies in seconds through the autograd-free infer path.

        ``batch_size`` optionally micro-batches the forward pass so very large
        query batches (the serving path) run in bounded memory; the result is
        identical to the single-shot call because the predictor has no
        cross-sample interactions.  ``dtype=np.float32`` runs the predictor in
        single precision (the default float64 stays bit-identical to the
        autograd forward).
        """
        if not self._fitted:
            raise TrainingError("Trainer.predict called before fit()")
        if batch_size is not None and batch_size <= 0:
            raise TrainingError(f"predict batch_size must be positive, got {batch_size}")
        self.predictor.eval()
        normalized = self._normalize(features)
        transformed = self.predictor.predict_transformed(
            normalized, batch_size=min(batch_size or 256, 256), dtype=dtype
        )
        return np.maximum(
            self.transform.inverse_transform(np.asarray(transformed, dtype=np.float64)), 1e-12
        )

    def distill(self, features: FeatureSet, **kwargs):
        """Distill this fitted teacher into a fast-tier student MLP.

        Trains a small student on *this trainer's* predictions over
        ``features`` (normally the training FeatureSet) and returns
        ``(DistilledModel, stats)``; see :func:`repro.core.distill.distill`
        for the keyword options.  The student backs the serving stack's
        ``fast`` tier.
        """
        from repro.core.distill import distill as _distill

        return _distill(self, features, **kwargs)

    def evaluate(self, features: FeatureSet) -> Dict[str, float]:
        """MAPE/RMSE/threshold-accuracy of predictions in the original space."""
        if len(features) == 0:
            raise TrainingError("cannot evaluate an empty feature set")
        predictions = self.predict(features)
        return error_report(predictions, features.y)

    def latent(self, features: FeatureSet) -> np.ndarray:
        """Latent representations (used by CMD analysis and task sampling)."""
        if not self._fitted:
            raise TrainingError("Trainer.latent called before fit()")
        self.predictor.eval()
        return self.predictor.encode_features(self._normalize(features))
