"""Task sampling strategies for cross-device fine-tuning (Algorithm 1).

When adapting the cost model to a new device, profiling every task is too
expensive.  The clustering-based strategy clusters all tensor-program
features into κ clusters, sorts the clusters by size and, for each cluster,
picks the not-yet-selected task whose features lie closest (on average) to
the cluster center -- yielding κ representative tasks to profile on the
target device.  Random sampling is the baseline of Fig. 13.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.core.kmeans import KMeans
from repro.errors import TrainingError
from repro.utils.rng import new_rng


def select_tasks_kmeans(
    features_by_task: Mapping[str, np.ndarray],
    num_tasks: int,
    seed: int | str | None = 0,
) -> List[str]:
    """Algorithm 1: clustering-based task selection.

    Args:
        features_by_task: Maps each task key to the feature (or latent)
            matrix ``X_tau`` of its tensor programs, shape ``[n_tau, D]``.
        num_tasks: κ, the number of tasks to select (also the number of
            clusters).
        seed: Seed of the KMeans initialisation.

    Returns:
        The selected task keys, one per cluster, ordered by decreasing
        cluster size (the order they were picked in).
    """
    if not features_by_task:
        raise TrainingError("no tasks to select from")
    task_keys = list(features_by_task)
    kappa = min(int(num_tasks), len(task_keys))
    if kappa <= 0:
        raise TrainingError("num_tasks must be positive")

    # Line 1: cluster all tensor-program features.
    all_features = np.concatenate(
        [np.atleast_2d(features_by_task[key]) for key in task_keys], axis=0
    )
    kmeans = KMeans(kappa, seed=seed)
    result = kmeans.fit(all_features)
    kappa = kmeans.num_clusters  # may have been clamped

    # Line 2: sort clusters by size (descending).
    sizes = np.bincount(result.labels, minlength=kappa)
    cluster_order = list(np.argsort(-sizes))

    # Line 6: Ψ[e, τ] = mean distance of task τ's features to center e.
    psi = np.zeros((kappa, len(task_keys)))
    for column, key in enumerate(task_keys):
        features = np.atleast_2d(features_by_task[key])
        distances = np.linalg.norm(
            features[:, None, :] - result.centers[None, :, :], axis=2
        )  # [n_tau, kappa]
        psi[:, column] = distances.mean(axis=0)

    # Lines 4-14: pick the closest unselected task for each cluster.
    selected: List[str] = []
    remaining = set(range(len(task_keys)))
    for cluster in cluster_order:
        order = np.argsort(psi[cluster])
        for column in order:
            if column in remaining:
                selected.append(task_keys[column])
                remaining.discard(column)
                break
        if len(selected) >= num_tasks:
            break
    return selected


def select_tasks_random(
    task_keys: Sequence[str],
    num_tasks: int,
    seed: int | str | None = 0,
) -> List[str]:
    """Uniform random task selection (the Fig. 13 baseline)."""
    task_keys = list(task_keys)
    if not task_keys:
        raise TrainingError("no tasks to select from")
    rng = new_rng(seed)
    count = min(int(num_tasks), len(task_keys))
    if count <= 0:
        raise TrainingError("num_tasks must be positive")
    indices = rng.choice(len(task_keys), size=count, replace=False)
    return [task_keys[i] for i in sorted(indices)]
