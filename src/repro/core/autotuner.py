"""Hyper-parameter and architecture search (the paper's Optuna-based auto-tuner).

The paper searches transformer depth, decoder width, learning rate, weight
decay, optimizer, scheduler, batch size and the CMD coefficient α with Optuna
and keeps the best of ~1000 trials.  Offline we implement a random-search
auto-tuner with successive halving (cheap trials first, the survivors get
more epochs), which covers the same search space with a bounded budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import PredictorConfig, TrainingConfig
from repro.core.trainer import Trainer
from repro.errors import ConfigError
from repro.features.pipeline import FeatureSet
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class SearchSpace:
    """Candidate values for each searched variable (Appendix B)."""

    num_encoder_layers: Tuple[int, ...] = (1, 2, 3)
    d_model: Tuple[int, ...] = (32, 64, 96)
    decoder_width: Tuple[int, ...] = (32, 64, 128)
    learning_rate: Tuple[float, ...] = (3e-4, 1e-3, 3e-3)
    weight_decay: Tuple[float, ...] = (0.0, 1e-4, 1.3e-3)
    optimizer: Tuple[str, ...] = ("adam", "sgd")
    scheduler: Tuple[str, ...] = ("cyclic", "step", "cosine")
    batch_size: Tuple[int, ...] = (64, 128, 256)
    lambda_mape: Tuple[float, ...] = (1e-3, 1e-2, 0.1, 0.3)
    cmd_alpha: Tuple[float, ...] = (0.1, 0.5, 1.0, 2.0)

    def sample(self, rng: np.random.Generator) -> Dict[str, object]:
        """Draw one random configuration."""
        return {
            "num_encoder_layers": int(rng.choice(self.num_encoder_layers)),
            "d_model": int(rng.choice(self.d_model)),
            "decoder_width": int(rng.choice(self.decoder_width)),
            "learning_rate": float(rng.choice(self.learning_rate)),
            "weight_decay": float(rng.choice(self.weight_decay)),
            "optimizer": str(rng.choice(self.optimizer)),
            "scheduler": str(rng.choice(self.scheduler)),
            "batch_size": int(rng.choice(self.batch_size)),
            "lambda_mape": float(rng.choice(self.lambda_mape)),
            "cmd_alpha": float(rng.choice(self.cmd_alpha)),
        }


@dataclass
class Trial:
    """One evaluated configuration."""

    params: Dict[str, object]
    valid_mape: float
    epochs: int


@dataclass
class AutoTuneResult:
    """Search outcome: the best configuration and the full trial history."""

    best_params: Dict[str, object]
    best_valid_mape: float
    trials: List[Trial] = field(default_factory=list)

    def best_configs(self, base_predictor: PredictorConfig, base_training: TrainingConfig):
        """Materialise the winning (PredictorConfig, TrainingConfig) pair."""
        return configs_from_params(self.best_params, base_predictor, base_training)


def configs_from_params(
    params: Dict[str, object],
    base_predictor: Optional[PredictorConfig] = None,
    base_training: Optional[TrainingConfig] = None,
) -> Tuple[PredictorConfig, TrainingConfig]:
    """Apply a sampled parameter dict onto base configurations."""
    base_predictor = base_predictor if base_predictor is not None else PredictorConfig()
    base_training = base_training if base_training is not None else TrainingConfig()
    width = int(params.get("decoder_width", base_predictor.decoder_hidden[0]))
    predictor = replace(
        base_predictor,
        num_encoder_layers=int(params.get("num_encoder_layers", base_predictor.num_encoder_layers)),
        d_model=int(params.get("d_model", base_predictor.d_model)),
        embedding_dim=int(params.get("d_model", base_predictor.d_model)),
        decoder_hidden=(width, width),
    )
    training = replace(
        base_training,
        learning_rate=float(params.get("learning_rate", base_training.learning_rate)),
        weight_decay=float(params.get("weight_decay", base_training.weight_decay)),
        optimizer=str(params.get("optimizer", base_training.optimizer)),
        scheduler=str(params.get("scheduler", base_training.scheduler)),
        batch_size=int(params.get("batch_size", base_training.batch_size)),
        lambda_mape=float(params.get("lambda_mape", base_training.lambda_mape)),
        cmd_alpha=float(params.get("cmd_alpha", base_training.cmd_alpha)),
    )
    return predictor, training


class AutoTuner:
    """Random search with successive halving over the CDMPP search space."""

    def __init__(
        self,
        search_space: Optional[SearchSpace] = None,
        num_trials: int = 8,
        initial_epochs: int = 3,
        final_epochs: int = 10,
        survivor_fraction: float = 0.5,
        seed: int | str | None = 0,
    ):
        if num_trials <= 0:
            raise ConfigError("num_trials must be positive")
        if not 0 < survivor_fraction <= 1:
            raise ConfigError("survivor_fraction must be in (0, 1]")
        self.search_space = search_space if search_space is not None else SearchSpace()
        self.num_trials = int(num_trials)
        self.initial_epochs = int(initial_epochs)
        self.final_epochs = int(final_epochs)
        self.survivor_fraction = float(survivor_fraction)
        self._rng = new_rng(seed)

    def _run_trial(
        self,
        params: Dict[str, object],
        train: FeatureSet,
        valid: FeatureSet,
        epochs: int,
        base_predictor: PredictorConfig,
        base_training: TrainingConfig,
    ) -> float:
        predictor_cfg, training_cfg = configs_from_params(params, base_predictor, base_training)
        training_cfg = replace(training_cfg, epochs=epochs, verbose=False)
        trainer = Trainer(predictor_config=predictor_cfg, config=training_cfg)
        trainer.fit(train, valid)
        return trainer.evaluate(valid)["mape"]

    def search(
        self,
        train: FeatureSet,
        valid: FeatureSet,
        base_predictor: Optional[PredictorConfig] = None,
        base_training: Optional[TrainingConfig] = None,
    ) -> AutoTuneResult:
        """Run the search and return the best configuration found."""
        base_predictor = base_predictor if base_predictor is not None else PredictorConfig()
        base_training = base_training if base_training is not None else TrainingConfig()
        candidates = [self.search_space.sample(self._rng) for _ in range(self.num_trials)]
        trials: List[Trial] = []

        # Round 1: cheap evaluation of every candidate.
        scored: List[Tuple[float, Dict[str, object]]] = []
        for params in candidates:
            mape = self._run_trial(params, train, valid, self.initial_epochs, base_predictor, base_training)
            trials.append(Trial(params=params, valid_mape=mape, epochs=self.initial_epochs))
            scored.append((mape, params))

        # Round 2: the best fraction gets the full epoch budget.
        scored.sort(key=lambda item: item[0])
        survivors = scored[: max(1, math.ceil(len(scored) * self.survivor_fraction))]
        best_mape, best_params = survivors[0]
        for mape, params in survivors:
            full = self._run_trial(params, train, valid, self.final_epochs, base_predictor, base_training)
            trials.append(Trial(params=params, valid_mape=full, epochs=self.final_epochs))
            if full < best_mape:
                best_mape, best_params = full, params

        return AutoTuneResult(best_params=best_params, best_valid_mape=best_mape, trials=trials)
