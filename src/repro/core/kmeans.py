"""KMeans clustering (Lloyd's algorithm with k-means++ initialisation).

Implemented from scratch because the sampling strategy (Algorithm 1) and the
experiment harness need deterministic, dependency-free clustering of feature
or latent vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import TrainingError
from repro.utils.rng import new_rng


@dataclass
class KMeansResult:
    """Clustering output: centers, labels and the final inertia."""

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iter: int


class KMeans:
    """KMeans with k-means++ seeding and empty-cluster re-seeding."""

    def __init__(
        self,
        num_clusters: int,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: int | str | None = 0,
    ):
        if num_clusters <= 0:
            raise TrainingError("num_clusters must be positive")
        self.num_clusters = int(num_clusters)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self._rng = new_rng(seed)
        self.result: Optional[KMeansResult] = None

    # ------------------------------------------------------------------
    def _init_centers(self, x: np.ndarray) -> np.ndarray:
        """k-means++ initialisation."""
        n = x.shape[0]
        centers = np.empty((self.num_clusters, x.shape[1]), dtype=np.float64)
        first = int(self._rng.integers(0, n))
        centers[0] = x[first]
        closest_sq = np.sum((x - centers[0]) ** 2, axis=1)
        for k in range(1, self.num_clusters):
            total = float(closest_sq.sum())
            if total <= 1e-18:
                # All points identical to chosen centers; pick uniformly.
                idx = int(self._rng.integers(0, n))
            else:
                probs = closest_sq / total
                idx = int(self._rng.choice(n, p=probs))
            centers[k] = x[idx]
            closest_sq = np.minimum(closest_sq, np.sum((x - centers[k]) ** 2, axis=1))
        return centers

    @staticmethod
    def _assign(x: np.ndarray, centers: np.ndarray) -> tuple:
        distances = ((x[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        labels = distances.argmin(axis=1)
        inertia = float(distances[np.arange(x.shape[0]), labels].sum())
        return labels, inertia

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray) -> KMeansResult:
        """Cluster ``x`` of shape ``[N, D]``; clamps k to N when N < k."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] == 0:
            raise TrainingError(f"KMeans expects a non-empty [N, D] array, got shape {x.shape}")
        k = min(self.num_clusters, x.shape[0])
        if k < self.num_clusters:
            self.num_clusters = k

        centers = self._init_centers(x)
        labels, inertia = self._assign(x, centers)
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            new_centers = centers.copy()
            for cluster in range(self.num_clusters):
                members = x[labels == cluster]
                if members.shape[0] == 0:
                    # Re-seed empty clusters at the point farthest from its center.
                    distances = ((x - centers[labels]) ** 2).sum(axis=1)
                    new_centers[cluster] = x[int(np.argmax(distances))]
                else:
                    new_centers[cluster] = members.mean(axis=0)
            shift = float(np.max(np.abs(new_centers - centers)))
            centers = new_centers
            labels, inertia = self._assign(x, centers)
            if shift < self.tol:
                break
        self.result = KMeansResult(centers=centers, labels=labels, inertia=inertia, n_iter=iteration)
        return self.result

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Assign new points to the fitted clusters."""
        if self.result is None:
            raise TrainingError("KMeans.predict called before fit")
        labels, _ = self._assign(np.asarray(x, dtype=np.float64), self.result.centers)
        return labels

    def cluster_sizes(self) -> np.ndarray:
        """Number of points per cluster (after fit)."""
        if self.result is None:
            raise TrainingError("KMeans.cluster_sizes called before fit")
        return np.bincount(self.result.labels, minlength=self.num_clusters)
