"""Saving and loading trained predictors.

A trained CDMPP cost model consists of the predictor weights, the fitted
label transform (Box-Cox λ and standardisation constants), the feature
normalisation statistics and the architecture/training configurations.  All
of it is stored in a single compressed ``.npz`` archive so a model trained
once can answer queries in later processes without retraining (the role of
the released checkpoints in the original artifact).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.core.config import PredictorConfig, TrainingConfig
from repro.core.trainer import Trainer
from repro.core.transforms import QuantileTransform, make_transform
from repro.errors import TrainingError

PathLike = Union[str, Path]

_PARAM_PREFIX = "param::"
_META_KEY = "meta_json"


def _config_to_dict(config) -> Dict:
    return dataclasses.asdict(config)


def save_trainer(trainer: Trainer, path: PathLike, extra_meta: Optional[Dict] = None) -> Path:
    """Serialize a fitted :class:`Trainer` to ``path`` (.npz).

    ``extra_meta`` is an optional JSON-serializable dict stored alongside the
    weights (the model registry records the target device, experiment scale
    and package version there); it is recoverable with :func:`read_meta`.
    """
    if not getattr(trainer, "_fitted", False):
        raise TrainingError("cannot save a trainer that has not been fitted")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    arrays: Dict[str, np.ndarray] = {}
    for name, param in trainer.predictor.named_parameters():
        arrays[_PARAM_PREFIX + name] = param.data

    arrays["normalizer_x_mean"] = trainer._x_mean
    arrays["normalizer_x_std"] = trainer._x_std
    arrays["normalizer_dev_mean"] = trainer._dev_mean
    arrays["normalizer_dev_std"] = trainer._dev_std

    transform = trainer.transform
    meta = {
        # Backend tag for repro.backends.load_backend dispatch; checkpoints
        # written before the tag existed load as "cdmpp" too.
        "backend": "cdmpp",
        "predictor_config": _config_to_dict(trainer.predictor.config),
        "training_config": _config_to_dict(trainer.config),
        "transform": {
            "name": transform.name,
            "mean": transform._mean,
            "std": transform._std,
            "lambda": getattr(transform, "lambda_", None),
        },
        "extra": dict(extra_meta or {}),
    }
    if isinstance(transform, QuantileTransform):
        arrays["transform_quantiles"] = transform._quantiles
        arrays["transform_references"] = transform._references
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)

    np.savez_compressed(path, **arrays)
    return path


def read_meta(path: PathLike) -> Dict:
    """Read a checkpoint's metadata (configs + ``extra_meta``) without weights.

    Much cheaper than :func:`load_trainer` when only bookkeeping information
    is needed (e.g. listing a model registry).
    """
    path = Path(path)
    if not path.exists():
        raise TrainingError(f"no saved model at {path}")
    with np.load(path, allow_pickle=False) as archive:
        return json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))


def load_trainer(path: PathLike) -> Trainer:
    """Load a :class:`Trainer` previously stored with :func:`save_trainer`."""
    path = Path(path)
    if not path.exists():
        raise TrainingError(f"no saved model at {path}")
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        backend = meta.get("backend", "cdmpp")
        if backend != "cdmpp":
            raise TrainingError(
                f"checkpoint {path} was written by backend {backend!r}, not the CDMPP "
                "trainer; load it through repro.backends.load_backend instead"
            )
        predictor_config = PredictorConfig(
            **{k: tuple(v) if isinstance(v, list) else v for k, v in meta["predictor_config"].items()}
        )
        training_config = TrainingConfig(**meta["training_config"])

        trainer = Trainer(predictor_config=predictor_config, config=training_config)
        state = {
            name[len(_PARAM_PREFIX):]: archive[name]
            for name in archive.files
            if name.startswith(_PARAM_PREFIX)
        }
        trainer.predictor.load_state_dict(state)

        trainer._x_mean = archive["normalizer_x_mean"]
        trainer._x_std = archive["normalizer_x_std"]
        trainer._dev_mean = archive["normalizer_dev_mean"]
        trainer._dev_std = archive["normalizer_dev_std"]

        transform_meta = meta["transform"]
        transform = make_transform(transform_meta["name"])
        transform._mean = float(transform_meta["mean"])
        transform._std = float(transform_meta["std"])
        if transform_meta.get("lambda") is not None:
            transform.lambda_ = float(transform_meta["lambda"])
        if isinstance(transform, QuantileTransform):
            transform._quantiles = archive["transform_quantiles"]
            transform._references = archive["transform_references"]
        transform._fitted = True
        trainer.transform = transform
        trainer._fitted = True
    return trainer
