"""Experiment scales: how big the synthetic experiments are.

The paper trains on tens of millions of records for hours on a V100.  The
NumPy substrate cannot do that, so every experiment driver takes an
:class:`ExperimentScale` that sets the dataset size, model capacity and
training length.  ``tiny`` is used by the unit tests, ``small`` by the
benchmark suite, ``medium``/``paper`` for longer offline runs.  The code path
is identical at every scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.core.config import PredictorConfig, TrainingConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class ExperimentScale:
    """All scale knobs for one experiment run."""

    name: str
    zoo_models: Tuple[str, ...]
    num_synthetic_models: int
    schedules_per_task: int
    epochs: int
    finetune_epochs: int
    d_model: int
    num_encoder_layers: int
    batch_size: int
    autotune_trials: int

    def predictor_config(self, **overrides) -> PredictorConfig:
        """Predictor architecture at this scale."""
        base = PredictorConfig(
            d_model=self.d_model,
            num_heads=4,
            num_encoder_layers=self.num_encoder_layers,
            embedding_dim=self.d_model,
            decoder_hidden=(self.d_model, self.d_model),
        )
        return replace(base, **overrides) if overrides else base

    def training_config(self, **overrides) -> TrainingConfig:
        """Training hyper-parameters at this scale."""
        base = TrainingConfig(epochs=self.epochs, batch_size=self.batch_size)
        return replace(base, **overrides) if overrides else base

    def dataset_kwargs(self) -> Dict[str, object]:
        """Keyword arguments for :class:`repro.dataset.DatasetConfig`."""
        return {
            "zoo_models": self.zoo_models,
            "num_synthetic_models": self.num_synthetic_models,
            "schedules_per_task": self.schedules_per_task,
        }


_SCALES: Dict[str, ExperimentScale] = {
    "tiny": ExperimentScale(
        name="tiny",
        zoo_models=("bert_tiny", "mobilenet_v2"),
        num_synthetic_models=2,
        schedules_per_task=4,
        epochs=6,
        finetune_epochs=2,
        d_model=32,
        num_encoder_layers=1,
        batch_size=64,
        autotune_trials=3,
    ),
    "small": ExperimentScale(
        name="small",
        zoo_models=("bert_tiny", "mobilenet_v2", "vgg16"),
        num_synthetic_models=8,
        schedules_per_task=8,
        epochs=20,
        finetune_epochs=4,
        d_model=64,
        num_encoder_layers=2,
        batch_size=128,
        autotune_trials=6,
    ),
    "medium": ExperimentScale(
        name="medium",
        zoo_models=("bert_tiny", "mobilenet_v2", "vgg16", "resnet50", "inception_v3"),
        num_synthetic_models=16,
        schedules_per_task=12,
        epochs=40,
        finetune_epochs=8,
        d_model=96,
        num_encoder_layers=3,
        batch_size=256,
        autotune_trials=12,
    ),
    "paper": ExperimentScale(
        name="paper",
        zoo_models=(
            "bert_tiny",
            "bert_base",
            "mobilenet_v2",
            "vgg16",
            "resnet50",
            "inception_v3",
            "gpt2_small",
            "lstm_lm",
        ),
        num_synthetic_models=112,  # zoo (8) + synthetic (112) = 120 models, as in Tenset
        schedules_per_task=32,
        epochs=120,
        finetune_epochs=20,
        d_model=256,
        num_encoder_layers=11,  # the auto-tuned depth reported in Appendix B
        batch_size=600,  # the auto-tuned batch size reported in Appendix B
        autotune_trials=1000,
    ),
}


def get_scale(name: str = "small") -> ExperimentScale:
    """Look up an experiment scale by name."""
    try:
        return _SCALES[name]
    except KeyError as exc:
        raise ConfigError(
            f"unknown experiment scale {name!r}; available: {', '.join(sorted(_SCALES))}"
        ) from exc


def available_scales() -> Tuple[str, ...]:
    """Names of all defined scales."""
    return tuple(sorted(_SCALES))
