"""Distilling the CDMPP teacher into a small MLP student (the fast tier).

The serving stack offers two tiers: ``accurate`` answers straight from the
CDMPP transformer, ``fast`` answers from a distilled student — a small MLP
trained on the *teacher's* predictions over the training
:class:`~repro.features.pipeline.FeatureSet` (knowledge distillation in the
style of TLP's lightweight MLP family).  The student never sees measured
latencies: its contract is to reproduce the teacher cheaply, so its accuracy
is bounded by (and tracks) the teacher's.

The student consumes a fixed-size pooled summary of the Compact-AST leaf
matrix (mean pool + max pool over real leaves, the leaf count, and the device
features), standardised with statistics fitted at distillation time, and
regresses log-latency.  Inference runs through the autograd-free
``Module.infer`` path only.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.features.pipeline import FeatureSet
from repro.nn.losses import mse_loss
from repro.nn.mlp import MLP
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng


def teacher_fingerprint(trainer) -> str:
    """A stable digest of a fitted teacher's weights and normalisers.

    Folded into the distilled model's ``cache_signature`` so a student
    distilled from retrained teacher weights never aliases cached predictions
    of a student of the old weights (same invariant the tune cache relies on).
    """
    hasher = hashlib.blake2b(digest_size=8)
    for name, param in sorted(trainer.predictor.named_parameters()):
        hasher.update(name.encode("utf-8"))
        hasher.update(np.ascontiguousarray(param.data).tobytes())
    for stats in (trainer._x_mean, trainer._x_std, trainer._dev_mean, trainer._dev_std):
        if stats is not None:
            hasher.update(np.ascontiguousarray(stats).tobytes())
    transform = trainer.transform
    hasher.update(
        repr(
            (
                transform.name,
                getattr(transform, "_mean", None),
                getattr(transform, "_std", None),
                getattr(transform, "lambda_", None),
            )
        ).encode("utf-8")
    )
    return hasher.hexdigest()


class DistilledModel:
    """The fast-tier student: pooled features -> log-latency MLP."""

    def __init__(
        self,
        student: MLP,
        rep_mean: np.ndarray,
        rep_std: np.ndarray,
        max_leaves: int,
        feature_dim: int,
        device_feature_dim: int,
        teacher_lineage: Dict,
    ):
        self.student = student
        self.rep_mean = np.asarray(rep_mean, dtype=np.float64)
        self.rep_std = np.asarray(rep_std, dtype=np.float64)
        self.max_leaves = int(max_leaves)
        self.feature_dim = int(feature_dim)
        self.device_feature_dim = int(device_feature_dim)
        #: Where the student came from: teacher backend tag, weight
        #: fingerprint and padding width (recorded in checkpoints).
        self.teacher_lineage = dict(teacher_lineage)

    # -- featurization ---------------------------------------------------
    @staticmethod
    def represent(features: FeatureSet) -> np.ndarray:
        """Fixed-size representation of each sample (no Tensor graph).

        Mean- and max-pool the leaf feature matrix over *real* leaves,
        then append the (log) leaf count and the device features.
        """
        counts = features.leaf_counts.astype(np.float64)
        masked = features.x * features.mask[:, :, None]
        mean_pool = masked.sum(axis=1) / np.maximum(counts, 1.0)[:, None]
        max_pool = masked.max(axis=1)
        return np.concatenate(
            [mean_pool, max_pool, np.log1p(counts)[:, None], features.device_features],
            axis=-1,
        )

    @property
    def rep_dim(self) -> int:
        """Width of the student's input representation."""
        return 2 * self.feature_dim + 1 + self.device_feature_dim

    # -- inference -------------------------------------------------------
    def predict(self, features: FeatureSet, dtype=None) -> np.ndarray:
        """Predicted latency in seconds per sample (autograd-free)."""
        if len(features) == 0:
            return np.zeros(0, dtype=np.float64)
        rep = (self.represent(features) - self.rep_mean) / self.rep_std
        if dtype is not None:
            rep = rep.astype(dtype)
        log_latency = np.asarray(self.student.infer(rep).reshape(-1), dtype=np.float64)
        # Clip before exp: a wild extrapolation must not overflow to inf.
        return np.maximum(np.exp(np.clip(log_latency, -60.0, 60.0)), 1e-12)


def distill(
    teacher,
    features: FeatureSet,
    hidden: Sequence[int] = (128, 128),
    epochs: int = 200,
    batch_size: int = 256,
    learning_rate: float = 3e-3,
    weight_decay: float = 1e-5,
    seed: int = 0,
) -> Tuple[DistilledModel, Dict[str, float]]:
    """Train a fast-tier student on ``teacher`` outputs over ``features``.

    ``teacher`` is a fitted :class:`repro.core.trainer.Trainer`.  Returns the
    :class:`DistilledModel` and a stats dict (wall time, final loss, agreement
    MAPE between student and teacher on the distillation set).
    """
    if not getattr(teacher, "_fitted", False):
        raise TrainingError("distill() needs a fitted teacher (call fit() first)")
    if len(features) == 0:
        raise TrainingError("distill() needs a non-empty feature set")

    start = time.perf_counter()
    targets = np.log(teacher.predict(features))  # seconds -> log space
    rep = DistilledModel.represent(features)
    rep_mean = rep.mean(axis=0)
    rep_std = rep.std(axis=0)
    rep_std = np.where(rep_std < 1e-8, 1.0, rep_std)
    rep = (rep - rep_mean) / rep_std

    rng = new_rng(("distill", seed))
    student = MLP(rep.shape[1], list(hidden), 1, activation="relu", rng=rng)
    optimizer = Adam(student.parameters(), lr=learning_rate, weight_decay=weight_decay)

    last_loss = float("inf")
    for _ in range(epochs):
        order = rng.permutation(len(features))
        epoch_losses = []
        for begin in range(0, len(order), batch_size):
            batch = order[begin : begin + batch_size]
            optimizer.zero_grad()
            pred = student(Tensor(rep[batch])).reshape(-1)
            loss = mse_loss(pred, Tensor(targets[batch]))
            loss.backward()
            optimizer.step()
            epoch_losses.append(float(loss.item()))
        last_loss = float(np.mean(epoch_losses))

    student.eval()
    model = DistilledModel(
        student=student,
        rep_mean=rep_mean,
        rep_std=rep_std,
        max_leaves=features.max_leaves,
        feature_dim=features.feature_dim,
        device_feature_dim=features.device_features.shape[1],
        teacher_lineage={
            "backend": "cdmpp",
            "fingerprint": teacher_fingerprint(teacher),
            "max_leaves": int(teacher.max_leaves),
        },
    )
    teacher_pred = np.exp(targets)
    student_pred = model.predict(features)
    agreement = float(
        np.mean(np.abs(student_pred - teacher_pred) / np.maximum(teacher_pred, 1e-12))
    )
    stats = {
        "distill_seconds": time.perf_counter() - start,
        "final_loss": last_loss,
        "teacher_agreement_mape": agreement,
        "epochs": float(epochs),
    }
    return model, stats
