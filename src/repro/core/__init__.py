"""CDMPP core: the cross-domain cost model and its training machinery.

Sub-modules implement Section 5 of the paper:

* :mod:`repro.core.predictor` -- the Transformer-based predictor with
  leaf-count-specific embedding layers and the device-feature MLP (Fig. 4).
* :mod:`repro.core.losses` -- the scale-insensitive hybrid MSE+MAPE objective.
* :mod:`repro.core.transforms` -- Box-Cox / Yeo-Johnson / Quantile label
  normalization (Section 5.4).
* :mod:`repro.core.cmd` -- Central Moment Discrepancy (Section 5.3).
* :mod:`repro.core.trainer` / :mod:`repro.core.finetune` -- pre-training and
  CMD-regularized fine-tuning.
* :mod:`repro.core.sampling` -- the KMeans-based task sampling strategy
  (Algorithm 1).
* :mod:`repro.core.autotuner` -- hyper-parameter / architecture search.
* :mod:`repro.core.api` -- the high-level ``CDMPP`` facade used by the CLI,
  the replayer and the examples.
"""

from repro.core.config import PredictorConfig, TrainingConfig
from repro.core.predictor import CDMPPPredictor
from repro.core.losses import hybrid_loss
from repro.core.transforms import (
    BoxCoxTransform,
    IdentityTransform,
    LabelTransform,
    QuantileTransform,
    YeoJohnsonTransform,
    make_transform,
)
from repro.core.cmd import cmd_distance, cmd_distance_tensor
from repro.core.metrics import error_report, mape, rmse, threshold_accuracy
from repro.core.kmeans import KMeans
from repro.core.sampling import select_tasks_kmeans, select_tasks_random
from repro.core.trainer import Trainer, TrainingResult
from repro.core.finetune import FineTuner, cross_device_adaptation, featurize_for_predictor
from repro.core.autotuner import AutoTuner, SearchSpace
from repro.core.persistence import load_trainer, save_trainer
from repro.core.scale import ExperimentScale, get_scale
from repro.core.api import CDMPP

__all__ = [
    "PredictorConfig",
    "TrainingConfig",
    "CDMPPPredictor",
    "hybrid_loss",
    "LabelTransform",
    "BoxCoxTransform",
    "YeoJohnsonTransform",
    "QuantileTransform",
    "IdentityTransform",
    "make_transform",
    "cmd_distance",
    "cmd_distance_tensor",
    "mape",
    "rmse",
    "threshold_accuracy",
    "error_report",
    "KMeans",
    "select_tasks_kmeans",
    "select_tasks_random",
    "Trainer",
    "TrainingResult",
    "FineTuner",
    "cross_device_adaptation",
    "featurize_for_predictor",
    "AutoTuner",
    "SearchSpace",
    "save_trainer",
    "load_trainer",
    "ExperimentScale",
    "get_scale",
    "CDMPP",
]
