"""Compact AST extraction (Section 4.1 of the paper).

A Compact AST keeps only the AST leaves (computation statements).  Each leaf
is summarised by a fixed-length *computation vector* describing its
computation, memory accesses and the loop nest wrapping it; the *ordering
vector* records the leaf's position in the pre-order traversal of the full
AST, so no structural information is lost even though non-leaf (loop) nodes
are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import FeatureError
from repro.tir.ast import build_ast, preorder_serialize
from repro.tir.expr import BufferLoad, Call
from repro.tir.program import LeafRecord, TensorProgram
from repro.tir.stmt import LoopKind

# Length of one computation vector.  Changing this changes the predictor's
# input width, so it is exported as a constant.
COMPUTATION_VECTOR_LENGTH = 36


@dataclass(frozen=True)
class CompactAST:
    """The Compact AST of one tensor program.

    Attributes:
        computation_vectors: ``[num_leaves, COMPUTATION_VECTOR_LENGTH]`` array.
        ordering_vector: Pre-order position of each leaf in the original AST.
        num_ast_nodes: Node count of the original AST (kept for statistics).
    """

    computation_vectors: np.ndarray
    ordering_vector: np.ndarray
    num_ast_nodes: int

    @property
    def num_leaves(self) -> int:
        """Number of leaves (sequence length of the Compact AST)."""
        return int(self.computation_vectors.shape[0])

    def __post_init__(self) -> None:
        if self.computation_vectors.ndim != 2:
            raise FeatureError("computation_vectors must be a 2-D array")
        if self.computation_vectors.shape[1] != COMPUTATION_VECTOR_LENGTH:
            raise FeatureError(
                f"computation vectors must have length {COMPUTATION_VECTOR_LENGTH}, "
                f"got {self.computation_vectors.shape[1]}"
            )
        if self.ordering_vector.shape[0] != self.computation_vectors.shape[0]:
            raise FeatureError("ordering vector length must equal the number of leaves")


def _log1p(value: float) -> float:
    return float(np.log1p(max(value, 0.0)))


def _leaf_vector(leaf: LeafRecord, pattern_by_buffer: Dict[str, str]) -> np.ndarray:
    """Build the computation vector of one leaf (Section 4.1, category 1+2)."""
    stmt = leaf.stmt

    # Loop-nest structure around the leaf.
    serial_extent = 1
    counts = {kind: 0 for kind in LoopKind}
    extents = []
    for loop in leaf.loops:
        counts[loop.kind] += 1
        extents.append(loop.extent)
        if loop.kind is LoopKind.SERIAL:
            serial_extent *= loop.extent
    innermost = extents[-1] if extents else 1
    outermost = extents[0] if extents else 1

    # Memory behaviour of the statement.
    loads = stmt.value.loads()
    loads_global = sum(1 for load in loads if load.buffer.scope == "global")
    loads_fast = len(loads) - loads_global
    intrinsics = [node for node in stmt.value.walk() if isinstance(node, Call)]
    intrinsic_flops = sum(
        node.flops() - sum(arg.flops() for arg in node.args) for node in intrinsics
    )
    output_elems = stmt.buffer.num_elements
    read_footprint = sum(load.buffer.num_elements for load in loads)

    # Memory access patterns of this statement's reads (contiguous accesses
    # coalesce; strided/gather accesses waste bandwidth on most devices).
    pattern_counts = {"contiguous": 0, "strided": 0, "gather": 0}
    for load in loads:
        pattern = pattern_by_buffer.get(load.buffer.name, "contiguous")
        pattern_counts[pattern] += 1

    vector = [
        # Computation features.
        _log1p(stmt.flops),
        _log1p(leaf.trip_count),
        _log1p(leaf.total_flops),
        _log1p(intrinsic_flops),
        float(len(intrinsics)),
        float(stmt.is_reduction),
        float(stmt.is_init),
        float(stmt.label.startswith("cache_read")),
        # Memory-access features.
        float(len(loads)),
        float(loads_global),
        float(loads_fast),
        _log1p(stmt.bytes_read),
        _log1p(stmt.bytes_written),
        _log1p(leaf.total_bytes_read),
        _log1p(leaf.total_bytes_written),
        _log1p(output_elems),
        _log1p(read_footprint),
        _log1p(stmt.buffer.dtype_bytes),
        # Loop features: number of loops, lengths and properties.
        float(leaf.loop_depth),
        float(counts[LoopKind.SERIAL]),
        float(counts[LoopKind.PARALLEL]),
        float(counts[LoopKind.VECTORIZED]),
        float(counts[LoopKind.UNROLLED]),
        _log1p(serial_extent),
        _log1p(leaf.extent_of(LoopKind.PARALLEL)),
        _log1p(leaf.extent_of(LoopKind.VECTORIZED)),
        _log1p(leaf.extent_of(LoopKind.UNROLLED)),
        _log1p(innermost),
        _log1p(outermost),
        _log1p(float(np.prod(extents)) if extents else 1.0),
        float(len(stmt.indices)),
        _log1p(stmt.flops * innermost),
        # Access-pattern features.
        float(pattern_counts["contiguous"]),
        float(pattern_counts["strided"]),
        float(pattern_counts["gather"]),
        float(stmt.buffer.scope != "global"),
    ]
    if len(vector) != COMPUTATION_VECTOR_LENGTH:
        raise FeatureError(
            f"internal error: computation vector has {len(vector)} entries, "
            f"expected {COMPUTATION_VECTOR_LENGTH}"
        )
    return np.asarray(vector, dtype=np.float64)


def extract_compact_ast(program: TensorProgram) -> CompactAST:
    """Extract the Compact AST of a tensor program.

    The ordering vector comes from the pre-order serialization of the full
    Tiramisu-style AST (Fig. 1(d)): entry ``i`` is the pre-order index of the
    ``i``-th leaf.
    """
    leaves = program.leaf_records
    if not leaves:
        raise FeatureError("program has no compute statements")
    task = program.task
    pattern_by_buffer = {
        read.buffer.name: read.pattern
        for stmt in (task.body, *task.epilogues)
        for read in stmt.reads
    }
    vectors = np.stack([_leaf_vector(leaf, pattern_by_buffer) for leaf in leaves], axis=0)

    ast_root = build_ast(program)
    _, leaf_positions = preorder_serialize(ast_root)
    if len(leaf_positions) != len(leaves):
        raise FeatureError(
            f"AST leaf count {len(leaf_positions)} does not match program leaf count {len(leaves)}"
        )
    ordering = np.asarray(leaf_positions, dtype=np.float64)
    return CompactAST(
        computation_vectors=vectors,
        ordering_vector=ordering,
        num_ast_nodes=ast_root.num_nodes(),
    )
