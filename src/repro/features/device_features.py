"""Device-dependent features (Section 4.3 of the paper)."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.devices.spec import DeviceSpec, get_device

DEVICE_FEATURE_DIM = DeviceSpec.feature_dim()


def device_feature_vector(device: Union[str, DeviceSpec]) -> np.ndarray:
    """The device-dependent feature vector of one device.

    Features cover the hardware specification categories the paper lists:
    clock frequency, memory size/bandwidth, core count, peak FLOPS, cache
    sizes, SIMD width plus taxonomy indicators and derived quantities such as
    the roofline ridge point.
    """
    spec = get_device(device) if isinstance(device, str) else device
    return spec.feature_vector()
