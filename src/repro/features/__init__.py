"""Feature extraction: Compact ASTs, positional encoding, device features.

This implements Section 4 of the paper:

* :mod:`repro.features.compact_ast` -- one fixed-length *computation vector*
  per AST leaf plus the *ordering vector* from the pre-order traversal.
* :mod:`repro.features.positional` -- the pre-order-based positional
  encoding added to the computation vectors.
* :mod:`repro.features.device_features` -- device-dependent features
  (clock, bandwidth, cores, peak FLOPS, cache sizes, ...).
* :mod:`repro.features.pipeline` -- batch featurization of measurement
  records into padded arrays ready for the predictor.
"""

from repro.features.compact_ast import (
    COMPUTATION_VECTOR_LENGTH,
    CompactAST,
    extract_compact_ast,
)
from repro.features.positional import positional_encoding
from repro.features.device_features import device_feature_vector
from repro.features.pipeline import FeatureSet, featurize_programs, featurize_records

__all__ = [
    "COMPUTATION_VECTOR_LENGTH",
    "CompactAST",
    "extract_compact_ast",
    "positional_encoding",
    "device_feature_vector",
    "FeatureSet",
    "featurize_records",
    "featurize_programs",
]
