"""Batch featurization: measurement records -> padded arrays for the predictor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import FeatureError
from repro.devices.spec import DeviceSpec
from repro.features.compact_ast import COMPUTATION_VECTOR_LENGTH, extract_compact_ast
from repro.features.device_features import DEVICE_FEATURE_DIM, device_feature_vector
from repro.features.positional import add_positional_encoding
from repro.profiler.records import MeasureRecord
from repro.tir.program import TensorProgram


@dataclass
class FeatureSet:
    """Featurized dataset ready for training or inference.

    Attributes:
        x: ``[N, max_leaves, F]`` padded computation vectors (with positional
            encoding already added unless disabled).
        mask: ``[N, max_leaves]`` 1.0 for real leaves, 0.0 for padding.
        leaf_counts: ``[N]`` number of real leaves per sample.
        device_features: ``[N, D]`` device-dependent features.
        y: ``[N]`` latency labels in seconds (zeros when featurizing programs
            without measurements).
        task_keys: workload key per sample.
        models: source model (domain label) per sample.
        op_types: operator family per sample.
        devices: device name per sample.
    """

    x: np.ndarray
    mask: np.ndarray
    leaf_counts: np.ndarray
    device_features: np.ndarray
    y: np.ndarray
    task_keys: List[str]
    models: List[str]
    op_types: List[str]
    devices: List[str]

    def __len__(self) -> int:
        return int(self.x.shape[0])

    @property
    def max_leaves(self) -> int:
        """Padded sequence length."""
        return int(self.x.shape[1])

    @property
    def feature_dim(self) -> int:
        """Width of one computation vector."""
        return int(self.x.shape[2])

    def subset(self, indices: Sequence[int]) -> "FeatureSet":
        """A new FeatureSet restricted to ``indices`` (order preserved)."""
        indices = list(indices)
        return FeatureSet(
            x=self.x[indices],
            mask=self.mask[indices],
            leaf_counts=self.leaf_counts[indices],
            device_features=self.device_features[indices],
            y=self.y[indices],
            task_keys=[self.task_keys[i] for i in indices],
            models=[self.models[i] for i in indices],
            op_types=[self.op_types[i] for i in indices],
            devices=[self.devices[i] for i in indices],
        )

    def by_model(self) -> Dict[str, List[int]]:
        """Sample indices grouped by source model."""
        groups: Dict[str, List[int]] = {}
        for index, model in enumerate(self.models):
            groups.setdefault(model, []).append(index)
        return groups

    def by_task(self) -> Dict[str, List[int]]:
        """Sample indices grouped by workload key."""
        groups: Dict[str, List[int]] = {}
        for index, key in enumerate(self.task_keys):
            groups.setdefault(key, []).append(index)
        return groups

    @staticmethod
    def concatenate(parts: Sequence["FeatureSet"]) -> "FeatureSet":
        """Concatenate feature sets (re-padding to the widest sequence length)."""
        if not parts:
            raise FeatureError("cannot concatenate zero feature sets")
        max_leaves = max(part.max_leaves for part in parts)
        feature_dim = parts[0].feature_dim
        padded_x, padded_mask = [], []
        for part in parts:
            if part.feature_dim != feature_dim:
                raise FeatureError("feature dimension mismatch between feature sets")
            pad = max_leaves - part.max_leaves
            padded_x.append(np.pad(part.x, ((0, 0), (0, pad), (0, 0))))
            padded_mask.append(np.pad(part.mask, ((0, 0), (0, pad))))
        return FeatureSet(
            x=np.concatenate(padded_x, axis=0),
            mask=np.concatenate(padded_mask, axis=0),
            leaf_counts=np.concatenate([p.leaf_counts for p in parts]),
            device_features=np.concatenate([p.device_features for p in parts]),
            y=np.concatenate([p.y for p in parts]),
            task_keys=[k for p in parts for k in p.task_keys],
            models=[m for p in parts for m in p.models],
            op_types=[o for p in parts for o in p.op_types],
            devices=[d for p in parts for d in p.devices],
        )


def _featurize(
    programs: Sequence[TensorProgram],
    devices: Sequence[Union[str, DeviceSpec]],
    labels: Optional[Sequence[float]],
    models: Sequence[Optional[str]],
    use_positional_encoding: bool,
    max_leaves: Optional[int],
) -> FeatureSet:
    if not programs:
        raise FeatureError("nothing to featurize: empty program list")
    compact_asts = [extract_compact_ast(program) for program in programs]
    leaf_counts = np.asarray([ast.num_leaves for ast in compact_asts], dtype=np.int64)
    pad_to = int(max_leaves or leaf_counts.max())
    if leaf_counts.max() > pad_to:
        raise FeatureError(
            f"max_leaves={pad_to} is smaller than the largest Compact AST ({leaf_counts.max()})"
        )

    num = len(programs)
    x = np.zeros((num, pad_to, COMPUTATION_VECTOR_LENGTH), dtype=np.float64)
    mask = np.zeros((num, pad_to), dtype=np.float64)
    for index, ast in enumerate(compact_asts):
        vectors = ast.computation_vectors
        if use_positional_encoding:
            vectors = add_positional_encoding(vectors, ast.ordering_vector)
        x[index, : ast.num_leaves] = vectors
        mask[index, : ast.num_leaves] = 1.0

    device_feats = np.stack([device_feature_vector(device) for device in devices], axis=0)
    y = np.asarray(labels, dtype=np.float64) if labels is not None else np.zeros(num)
    device_names = [
        device if isinstance(device, str) else device.name for device in devices
    ]
    return FeatureSet(
        x=x,
        mask=mask,
        leaf_counts=leaf_counts,
        device_features=device_feats,
        y=y,
        task_keys=[program.task.workload_key for program in programs],
        models=[model or "unknown" for model in models],
        op_types=[program.task.op_type for program in programs],
        devices=device_names,
    )


def featurize_records(
    records: Sequence[MeasureRecord],
    use_positional_encoding: bool = True,
    max_leaves: Optional[int] = None,
) -> FeatureSet:
    """Featurize measured records (features + latency labels)."""
    if not records:
        raise FeatureError("nothing to featurize: empty record list")
    return _featurize(
        programs=[record.program for record in records],
        devices=[record.device for record in records],
        labels=[record.latency_s for record in records],
        models=[record.model for record in records],
        use_positional_encoding=use_positional_encoding,
        max_leaves=max_leaves,
    )


def featurize_programs(
    programs: Sequence[TensorProgram],
    device: Union[str, DeviceSpec, Sequence[Union[str, DeviceSpec]]],
    use_positional_encoding: bool = True,
    max_leaves: Optional[int] = None,
) -> FeatureSet:
    """Featurize unmeasured programs for inference.

    ``device`` is either a single target device (applied to every program) or
    a sequence with one device per program, which lets a cross-device model
    answer a mixed-device query batch in a single vectorized call.
    """
    programs = list(programs)
    if isinstance(device, (str, DeviceSpec)):
        devices: List[Union[str, DeviceSpec]] = [device] * len(programs)
    else:
        devices = list(device)
        if len(devices) != len(programs):
            raise FeatureError(
                f"got {len(devices)} devices for {len(programs)} programs; "
                "pass one device, or exactly one per program"
            )
    return _featurize(
        programs=programs,
        devices=devices,
        labels=None,
        models=[program.task.model for program in programs],
        use_positional_encoding=use_positional_encoding,
        max_leaves=max_leaves,
    )
