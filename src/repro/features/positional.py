"""Pre-order-based positional encoding (Section 4.2 of the paper).

The encoding of the ξ-th leaf uses its pre-order index ``V[ξ]`` (from the
ordering vector) rather than its index in the leaf sequence, so the position
of the computation inside the original AST -- including how deep under which
loops it sits relative to its siblings -- is what gets encoded:

    position(ξ, 2δ)     = sin(V[ξ] / Θ^(2δ / N_entry))
    position(ξ, 2δ + 1) = cos(V[ξ] / Θ^(2δ / N_entry))
"""

from __future__ import annotations

import numpy as np

from repro.errors import FeatureError

DEFAULT_THETA = 10_000.0


def positional_encoding(
    ordering_vector: np.ndarray,
    dim: int,
    theta: float = DEFAULT_THETA,
) -> np.ndarray:
    """Compute the positional encoding matrix ``[num_leaves, dim]``.

    Args:
        ordering_vector: Pre-order index of each leaf (the ordering vector of
            the Compact AST).
        dim: Output dimension, normally ``COMPUTATION_VECTOR_LENGTH`` so the
            encoding can be added to the computation vectors.
        theta: The frequency base Θ (10000 in the paper, following the
            Transformer convention).
    """
    if dim <= 0:
        raise FeatureError("positional encoding dimension must be positive")
    positions = np.asarray(ordering_vector, dtype=np.float64).reshape(-1, 1)  # [L, 1]
    half = (dim + 1) // 2
    deltas = np.arange(half, dtype=np.float64)  # δ = 0 .. ceil(dim/2)-1
    frequencies = positions / (theta ** (2.0 * deltas / dim))  # [L, half]

    encoding = np.zeros((positions.shape[0], dim), dtype=np.float64)
    encoding[:, 0::2] = np.sin(frequencies[:, : encoding[:, 0::2].shape[1]])
    encoding[:, 1::2] = np.cos(frequencies[:, : encoding[:, 1::2].shape[1]])
    return encoding


def add_positional_encoding(
    computation_vectors: np.ndarray,
    ordering_vector: np.ndarray,
    theta: float = DEFAULT_THETA,
) -> np.ndarray:
    """Add the positional encoding to the computation vectors (Fig. 1(d))."""
    if computation_vectors.ndim != 2:
        raise FeatureError("computation_vectors must be 2-D")
    encoding = positional_encoding(ordering_vector, computation_vectors.shape[1], theta=theta)
    return computation_vectors + encoding
