"""CDMPP reproduction: device-model agnostic latency prediction of tensor programs.

This package reimplements, on a synthetic but behaviour-preserving substrate,
the full system described in "CDMPP: A Device-Model Agnostic Framework for
Latency Prediction of Tensor Programs" (EuroSys 2024):

* ``repro.tir`` / ``repro.ops`` -- a miniature tensor-program IR with
  Ansor-style schedule primitives and Tiramisu-style ASTs.
* ``repro.devices`` / ``repro.profiler`` / ``repro.dataset`` -- a simulated
  multi-device measurement substrate that plays the role of Tenset.
* ``repro.features`` -- Compact ASTs and pre-order positional encoding.
* ``repro.nn`` -- a NumPy autodiff/NN framework (Transformer, LSTM, MLP).
* ``repro.core`` -- the CDMPP predictor, hybrid loss, Box-Cox normalization,
  CMD-regularized fine-tuning, KMeans-based task sampling, auto-tuner.
* ``repro.baselines`` -- XGBoost, Tiramisu, Habitat and TLP baselines.
* ``repro.replay`` -- the end-to-end DFG replayer (Algorithm 2).
* ``repro.search`` -- cost-model-guided schedule search (Fig. 14b).
"""

from repro.version import __version__

__all__ = ["__version__"]
