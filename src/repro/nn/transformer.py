"""Transformer encoder layers (pre-norm variant)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Dropout, GELU, LayerNorm, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, scratch_buffer


class TransformerEncoderLayer(Module):
    """One pre-norm Transformer encoder block (attention + feed-forward)."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        ffn_dim: Optional[int] = None,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        ffn_dim = ffn_dim or 4 * dim
        self.norm1 = LayerNorm(dim)
        self.attention = MultiHeadSelfAttention(dim, num_heads, dropout=dropout, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.ffn_in = Linear(dim, ffn_dim, rng=rng)
        self.ffn_act = GELU()
        self.ffn_out = Linear(ffn_dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, mask: Optional[Tensor] = None) -> Tensor:  # noqa: D102
        x = x + self.dropout(self.attention(self.norm1(x), mask=mask))
        x = x + self.dropout(self.ffn_out(self.ffn_act(self.ffn_in(self.norm2(x)))))
        return x

    def infer(self, x: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Autograd-free forward (dropout is the identity in inference)."""
        x = x + self.attention.infer(self.norm1.infer(x), mask=mask)
        # The FFN hidden state is the widest intermediate; stage it in a
        # pooled scratch buffer (GELU allocates the array that flows on).
        hidden = self.ffn_in.infer(
            self.norm2.infer(x),
            out=scratch_buffer(
                ("ffn", id(self)), x.shape[:-1] + (self.ffn_out.in_features,), x.dtype
            ),
        )
        return x + self.ffn_out.infer(self.ffn_act.infer(hidden))


class TransformerEncoder(Module):
    """A stack of Transformer encoder layers with a final layer norm."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        num_layers: int,
        ffn_dim: Optional[int] = None,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if num_layers <= 0:
            raise ModelError("TransformerEncoder needs at least one layer")
        self.layers = [
            TransformerEncoderLayer(dim, num_heads, ffn_dim=ffn_dim, dropout=dropout, rng=rng)
            for _ in range(num_layers)
        ]
        self.final_norm = LayerNorm(dim)

    def forward(self, x: Tensor, mask: Optional[Tensor] = None) -> Tensor:  # noqa: D102
        for layer in self.layers:
            x = layer(x, mask=mask)
        return self.final_norm(x)

    def infer(self, x: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:  # noqa: D102
        for layer in self.layers:
            x = layer.infer(x, mask=mask)
        return self.final_norm.infer(x)
