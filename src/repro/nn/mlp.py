"""Multi-layer perceptron built from Linear layers and activations."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ModelError
from repro.nn.layers import Dropout, Linear, make_activation
from repro.nn.module import Module
from repro.nn.tensor import Tensor, scratch_buffer


class MLP(Module):
    """A feed-forward network with configurable hidden widths.

    ``hidden_sizes`` may be empty, in which case the MLP degenerates to one
    Linear layer.  The activation is applied after every hidden layer but not
    after the output layer.
    """

    def __init__(
        self,
        in_features: int,
        hidden_sizes: Sequence[int],
        out_features: int,
        activation: str = "relu",
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ModelError("MLP feature sizes must be positive")
        sizes = [int(in_features), *[int(h) for h in hidden_sizes], int(out_features)]
        if any(s <= 0 for s in sizes):
            raise ModelError(f"all MLP layer sizes must be positive, got {sizes}")
        self.layers = [Linear(a, b, rng=rng) for a, b in zip(sizes[:-1], sizes[1:])]
        self.activations = [make_activation(activation) for _ in range(len(self.layers) - 1)]
        self.dropouts = [Dropout(dropout, rng=rng) for _ in range(len(self.layers) - 1)]
        self.sizes = sizes

    def forward(self, x: Tensor) -> Tensor:  # noqa: D102
        for index, layer in enumerate(self.layers):
            x = layer(x)
            if index < len(self.layers) - 1:
                x = self.activations[index](x)
                x = self.dropouts[index](x)
        return x

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Autograd-free forward; hidden activations stage in pooled buffers."""
        last = len(self.layers) - 1
        for index, layer in enumerate(self.layers):
            if index < last:
                # The activation allocates the array that flows on, so the
                # matmul result itself can live in a per-layer scratch buffer.
                out = scratch_buffer(
                    ("mlp", id(self), index), x.shape[:-1] + (layer.out_features,), x.dtype
                )
                x = self.activations[index].infer(layer.infer(x, out=out))
            else:
                x = layer.infer(x)
        return x

    def __repr__(self) -> str:
        arch = " -> ".join(str(s) for s in self.sizes)
        return f"MLP({arch})"
