"""Module base class, parameters and containers."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (always requires gradients)."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class of all neural-network modules.

    Submodules and parameters are discovered automatically from instance
    attributes (including lists of modules), so subclasses only define
    ``forward``.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Parameter / submodule discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield (name, parameter) pairs recursively."""
        for attr, value in vars(self).items():
            full = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{index}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{index}.")

    def parameters(self) -> List[Parameter]:
        """All trainable parameters."""
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all submodules recursively."""
        yield self
        for attr, value in vars(self).items():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(param.size for param in self.parameters()))

    # ------------------------------------------------------------------
    # Training utilities
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear gradients of all parameters."""
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all parameter arrays keyed by name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise ModelError(
                f"state dict mismatch: missing={sorted(missing)[:3]} unexpected={sorted(unexpected)[:3]}"
            )
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ModelError(
                    f"parameter {name!r} shape mismatch: {value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the module output; subclasses must override."""
        raise NotImplementedError

    def infer(self, *args, **kwargs):
        """Autograd-free forward over raw ndarrays (the inference fast path).

        Subclasses override this alongside :meth:`forward`.  The contract is
        eval-mode semantics (dropout is the identity) and, for float64
        inputs, bit-identical outputs to the autograd forward; float32 inputs
        run the same computation in single precision.  No ``Tensor`` graph or
        backward closures are built, and implementations may stage
        intermediates in pooled scratch buffers.
        """
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """A chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:  # noqa: D102 - trivial
        for layer in self.layers:
            x = layer(x)
        return x

    def infer(self, x: np.ndarray) -> np.ndarray:  # noqa: D102 - trivial
        for layer in self.layers:
            x = layer.infer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
