"""Multi-head self-attention."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class MultiHeadSelfAttention(Module):
    """Standard multi-head self-attention over ``[batch, seq, dim]`` inputs.

    An optional ``mask`` of shape ``[batch, seq]`` (1 = valid, 0 = padding)
    prevents attention to padded positions, which the CDMPP predictor uses
    because Compact ASTs in one batch may have different leaf counts.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if dim % num_heads != 0:
            raise ModelError(f"attention dim {dim} must be divisible by num_heads {num_heads}")
        self.dim = int(dim)
        self.num_heads = int(num_heads)
        self.head_dim = self.dim // self.num_heads
        self.qkv = Linear(dim, 3 * dim, rng=rng)
        self.out = Linear(dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, mask: Optional[Tensor] = None) -> Tensor:  # noqa: D102
        batch, seq, dim = x.shape
        qkv = self.qkv(x)  # [B, S, 3D]
        qkv = qkv.reshape(batch, seq, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # [3, B, H, S, Hd]
        query, key, value = qkv[0], qkv[1], qkv[2]

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (query @ key.transpose(0, 1, 3, 2)) * scale  # [B, H, S, S]
        if mask is not None:
            # mask: [B, S] -> [B, 1, 1, S]; invalid positions get a large negative bias.
            bias = (1.0 - mask.reshape(batch, 1, 1, seq)) * (-1e9)
            scores = scores + bias
        weights = scores.softmax(axis=-1)
        weights = self.dropout(weights)
        context = weights @ value  # [B, H, S, Hd]
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, dim)
        return self.out(context)

    def infer(self, x: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Autograd-free forward mirroring :meth:`forward` op for op."""
        batch, seq, dim = x.shape
        qkv = self.qkv.infer(x)
        qkv = qkv.reshape(batch, seq, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)
        query, key, value = qkv[0], qkv[1], qkv[2]

        # dtype.type keeps float32 inputs in single precision.
        scale = x.dtype.type(1.0 / np.sqrt(self.head_dim))
        scores = (query @ key.transpose(0, 1, 3, 2)) * scale
        if mask is not None:
            bias = (1.0 - mask.reshape(batch, 1, 1, seq)) * (-1e9)
            scores = scores + bias
        # Numerically stable softmax, same shift/exp/divide as Tensor.softmax.
        shifted = scores - scores.max(axis=-1, keepdims=True)
        weights = np.exp(shifted)
        weights /= weights.sum(axis=-1, keepdims=True)
        context = weights @ value
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, dim)
        return self.out.infer(context)
