"""Basic layers: Linear, LayerNorm, Dropout and activation modules."""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import special as _special

from repro.errors import ModelError
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


def _param_as(array: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """A parameter array in the inference dtype (no copy when it matches)."""
    return array if array.dtype == dtype else array.astype(dtype)


class Linear(Module):
    """Affine transformation ``y = x @ W + b`` over the trailing dimension."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ModelError("Linear feature sizes must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:  # noqa: D102
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def infer(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Autograd-free forward; ``out`` may stage the result in a pooled buffer."""
        result = np.matmul(x, _param_as(self.weight.data, x.dtype), out=out)
        if self.bias is not None:
            result += _param_as(self.bias.data, result.dtype)
        return result

    def __repr__(self) -> str:
        return f"Linear({self.in_features} -> {self.out_features})"


class LayerNorm(Module):
    """Layer normalization over the trailing dimension with affine parameters."""

    def __init__(self, features: int, eps: float = 1e-5):
        super().__init__()
        self.features = int(features)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(features), name="gamma")
        self.beta = Parameter(np.zeros(features), name="beta")

    def forward(self, x: Tensor) -> Tensor:  # noqa: D102
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / (variance + self.eps).sqrt()
        return normalised * self.gamma + self.beta

    def infer(self, x: np.ndarray) -> np.ndarray:  # noqa: D102
        # Tensor.mean is sum * (1/n), not np.mean (which divides); replicate
        # it so the float64 path stays bit-identical to the autograd forward.
        inv_count = 1.0 / float(x.shape[-1])
        mean = x.sum(axis=-1, keepdims=True) * inv_count
        centered = x - mean
        variance = (centered * centered).sum(axis=-1, keepdims=True) * inv_count
        normalised = centered / np.sqrt(variance + self.eps)
        return normalised * _param_as(self.gamma.data, x.dtype) + _param_as(
            self.beta.data, x.dtype
        )


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode or with rate 0."""

    def __init__(self, rate: float = 0.1, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ModelError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        # repro-lint: disable=rng-generator-alias -- layer API contract: the owning model hands each layer its dedicated stream; forking here would desync every seeded training run
        self._rng = rng or init.default_rng()

    def forward(self, x: Tensor) -> Tensor:  # noqa: D102
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)

    def infer(self, x: np.ndarray) -> np.ndarray:  # noqa: D102
        return x  # inference is eval-mode by definition: dropout is the identity


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:  # noqa: D102
        return x.relu()

    def infer(self, x: np.ndarray) -> np.ndarray:  # noqa: D102
        return x * (x > 0).astype(x.dtype)


class GELU(Module):
    """Gaussian error linear unit."""

    def forward(self, x: Tensor) -> Tensor:  # noqa: D102
        return x.gelu()

    def infer(self, x: np.ndarray) -> np.ndarray:  # noqa: D102
        # dtype.type keeps float32 inputs in single precision (a bare
        # np.sqrt(2.0) scalar would promote the whole expression to float64).
        cdf = 0.5 * (1.0 + _special.erf(x / x.dtype.type(np.sqrt(2.0))))
        return x * cdf


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:  # noqa: D102
        return x.tanh()

    def infer(self, x: np.ndarray) -> np.ndarray:  # noqa: D102
        return np.tanh(x)


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:  # noqa: D102
        return x.sigmoid()

    def infer(self, x: np.ndarray) -> np.ndarray:  # noqa: D102
        return 1.0 / (1.0 + np.exp(-x))


ACTIVATIONS = {
    "relu": ReLU,
    "gelu": GELU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
}


def make_activation(name: str) -> Module:
    """Instantiate an activation module by name."""
    try:
        return ACTIVATIONS[name]()
    except KeyError as exc:
        raise ModelError(
            f"unknown activation {name!r}; available: {', '.join(sorted(ACTIVATIONS))}"
        ) from exc
