"""Weight initialisation helpers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import new_rng

# A module-level generator gives deterministic initialisation per process as
# long as modules are constructed in a fixed order; callers that need full
# control pass their own generator to the layer constructors.
_DEFAULT_RNG = new_rng("nn-init")


def set_default_seed(seed: int | str | None) -> None:
    """Reset the default initialisation stream (used by tests and the auto-tuner)."""
    # repro-lint: disable=thread-global -- rebound only during single-threaded setup (tests/tuner), never while worker threads run
    global _DEFAULT_RNG
    _DEFAULT_RNG = new_rng(seed)


def default_rng() -> np.random.Generator:
    """The process-wide default initialisation generator."""
    return _DEFAULT_RNG


def xavier_uniform(shape: tuple, rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for dense weights."""
    rng = rng or _DEFAULT_RNG
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_normal(shape: tuple, rng: np.random.Generator | None = None) -> np.ndarray:
    """He/Kaiming normal initialisation for ReLU networks."""
    rng = rng or _DEFAULT_RNG
    fan_in = shape[0]
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def zeros(shape: tuple) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)
