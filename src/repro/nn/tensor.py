"""Reverse-mode automatic differentiation over NumPy arrays.

The :class:`Tensor` class records the operations applied to it and can
back-propagate gradients through the resulting computation graph.  The design
follows the classic define-by-run pattern: every operation returns a new
tensor holding a closure that knows how to push gradients to its inputs.
Broadcasting is handled by summing gradients over broadcast dimensions.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np
from scipy import special as _special

from repro.errors import ModelError

ArrayLike = Union[np.ndarray, float, int, Sequence[float]]

# Grad mode is *thread-local*: concurrent inference threads (the serving
# daemon's shard workers wrap predict in no_grad) must not toggle a process
# global, or their interleaved save/restore can leave gradients disabled
# for a training thread — a real bug this replaced.
_GRAD_STATE = threading.local()


def _grad_enabled() -> bool:
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (faster inference).

    Only affects the calling thread; other threads keep their own mode.
    """
    previous = _grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


# Scratch buffers for the inference fast path (``Module.infer``).  The pool
# is thread-local: concurrent serving threads each reuse their own arrays, so
# no lock is needed and a pooled buffer is never visible to another thread.
_SCRATCH_STATE = threading.local()


def scratch_buffer(tag: object, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
    """A pooled ndarray for inference intermediates, keyed by ``tag``.

    The same tag returns the same preallocated array while shape and dtype
    stay stable (the steady state of warm batched predict); a mismatch
    reallocates.  Callers must fully overwrite the buffer (its contents are
    whatever the previous use left behind) and must not hand it out as a
    result that outlives the next ``infer`` call with the same tag.
    """
    pool = getattr(_SCRATCH_STATE, "pool", None)
    if pool is None:
        pool = {}
        _SCRATCH_STATE.pool = pool
    dtype = np.dtype(dtype)
    shape = tuple(int(extent) for extent in shape)
    buffer = pool.get(tag)
    if buffer is None or buffer.shape != shape or buffer.dtype != dtype:
        buffer = np.empty(shape, dtype=dtype)
        pool[tag] = buffer
    return buffer


def clear_scratch_buffers() -> None:
    """Drop this thread's pooled inference buffers (frees their memory)."""
    _SCRATCH_STATE.pool = {}


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over the dimensions that were broadcast to reach ``grad.shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were 1 in the original shape.
    for axis, extent in enumerate(shape):
        if extent == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with an optional gradient and autodiff history."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")
    __array_priority__ = 100  # make numpy defer to Tensor in mixed expressions

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Tuple["Tensor", ...] = (),
        name: str = "",
    ):
        # An already-float64 ndarray is adopted as-is: ``np.asarray`` with an
        # explicit dtype copies even when the input already matches, which
        # taxed every op (``_coerce``/``_make`` both construct through here).
        if isinstance(data, np.ndarray) and data.dtype == np.float64:
            self.data = data
        else:
            self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._prev: Tuple[Tensor, ...] = _prev if self.requires_grad else ()
        self.name = name

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        """The scalar value of a 0-d / single-element tensor."""
        if self.data.size != 1:
            raise ModelError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut off from the autodiff graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else ())
        if requires:
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor (defaults to d(self)/d(self) = 1)."""
        if not self.requires_grad:
            raise ModelError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise ModelError("backward() without an explicit gradient needs a scalar output")
            grad = np.ones_like(self.data)

        # Topological order of the reachable graph.
        order: List[Tensor] = []
        visited: Set[int] = set()

        def visit(node: Tensor) -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._prev:
                visit(parent)
            order.append(node)

        visit(self)
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data**2))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if other.data.ndim >= 2:
                self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            else:  # other is a vector
                self._accumulate(np.outer(grad, other.data) if grad.ndim == 1 else
                                 np.expand_dims(grad, -1) * other.data)
            if self.data.ndim >= 2:
                other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)
            else:
                other._accumulate(np.outer(self.data, grad) if grad.ndim == 1 else
                                  np.expand_dims(self.data, -1) * grad)

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-12))

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(np.abs(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float64)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def gelu(self) -> "Tensor":
        """Exact GELU using the Gaussian CDF."""
        cdf = 0.5 * (1.0 + _special.erf(self.data / np.sqrt(2.0)))
        out_data = self.data * cdf
        pdf = np.exp(-0.5 * self.data**2) / np.sqrt(2.0 * np.pi)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (cdf + self.data * pdf))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = ((self.data >= low) & (self.data <= high)).astype(np.float64)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad_full = np.asarray(grad)
            if axis is not None and not keepdims:
                grad_full = np.expand_dims(grad_full, axis=axis)
            self._accumulate(np.broadcast_to(grad_full, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else np.prod(
            [self.data.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=True)
        mask = (self.data == out_data).astype(np.float64)
        mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
        result = out_data if keepdims else np.squeeze(out_data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            grad_full = np.asarray(grad)
            if not keepdims:
                grad_full = np.expand_dims(grad_full, axis=axis)
            self._accumulate(grad_full * mask)

        return Tensor._make(result, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax along ``axis``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad - dot))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes = axes or tuple(reversed(range(self.data.ndim)))
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = tuple(np.argsort(axes))
        out_data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [Tensor._coerce(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, end)
            tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = [Tensor._coerce(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        for index, tensor in enumerate(tensors):
            tensor._accumulate(np.take(grad, index, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)
