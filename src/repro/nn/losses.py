"""Loss functions used by the cost models and the ablation studies.

All losses take prediction and target tensors of matching shape and return a
scalar tensor.  The paper's ablation (Tables 4 and 5) compares MSE, MAPE,
MSPE and the hybrid MSE+MAPE objective; the hybrid itself lives in
:mod:`repro.core.losses` because it carries the CDMPP-specific λ coefficient.
"""

from __future__ import annotations

from repro.errors import TrainingError
from repro.nn.tensor import Tensor

_EPS = 1e-9


def _check(pred: Tensor, target: Tensor) -> None:
    if pred.shape != target.shape:
        raise TrainingError(f"loss shape mismatch: pred {pred.shape} vs target {target.shape}")


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    _check(pred, target)
    diff = pred - target
    return (diff * diff).mean()


def mae_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    _check(pred, target)
    return (pred - target).abs().mean()


def mape_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute percentage error: mean(|pred - target| / target)."""
    _check(pred, target)
    return ((pred - target).abs() / (target.abs() + _EPS)).mean()


def mspe_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared percentage error: mean(((pred - target) / target)^2)."""
    _check(pred, target)
    ratio = (pred - target) / (target.abs() + _EPS)
    return (ratio * ratio).mean()


def huber_loss(pred: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss (smooth L1): quadratic near zero, linear in the tails."""
    _check(pred, target)
    diff = (pred - target).abs()
    quadratic = diff.clip(0.0, delta)
    linear = diff - quadratic
    return (quadratic * quadratic * 0.5 + linear * delta).mean()
