"""Learning-rate schedulers (Step, Cyclic, Cosine).

The paper's auto-tuner selects CyclicLR for the final configuration
(Appendix B); StepLR and CosineLR are provided for the hyper-parameter
search space.
"""

from __future__ import annotations

import math

from repro.errors import TrainingError
from repro.nn.optim import Optimizer


class LRScheduler:
    """Base class: adjusts ``optimizer.lr`` every time :meth:`step` is called."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = float(optimizer.lr)
        self.step_count = 0

    def get_lr(self) -> float:
        """The learning rate for the current step count."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step and update the optimizer's learning rate."""
        self.step_count += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int = 30, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size <= 0:
            raise TrainingError("StepLR step_size must be positive")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self) -> float:  # noqa: D102
        return self.base_lr * (self.gamma ** (self.step_count // self.step_size))


class CyclicLR(LRScheduler):
    """Triangular cyclic learning rate between ``base_lr`` and ``max_lr``."""

    def __init__(self, optimizer: Optimizer, max_lr: float | None = None, cycle_steps: int = 100):
        super().__init__(optimizer)
        if cycle_steps <= 1:
            raise TrainingError("CyclicLR cycle_steps must be > 1")
        self.max_lr = float(max_lr) if max_lr is not None else self.base_lr * 5.0
        self.cycle_steps = int(cycle_steps)

    def get_lr(self) -> float:  # noqa: D102
        cycle_pos = self.step_count % self.cycle_steps
        half = self.cycle_steps / 2.0
        fraction = cycle_pos / half if cycle_pos <= half else (self.cycle_steps - cycle_pos) / half
        return self.base_lr + (self.max_lr - self.base_lr) * fraction


class CosineLR(LRScheduler):
    """Cosine annealing from the base learning rate to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_steps: int = 1000, min_lr: float = 1e-6):
        super().__init__(optimizer)
        if total_steps <= 0:
            raise TrainingError("CosineLR total_steps must be positive")
        self.total_steps = int(total_steps)
        self.min_lr = float(min_lr)

    def get_lr(self) -> float:  # noqa: D102
        progress = min(self.step_count / self.total_steps, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + math.cos(math.pi * progress))


def make_scheduler(name: str, optimizer: Optimizer, **kwargs) -> LRScheduler:
    """Build a scheduler by name, as the auto-tuner's search space does."""
    name = name.lower()
    if name == "step":
        return StepLR(optimizer, **kwargs)
    if name == "cyclic":
        return CyclicLR(optimizer, **kwargs)
    if name == "cosine":
        return CosineLR(optimizer, **kwargs)
    raise TrainingError(f"unknown scheduler {name!r} (expected step/cyclic/cosine)")
