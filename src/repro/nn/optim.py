"""Optimizers: SGD with momentum and Adam, both with weight decay."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import TrainingError
from repro.nn.module import Parameter


class Optimizer:
    """Base class holding the parameter list and the current learning rate."""

    def __init__(self, parameters: Sequence[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise TrainingError("optimizer received no parameters")
        if lr <= 0:
            raise TrainingError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update; subclasses must override."""
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip gradients to a maximum global L2 norm; returns the norm."""
        total = 0.0
        for param in self.parameters:
            if param.grad is not None:
                total += float(np.sum(param.grad**2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.parameters:
                if param.grad is not None:
                    param.grad = param.grad * scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and decoupled weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: List[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:  # noqa: D102
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            velocity *= self.momentum
            velocity += grad
            param.data = param.data - self.lr * velocity


class Adam(Optimizer):
    """Adam with bias correction and decoupled weight decay (AdamW style)."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: List[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]
        self._v: List[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]
        self._step_count = 0

    def step(self) -> None:  # noqa: D102
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data = param.data - self.lr * update


def make_optimizer(
    name: str,
    parameters: Sequence[Parameter],
    lr: float,
    weight_decay: float = 0.0,
) -> Optimizer:
    """Build an optimizer by name (``"adam"`` or ``"sgd"``), as the auto-tuner does."""
    name = name.lower()
    if name == "adam":
        return Adam(parameters, lr=lr, weight_decay=weight_decay)
    if name == "sgd":
        return SGD(parameters, lr=lr, weight_decay=weight_decay)
    raise TrainingError(f"unknown optimizer {name!r} (expected 'adam' or 'sgd')")
