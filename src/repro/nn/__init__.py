"""A small NumPy-based neural-network framework with reverse-mode autodiff.

This package stands in for PyTorch in the offline reproduction.  It provides
exactly what the CDMPP predictor and the learned baselines need:

* :class:`~repro.nn.tensor.Tensor` -- reverse-mode automatic differentiation
  over NumPy arrays (broadcasting-aware).
* Modules: ``Linear``, ``LayerNorm``, ``Dropout``, ``MLP``, ``MultiHeadSelfAttention``,
  ``TransformerEncoder``, ``LSTMCell``/``LSTM``.
* Losses, optimizers (SGD, Adam) and learning-rate schedulers (Step, Cyclic,
  Cosine).
"""

from repro.nn.tensor import (
    Tensor,
    clear_scratch_buffers,
    concatenate,
    no_grad,
    scratch_buffer,
    stack,
)
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import Dropout, GELU, LayerNorm, Linear, ReLU, Tanh
from repro.nn.mlp import MLP
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.transformer import TransformerEncoder, TransformerEncoderLayer
from repro.nn.lstm import LSTM, LSTMCell
from repro.nn.losses import huber_loss, mae_loss, mape_loss, mse_loss, mspe_loss
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.schedulers import CosineLR, CyclicLR, LRScheduler, StepLR

__all__ = [
    "Tensor",
    "no_grad",
    "concatenate",
    "stack",
    "scratch_buffer",
    "clear_scratch_buffers",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "GELU",
    "Tanh",
    "MLP",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
    "TransformerEncoder",
    "LSTMCell",
    "LSTM",
    "mse_loss",
    "mae_loss",
    "mape_loss",
    "mspe_loss",
    "huber_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "StepLR",
    "CyclicLR",
    "CosineLR",
]
