"""LSTM cell and multi-step LSTM (used by the Tiramisu baseline)."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.nn import init
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concatenate


class LSTMCell(Module):
    """A single LSTM cell step."""

    def __init__(self, input_size: int, hidden_size: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ModelError("LSTMCell sizes must be positive")
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)
        self.gates = Linear(input_size + hidden_size, 4 * hidden_size, rng=rng)

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        """Zero hidden and cell states."""
        zeros = np.zeros((batch, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:  # noqa: D102
        hidden, cell = state
        combined = concatenate([x, hidden], axis=-1)
        gates = self.gates(combined)
        h = self.hidden_size
        input_gate = gates[:, :h].sigmoid()
        forget_gate = gates[:, h : 2 * h].sigmoid()
        cell_candidate = gates[:, 2 * h : 3 * h].tanh()
        output_gate = gates[:, 3 * h :].sigmoid()
        new_cell = forget_gate * cell + input_gate * cell_candidate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, new_cell

    def infer(
        self, x: np.ndarray, state: Tuple[np.ndarray, np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Autograd-free cell step mirroring :meth:`forward` op for op."""
        hidden, cell = state
        combined = np.concatenate([x, hidden], axis=-1)
        gates = self.gates.infer(combined)
        h = self.hidden_size
        input_gate = 1.0 / (1.0 + np.exp(-gates[:, :h]))
        forget_gate = 1.0 / (1.0 + np.exp(-gates[:, h : 2 * h]))
        cell_candidate = np.tanh(gates[:, 2 * h : 3 * h])
        output_gate = 1.0 / (1.0 + np.exp(-gates[:, 3 * h :]))
        new_cell = forget_gate * cell + input_gate * cell_candidate
        new_hidden = output_gate * np.tanh(new_cell)
        return new_hidden, new_cell


class LSTM(Module):
    """A (single-layer) LSTM unrolled over a sequence of inputs.

    Accepts a list of per-step tensors rather than one packed array so the
    Tiramisu baseline can feed variable-length child sequences.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = int(hidden_size)

    def forward(
        self,
        inputs: Sequence[Tensor],
        state: Optional[Tuple[Tensor, Tensor]] = None,
    ) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        """Run the cell over ``inputs`` and return (last_hidden, (hidden, cell))."""
        if len(inputs) == 0:
            raise ModelError("LSTM.forward needs at least one input step")
        batch = inputs[0].shape[0]
        if state is None:
            state = self.cell.initial_state(batch)
        hidden, cell = state
        for step in inputs:
            hidden, cell = self.cell(step, (hidden, cell))
        return hidden, (hidden, cell)

    def infer(
        self,
        inputs: Sequence[np.ndarray],
        state: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
        """Autograd-free unroll mirroring :meth:`forward`."""
        if len(inputs) == 0:
            raise ModelError("LSTM.infer needs at least one input step")
        if state is None:
            zeros = np.zeros((inputs[0].shape[0], self.hidden_size), dtype=inputs[0].dtype)
            state = (zeros, zeros.copy())
        hidden, cell = state
        for step in inputs:
            hidden, cell = self.cell.infer(step, (hidden, cell))
        return hidden, (hidden, cell)
