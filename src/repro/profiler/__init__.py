"""Profiling substrate: measure tensor programs on (simulated) devices."""

from repro.profiler.records import MeasureRecord
from repro.profiler.profiler import Profiler

__all__ = ["MeasureRecord", "Profiler"]
