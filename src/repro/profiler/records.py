"""Measurement records: one (tensor program, device, latency) observation.

This is the unit the Tenset-like dataset is made of.  A record keeps a
reference to the lowered program so feature extraction can run lazily, plus
light-weight metadata used for grouping (task key, operator type, source DNN
model, device name).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import DatasetError
from repro.tir.program import TensorProgram


@dataclass
class MeasureRecord:
    """One profiled measurement of a tensor program on a device."""

    program: TensorProgram
    device: str
    latency_s: float
    schedule_index: int = 0

    def __post_init__(self) -> None:
        if self.latency_s <= 0:
            raise DatasetError(
                f"measurement of {self.task_key} on {self.device} has non-positive "
                f"latency {self.latency_s}"
            )

    @property
    def task_key(self) -> str:
        """Workload key of the underlying task."""
        return self.program.task.workload_key

    @property
    def op_type(self) -> str:
        """Operator family of the underlying task."""
        return self.program.task.op_type

    @property
    def model(self) -> Optional[str]:
        """Source DNN model of the task (domain label), if any."""
        return self.program.task.model

    @property
    def latency_ms(self) -> float:
        """Latency in milliseconds."""
        return self.latency_s * 1e3

    @property
    def latency_us(self) -> float:
        """Latency in microseconds."""
        return self.latency_s * 1e6

    def summary(self) -> Dict[str, object]:
        """Compact dict view used for serialization and debugging."""
        return {
            "task": self.task_key,
            "op_type": self.op_type,
            "model": self.model,
            "device": self.device,
            "latency_us": self.latency_us,
            "num_leaves": self.program.num_leaves,
            "flops": self.program.stats.total_flops,
        }

    def __repr__(self) -> str:
        return (
            f"MeasureRecord({self.op_type} on {self.device}: {self.latency_us:.2f} us, "
            f"model={self.model})"
        )
