"""The profiler: runs tensor programs on a simulated device.

On real hardware profiling a task means compiling and timing each candidate
schedule.  Here ``Profiler.measure`` queries the device simulator instead;
``Profiler.profile_task`` mirrors the Tenset collection loop (sample N random
schedules per task and measure each one).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.devices.simulator import DeviceSimulator
from repro.devices.spec import DeviceSpec, get_device
from repro.profiler.records import MeasureRecord
from repro.tir.lower import lower
from repro.tir.program import TensorProgram
from repro.tir.schedule import Schedule, random_schedule
from repro.tir.task import Task
from repro.utils.rng import new_rng, spawn_rng, stable_hash


class Profiler:
    """Measures tensor programs on one (simulated) device."""

    def __init__(
        self,
        device: Union[str, DeviceSpec],
        seed: int | str | None = 0,
        repeats: int = 1,
    ):
        self.device = get_device(device) if isinstance(device, str) else device
        self.repeats = max(int(repeats), 1)
        # A caller-supplied Generator must not become the profiler's own
        # stream (schedule sampling would silently advance the caller's RNG),
        # nor reach the simulator, which hashes repr(seed) — for a Generator
        # that embeds a memory address and would break determinism.  One
        # parent draw keys an independent child seed for both.
        if isinstance(seed, np.random.Generator):
            seed = stable_hash(int(seed.integers(0, 2**31 - 1)), "profiler", self.device.name)
        self._simulator = DeviceSimulator(self.device, seed=seed)
        self._rng = new_rng(seed)

    def measure(self, program: TensorProgram, schedule_index: int = 0) -> MeasureRecord:
        """Measure one program, averaging ``repeats`` simulated runs."""
        latencies = [self._simulator.measure(program) for _ in range(self.repeats)]
        return MeasureRecord(
            program=program,
            device=self.device.name,
            latency_s=float(np.mean(latencies)),
            schedule_index=schedule_index,
        )

    def measure_schedule(self, task: Task, schedule: Schedule, schedule_index: int = 0) -> MeasureRecord:
        """Lower ``task`` with ``schedule`` and measure the result."""
        return self.measure(lower(task, schedule), schedule_index=schedule_index)

    def profile_task(
        self,
        task: Task,
        num_schedules: int = 8,
        rng: Optional[np.random.Generator] = None,
    ) -> List[MeasureRecord]:
        """Sample ``num_schedules`` random schedules for ``task`` and measure each.

        This is the Tenset collection loop: the same task yields many records
        whose latencies differ only because of the schedule.
        """
        rng = rng if rng is not None else spawn_rng(self._rng, "profile", task.workload_key)
        records = []
        for index in range(num_schedules):
            schedule = random_schedule(task, rng, target_kind=self.device.taxonomy)
            records.append(self.measure_schedule(task, schedule, schedule_index=index))
        return records

    def profile_tasks(
        self,
        tasks: Sequence[Task],
        num_schedules: int = 8,
        rng: Optional[np.random.Generator] = None,
    ) -> List[MeasureRecord]:
        """Profile a collection of tasks."""
        rng = rng if rng is not None else self._rng
        records: List[MeasureRecord] = []
        for task in tasks:
            task_rng = spawn_rng(rng, "task", task.workload_key)
            records.extend(self.profile_task(task, num_schedules=num_schedules, rng=task_rng))
        return records
