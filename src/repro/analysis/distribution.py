"""Distribution statistics for Figs. 2 and 5 of the paper."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np
from scipy import stats as sstats

from repro.errors import ReproError
from repro.profiler.records import MeasureRecord
from repro.tir.ast import ast_summary
from repro.tir.program import TensorProgram


def ast_node_distribution(programs: Sequence[TensorProgram]) -> Dict[str, np.ndarray]:
    """Node-count and leaf-count distributions over a set of programs (Fig. 2)."""
    if not programs:
        raise ReproError("no programs given")
    nodes, leaves, depths = [], [], []
    for program in programs:
        summary = ast_summary(program)
        nodes.append(summary["num_nodes"])
        leaves.append(summary["num_leaves"])
        depths.append(summary["depth"])
    return {
        "num_nodes": np.asarray(nodes),
        "num_leaves": np.asarray(leaves),
        "depth": np.asarray(depths),
    }


def latency_distribution(records: Sequence[MeasureRecord]) -> np.ndarray:
    """Latency labels in seconds for a set of records (Fig. 5 input)."""
    if not records:
        raise ReproError("no records given")
    return np.asarray([record.latency_s for record in records])


def skewness(values: np.ndarray) -> float:
    """Sample skewness (large positive values = long right tail)."""
    return float(sstats.skew(np.asarray(values, dtype=np.float64)))


def normality_score(values: np.ndarray) -> float:
    """How close a distribution is to Gaussian, in [0, 1] (1 = very normal).

    Uses the absolute skewness and excess kurtosis: the score decays as
    either grows.  This is the quantity the Fig. 5 benchmark compares across
    normalization methods (Box-Cox should score highest).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size < 8:
        raise ReproError("need at least 8 samples for a normality score")
    skew = abs(float(sstats.skew(values)))
    kurt = abs(float(sstats.kurtosis(values)))
    return float(1.0 / (1.0 + skew + 0.25 * kurt))


def histogram(values: np.ndarray, bins: int = 30) -> Dict[str, List[float]]:
    """A plain histogram (counts + bin edges) used by the example scripts."""
    counts, edges = np.histogram(np.asarray(values, dtype=np.float64), bins=bins)
    return {"counts": counts.tolist(), "edges": edges.tolist()}
