"""AST-based static-analysis engine for the repro codebase.

The repo has been bitten repeatedly by the same bug classes: shared mutable
default configs, thread-global state races, Generator-seed aliasing, and
in-place mutation of shared checkpoints.  This module provides the *engine*
for a small codebase-aware checker; the concrete rules live in
:mod:`repro.analysis.rules`.

Design
------
* A :class:`Rule` inspects one parsed file (``check_file``) and/or the whole
  project (``check_project``) and yields :class:`Finding` objects.
* Source comments carry the annotation vocabulary:

  - ``# guarded-by: _lock``   — the attribute assigned on this line may only
    be touched while ``self._lock`` is held.
  - ``# requires-lock: _lock`` — the method defined on (or directly below)
    this line is only ever called with ``self._lock`` held.
  - ``# repro-lint: disable=<rule>[,<rule>...] -- <justification>`` — suppress
    findings on this line.
  - ``# repro-lint: disable-file=<rule> -- <justification>`` — suppress a rule
    for the whole file.

* ``--strict`` additionally fails on warnings and on suppressions that carry
  no justification text, so CI can assert "zero undocumented findings".

Exit codes follow ``tools/check_docs.py``: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "Suppression",
    "FileContext",
    "Project",
    "Rule",
    "RULE_REGISTRY",
    "register_rule",
    "iter_python_files",
    "run_lint",
    "LintReport",
    "main",
]

SEVERITIES = ("warning", "error")

_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*"
    r"([A-Za-z0-9_,\- ]+?)\s*(?:--\s*(.*\S))?\s*$"
)
_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_REQUIRES_LOCK_RE = re.compile(r"#\s*requires-lock:\s*([A-Za-z_][A-Za-z0-9_]*)")


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule."""

    rule: str
    message: str
    path: str
    line: int
    severity: str = "error"
    column: int = 0

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"[{self.severity}] {self.rule}: {self.message}"
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }


@dataclass
class Suppression:
    """A ``# repro-lint: disable=...`` directive found in a file."""

    line: int
    rules: Tuple[str, ...]
    justification: str
    file_level: bool = False
    used: bool = False

    def matches(self, finding: Finding) -> bool:
        if "all" in self.rules or finding.rule in self.rules:
            return self.file_level or self.line == finding.line
        return False


class FileContext:
    """A parsed source file plus its comment-borne annotations."""

    def __init__(self, path: Path, source: str, display: Optional[str] = None):
        self.path = path
        self.source = source
        self.display = display or _display_path(path)
        self.tree = ast.parse(source, filename=self.display)
        self.comments: Dict[int, str] = {}
        self.suppressions: List[Suppression] = []
        self.guarded_by: Dict[int, str] = {}
        self.requires_lock: Dict[int, str] = {}
        # Lines whose guarded-by comment was claimed by a lock-rule target;
        # unclaimed annotations are reported as dangling (see rules.py).
        self.claimed_guard_lines: set = set()
        self._scan_comments()

    # -- comment parsing -------------------------------------------------

    def _scan_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                line = tok.start[0]
                text = tok.string
                self.comments[line] = text
                match = _DIRECTIVE_RE.search(text)
                if match:
                    kind, raw_rules, justification = match.groups()
                    rules = tuple(
                        part.strip() for part in raw_rules.split(",") if part.strip()
                    )
                    # A directive on its own line governs the line below it;
                    # a trailing directive governs its own line.
                    standalone = tok.line.strip().startswith("#")
                    self.suppressions.append(
                        Suppression(
                            line=line + 1 if standalone else line,
                            rules=rules,
                            justification=(justification or "").strip(),
                            file_level=(kind == "disable-file"),
                        )
                    )
                guard = _GUARDED_BY_RE.search(text)
                if guard:
                    self.guarded_by[line] = guard.group(1)
                requires = _REQUIRES_LOCK_RE.search(text)
                if requires:
                    self.requires_lock[line] = requires.group(1)
        except tokenize.TokenError:
            # A file that tokenizes badly still parsed via ast; treat it as
            # having no comments rather than crashing the whole run.
            pass

    # -- helpers ---------------------------------------------------------

    def in_package(self, *parts: str) -> bool:
        """True when the file lives under ``parts`` (posix path fragment)."""
        fragment = "/".join(parts).strip("/") + "/"
        return fragment in self.display.replace("\\", "/")

    def suppression_for(self, finding: Finding) -> Optional[Suppression]:
        for suppression in self.suppressions:
            if suppression.matches(finding):
                return suppression
        return None


class Project:
    """All files in one lint run, for cross-file rules."""

    def __init__(self, files: Sequence[FileContext]):
        self.files = list(files)

    def find(self, suffix: str) -> List[FileContext]:
        suffix = suffix.replace("\\", "/")
        return [
            ctx for ctx in self.files if ctx.display.replace("\\", "/").endswith(suffix)
        ]


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``/``severity``/``description`` and implement
    ``check_file`` (per-file) and/or ``check_project`` (cross-file).
    """

    id: str = ""
    severity: str = "error"
    description: str = ""

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())

    # Convenience for subclasses.
    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule=self.id,
            message=message,
            path=ctx.display,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            severity=severity or self.severity,
        )


RULE_REGISTRY: Dict[str, Rule] = {}


def register_rule(rule_cls):
    """Class decorator adding a rule instance to the global registry."""
    instance = rule_cls()
    if not instance.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if instance.severity not in SEVERITIES:
        raise ValueError(f"rule {instance.id} has invalid severity")
    if instance.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id!r}")
    RULE_REGISTRY[instance.id] = instance
    return rule_cls


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            if any(part.startswith(".") for part in candidate.parts[1:]):
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Tuple[Finding, Suppression]] = field(default_factory=list)
    undocumented: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    def active_findings(self, strict: bool = False) -> List[Finding]:
        active = list(self.findings)
        if strict:
            active.extend(self.undocumented)
        return sorted(active, key=lambda f: (f.path, f.line, f.rule))

    def failed(self, strict: bool = False) -> bool:
        for finding in self.active_findings(strict):
            if strict or finding.severity == "error":
                return True
        return False

    def to_json(self, strict: bool = False) -> Dict[str, object]:
        active = self.active_findings(strict)
        return {
            "version": 1,
            "strict": strict,
            "files_checked": self.files_checked,
            "counts": {
                "error": sum(1 for f in active if f.severity == "error"),
                "warning": sum(1 for f in active if f.severity == "warning"),
                "suppressed": len(self.suppressed),
            },
            "findings": [f.to_json() for f in active],
            "suppressed": [
                {**f.to_json(), "justification": s.justification}
                for f, s in self.suppressed
            ],
        }

    def render(self, strict: bool = False) -> str:
        lines = [f.render() for f in self.active_findings(strict)]
        active = self.active_findings(strict)
        summary = (
            f"checked {self.files_checked} file(s): "
            f"{len(active)} finding(s), {len(self.suppressed)} suppressed"
        )
        lines.append(summary)
        return "\n".join(lines)


def run_lint(
    paths: Sequence[Path],
    rule_ids: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run the registered rules over ``paths`` and return a report."""
    # Importing rules here avoids a circular import at module load time and
    # guarantees the built-in rules are registered before any run.
    from repro.analysis import rules as _rules  # noqa: F401

    if rule_ids is None:
        rules = list(RULE_REGISTRY.values())
    else:
        unknown = sorted(set(rule_ids) - set(RULE_REGISTRY))
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
        rules = [RULE_REGISTRY[rule_id] for rule_id in rule_ids]

    report = LintReport()
    contexts: List[FileContext] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            report.findings.append(
                Finding(
                    rule="parse-error",
                    message=f"could not read file: {error}",
                    path=_display_path(path),
                    line=1,
                )
            )
            continue
        try:
            contexts.append(FileContext(path, source))
        except SyntaxError as error:
            report.findings.append(
                Finding(
                    rule="parse-error",
                    message=f"syntax error: {error.msg}",
                    path=_display_path(path),
                    line=error.lineno or 1,
                )
            )
    report.files_checked = len(contexts)

    project = Project(contexts)
    raw: List[Tuple[Finding, FileContext]] = []
    context_by_display = {ctx.display: ctx for ctx in contexts}
    for rule in rules:
        for ctx in contexts:
            for finding in rule.check_file(ctx):
                raw.append((finding, ctx))
        for finding in rule.check_project(project):
            raw.append((finding, context_by_display.get(finding.path)))

    for finding, ctx in raw:
        suppression = ctx.suppression_for(finding) if ctx is not None else None
        if suppression is None:
            report.findings.append(finding)
            continue
        suppression.used = True
        report.suppressed.append((finding, suppression))
        if not suppression.justification:
            report.undocumented.append(
                Finding(
                    rule="undocumented-suppression",
                    message=(
                        f"suppression of {finding.rule!r} has no justification "
                        "(append ` -- <reason>` to the directive)"
                    ),
                    path=finding.path,
                    line=suppression.line if not suppression.file_level else 1,
                    severity="error",
                )
            )

    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Codebase-aware static checker for the repro project.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to check")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings and on suppressions without a justification",
    )
    parser.add_argument("--json", action="store_true", help="emit a JSON report")
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    args = parser.parse_args(argv)

    from repro.analysis import rules as _rules  # noqa: F401

    if args.list_rules:
        width = max((len(rule_id) for rule_id in RULE_REGISTRY), default=0)
        for rule_id in sorted(RULE_REGISTRY):
            rule = RULE_REGISTRY[rule_id]
            print(f"{rule_id.ljust(width)}  [{rule.severity}] {rule.description}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2

    rule_ids = None
    if args.rules:
        rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]
    try:
        report = run_lint([Path(p) for p in args.paths], rule_ids=rule_ids)
    except KeyError as error:
        print(f"repro-lint: error: {error.args[0]}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(report.to_json(strict=args.strict), indent=2))
    else:
        print(report.render(strict=args.strict))
    return 1 if report.failed(strict=args.strict) else 0


if __name__ == "__main__":
    raise SystemExit(main())
