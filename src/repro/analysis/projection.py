"""Low-dimensional projections of latent representations (Figs. 8, 11, 16).

The paper uses t-SNE to visualise how CMD regularisation pulls the latent
representations of different domains together.  A small exact t-SNE (O(N^2),
fine for a few thousand points) and PCA are implemented here; the benchmarks
quantify the "figures" via CMD distances and cluster overlap rather than by
eye-balling scatter plots.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.utils.rng import new_rng


def pca_project(x: np.ndarray, dim: int = 2) -> np.ndarray:
    """Project rows of ``x`` onto their top ``dim`` principal components."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2 or x.shape[0] < 2:
        raise ReproError(f"PCA expects a [N>=2, D] matrix, got shape {x.shape}")
    centered = x - x.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:dim].T


def _pairwise_sq_dists(x: np.ndarray) -> np.ndarray:
    sq = np.sum(x**2, axis=1)
    return np.maximum(sq[:, None] + sq[None, :] - 2.0 * (x @ x.T), 0.0)


def _joint_probabilities(distances: np.ndarray, perplexity: float) -> np.ndarray:
    n = distances.shape[0]
    probabilities = np.zeros((n, n))
    target_entropy = np.log(perplexity)
    for i in range(n):
        beta_low, beta_high, beta = 1e-20, 1e20, 1.0
        row = np.delete(distances[i], i)
        for _ in range(50):
            exp_row = np.exp(-row * beta)
            total = exp_row.sum()
            if total <= 0:
                beta /= 2
                continue
            p = exp_row / total
            entropy = -np.sum(p * np.log(np.maximum(p, 1e-12)))
            if abs(entropy - target_entropy) < 1e-4:
                break
            if entropy > target_entropy:
                beta_low = beta
                beta = beta * 2 if beta_high >= 1e19 else (beta + beta_high) / 2
            else:
                beta_high = beta
                beta = beta / 2 if beta_low <= 1e-19 else (beta + beta_low) / 2
        exp_row = np.exp(-row * beta)
        p = exp_row / max(exp_row.sum(), 1e-12)
        probabilities[i, np.arange(n) != i] = p
    joint = (probabilities + probabilities.T) / (2.0 * n)
    return np.maximum(joint, 1e-12)


def tsne_project(
    x: np.ndarray,
    dim: int = 2,
    perplexity: float = 20.0,
    iterations: int = 250,
    learning_rate: float = 100.0,
    seed: int | str | None = 0,
) -> np.ndarray:
    """Exact t-SNE projection of ``x`` to ``dim`` dimensions."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2 or x.shape[0] < 5:
        raise ReproError(f"t-SNE expects a [N>=5, D] matrix, got shape {x.shape}")
    n = x.shape[0]
    perplexity = min(perplexity, (n - 1) / 3.0)
    rng = new_rng(seed)

    p = _joint_probabilities(_pairwise_sq_dists(x), perplexity)
    p_early = p * 4.0  # early exaggeration
    y = rng.normal(scale=1e-2, size=(n, dim))
    velocity = np.zeros_like(y)

    for iteration in range(iterations):
        current_p = p_early if iteration < 50 else p
        dist = _pairwise_sq_dists(y)
        q_numerator = 1.0 / (1.0 + dist)
        np.fill_diagonal(q_numerator, 0.0)
        q = np.maximum(q_numerator / q_numerator.sum(), 1e-12)

        pq = (current_p - q) * q_numerator
        grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)
        momentum = 0.5 if iteration < 100 else 0.8
        velocity = momentum * velocity - learning_rate * grad
        y = y + velocity
        y = y - y.mean(axis=0)
    return y


def domain_overlap(
    projection: np.ndarray, labels: np.ndarray, k: int = 5
) -> float:
    """Fraction of k-nearest neighbours belonging to a *different* domain.

    Higher overlap means the domains are better mixed in the latent space --
    the quantitative proxy for "the clusters merge after CMD regularisation"
    in Figs. 8/11/16.
    """
    projection = np.asarray(projection, dtype=np.float64)
    labels = np.asarray(labels)
    if projection.shape[0] != labels.shape[0]:
        raise ReproError("projection and labels must have the same length")
    n = projection.shape[0]
    if n <= k:
        raise ReproError("need more points than neighbours")
    distances = _pairwise_sq_dists(projection)
    np.fill_diagonal(distances, np.inf)
    neighbour_idx = np.argsort(distances, axis=1)[:, :k]
    different = labels[neighbour_idx] != labels[:, None]
    return float(different.mean())
