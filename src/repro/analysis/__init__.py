"""Analysis helpers: distribution statistics and latent-space projections."""

from repro.analysis.distribution import (
    ast_node_distribution,
    latency_distribution,
    normality_score,
    skewness,
)
from repro.analysis.projection import pca_project, tsne_project

__all__ = [
    "ast_node_distribution",
    "latency_distribution",
    "skewness",
    "normality_score",
    "pca_project",
    "tsne_project",
]
