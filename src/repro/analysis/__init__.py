"""Analysis helpers: distribution statistics, latent-space projections, and
the codebase-aware static checker (``python -m repro.analysis``)."""

from repro.analysis.distribution import (
    ast_node_distribution,
    latency_distribution,
    normality_score,
    skewness,
)
from repro.analysis.lint import (
    Finding,
    LintReport,
    Rule,
    RULE_REGISTRY,
    register_rule,
    run_lint,
)
from repro.analysis.projection import pca_project, tsne_project

__all__ = [
    "ast_node_distribution",
    "latency_distribution",
    "skewness",
    "normality_score",
    "pca_project",
    "tsne_project",
    "Finding",
    "LintReport",
    "Rule",
    "RULE_REGISTRY",
    "register_rule",
    "run_lint",
]
