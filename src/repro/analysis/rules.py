"""Built-in lint rules.

Each rule encodes an invariant this codebase has already been bitten by:

=====================  ========================================================
rule id                historical bug class
=====================  ========================================================
lock-guard             stats counters read/written without the cache/service
                       lock (serving tier)
rng-global-state       ``np.random.*`` module-level state leaking between
                       components
rng-generator-alias    storing a caller's ``Generator`` (or passing a
                       Generator-capable seed straight to ``new_rng``) so two
                       components share one stream — the PR 4/PR 7 aliasing bug
mutable-default        shared mutable default config objects — the PR 3 bug
clone-discipline       assigning into another model's ``state_dict`` outside
                       ``clone()``/``FineTuner`` — the PR 4 shared-checkpoint
                       corruption
thread-global          module-level mutable globals in ``nn/`` — the PR 5
                       ``_GRAD_ENABLED`` grad-mode race
protocol-conformance   a backend registered without the full ``CostModel``
                       surface, failing only at call time
broad-except           ``except Exception``/bare ``except`` silently swallowing
                       serving-tier errors
inference-autograd     serving hot paths building autograd graphs — the tiered
                       inference refactor moved serving onto the graph-free
                       ``Module.infer`` path; a stray ``Tensor(...)`` or
                       ``.forward(...)`` silently reintroduces tape overhead
=====================  ========================================================

See ``docs/analysis.md`` for the full catalogue and the annotation syntax.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint import (
    FileContext,
    Finding,
    Project,
    Rule,
    register_rule,
)

__all__ = [
    "LockGuardRule",
    "RngGlobalStateRule",
    "RngGeneratorAliasRule",
    "MutableDefaultRule",
    "CloneDisciplineRule",
    "ThreadGlobalRule",
    "ProtocolConformanceRule",
    "BroadExceptRule",
    "InferenceAutogradRule",
]


def _terminal_name(node: ast.AST) -> Optional[str]:
    """Rightmost identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _root_self_attr(node: ast.AST) -> Optional[str]:
    """If ``node`` is a ``self.<attr>`` (possibly followed by more attribute /
    subscript steps when walking down from an outer node), return ``attr``."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        if (
            isinstance(current, ast.Attribute)
            and isinstance(current.value, ast.Name)
            and current.value.id == "self"
        ):
            return current.attr
        current = current.value
    return None


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


# ---------------------------------------------------------------------------
# lock-guard
# ---------------------------------------------------------------------------

_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

# Method calls that mutate common containers; used to demand a ``guarded-by``
# annotation for attributes mutated under a lock.  ``set``/``clear`` are
# deliberately absent (``threading.Event`` uses them for thread-safe flags).
_MUTATOR_NAMES = {
    "add",
    "append",
    "appendleft",
    "extend",
    "insert",
    "discard",
    "remove",
    "pop",
    "popitem",
    "popleft",
    "setdefault",
    "update",
    "move_to_end",
}

_INIT_METHODS = {"__init__", "__post_init__", "__del__"}


@register_rule
class LockGuardRule(Rule):
    """Lock-guard discipline, in the spirit of Clang's thread-safety analysis.

    * ``self.attr = ...  # guarded-by: _lock`` declares that ``attr`` may only
      be touched inside ``with self._lock:`` (``__init__`` is exempt).
    * ``# requires-lock: _lock`` on (or directly above) a ``def`` line declares
      a helper that is only ever called with the lock already held.
    * The reverse check: an attribute *mutated* under ``with self.<lock>:`` in
      a non-init method must carry a ``guarded-by`` annotation — so deleting an
      annotation fails the lint run rather than silently dropping coverage.
    """

    id = "lock-guard"
    severity = "error"
    description = (
        "guarded-by annotated attributes only touched with the lock held; "
        "lock-mutated attributes must be annotated"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)
        # Any guarded-by comment that no assignment claimed is a dangling
        # annotation (typo'd target, or the assignment was deleted).
        for line in sorted(ctx.guarded_by):
            if line not in ctx.claimed_guard_lines:
                yield Finding(
                    rule=self.id,
                    message=(
                        "dangling '# guarded-by' annotation: no 'self.<attr> = ...' "
                        "assignment on this line"
                    ),
                    path=ctx.display,
                    line=line,
                    severity=self.severity,
                )

    # -- per-class analysis ----------------------------------------------

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        locks = self._collect_locks(cls)
        guarded = self._collect_guarded(ctx, cls)

        for attr, (lock, line) in guarded.items():
            if lock not in locks:
                yield Finding(
                    rule=self.id,
                    message=(
                        f"attribute {attr!r} is guarded-by {lock!r}, but "
                        f"{cls.name} defines no 'self.{lock} = threading.*' lock"
                    ),
                    path=ctx.display,
                    line=line,
                    severity=self.severity,
                )

        guard_map = {attr: lock for attr, (lock, _) in guarded.items()}
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in _INIT_METHODS:
                continue
            held: Set[str] = set()
            required = ctx.requires_lock.get(stmt.lineno) or ctx.requires_lock.get(
                stmt.lineno - 1
            )
            if required is not None:
                if required not in locks:
                    yield Finding(
                        rule=self.id,
                        message=(
                            f"'# requires-lock: {required}' on {cls.name}.{stmt.name} "
                            f"names no lock attribute of {cls.name}"
                        ),
                        path=ctx.display,
                        line=stmt.lineno,
                        severity=self.severity,
                    )
                else:
                    held.add(required)
            for child in stmt.body:
                yield from self._walk(
                    ctx, cls, stmt, child, frozenset(held), locks, guard_map
                )

    def _collect_locks(self, cls: ast.ClassDef) -> Set[str]:
        locks: Set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in _LOCK_FACTORIES
                and isinstance(value.func.value, ast.Name)
                and value.func.value.id == "threading"
            ):
                continue
            for target in node.targets:
                if _is_self_attr(target):
                    locks.add(target.attr)
        return locks

    def _collect_guarded(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Dict[str, Tuple[str, int]]:
        guarded: Dict[str, Tuple[str, int]] = {}
        for node in ast.walk(cls):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            else:
                continue
            lock = ctx.guarded_by.get(node.lineno)
            if lock is None:
                continue
            for target in targets:
                if _is_self_attr(target):
                    guarded[target.attr] = (lock, node.lineno)
                    ctx.claimed_guard_lines.add(node.lineno)
        return guarded

    def _locks_acquired(self, item: ast.withitem, locks: Set[str]) -> Optional[str]:
        expr = item.context_expr
        if _is_self_attr(expr) and expr.attr in locks:
            return expr.attr
        return None

    def _walk(
        self,
        ctx: FileContext,
        cls: ast.ClassDef,
        method: ast.AST,
        node: ast.AST,
        held: frozenset,
        locks: Set[str],
        guarded: Dict[str, str],
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set()
            for item in node.items:
                lock = self._locks_acquired(item, locks)
                if lock is not None:
                    acquired.add(lock)
                else:
                    yield from self._walk(
                        ctx, cls, method, item.context_expr, held, locks, guarded
                    )
                if item.optional_vars is not None:
                    yield from self._walk(
                        ctx, cls, method, item.optional_vars, held, locks, guarded
                    )
            inner = frozenset(held | acquired)
            for child in node.body:
                yield from self._walk(ctx, cls, method, child, inner, locks, guarded)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested function or lambda runs later: the lexically enclosing
            # lock is NOT held at execution time.
            body = node.body if isinstance(node.body, list) else [node.body]
            for child in body:
                yield from self._walk(
                    ctx, cls, method, child, frozenset(), locks, guarded
                )
            return

        yield from self._check_access(ctx, cls, method, node, held, locks, guarded)
        for child in ast.iter_child_nodes(node):
            yield from self._walk(ctx, cls, method, child, held, locks, guarded)

    def _check_access(
        self,
        ctx: FileContext,
        cls: ast.ClassDef,
        method: ast.AST,
        node: ast.AST,
        held: frozenset,
        locks: Set[str],
        guarded: Dict[str, str],
    ) -> Iterator[Finding]:
        method_name = getattr(method, "name", "<module>")
        # (a) annotated attribute touched without its lock.
        if _is_self_attr(node) and node.attr in guarded:
            lock = guarded[node.attr]
            if lock not in held:
                yield Finding(
                    rule=self.id,
                    message=(
                        f"'self.{node.attr}' is guarded-by {lock!r} but is accessed "
                        f"in {cls.name}.{method_name} without 'with self.{lock}:' "
                        f"(annotate the method '# requires-lock: {lock}' if the "
                        "caller holds it)"
                    ),
                    path=ctx.display,
                    line=node.lineno,
                    severity=self.severity,
                )
        # (b) attribute mutated under a held lock must be annotated.
        if not held:
            return
        mutated = self._mutated_attr(node)
        if (
            mutated is not None
            and mutated not in guarded
            and mutated not in locks
        ):
            lock = sorted(held)[0]
            yield Finding(
                rule=self.id,
                message=(
                    f"'self.{mutated}' is mutated while holding 'self.{lock}' in "
                    f"{cls.name}.{method_name} but has no '# guarded-by: {lock}' "
                    "annotation on its assignment in __init__"
                ),
                path=ctx.display,
                line=node.lineno,
                severity=self.severity,
            )

    def _mutated_attr(self, node: ast.AST) -> Optional[str]:
        # Direct / chained / subscripted stores rooted at self.<attr>.
        if isinstance(node, (ast.Attribute, ast.Subscript)) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            return _root_self_attr(node)
        # Mutator method calls: self.<attr>....append(...), .pop(...), ...
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_NAMES
        ):
            return _root_self_attr(node.func.value)
        return None


# ---------------------------------------------------------------------------
# rng-global-state
# ---------------------------------------------------------------------------

_NP_RANDOM_ALLOWED = {
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "default_rng",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "RandomState",  # instance-based; legacy but not shared global state
}


@register_rule
class RngGlobalStateRule(Rule):
    """No ``np.random.*`` module-level state (``np.random.seed`` & friends)."""

    id = "rng-global-state"
    severity = "error"
    description = "no numpy global RNG state; use new_rng/spawn_rng/derive_rng"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in {"np", "numpy"}
                and node.attr not in _NP_RANDOM_ALLOWED
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"'np.random.{node.attr}' touches numpy's global RNG state; "
                    "construct a Generator via repro.utils.rng instead",
                )


# ---------------------------------------------------------------------------
# rng-generator-alias
# ---------------------------------------------------------------------------

_SEED_PARAM_NAMES = {"seed", "rng", "generator"}
_GENERATOR_PARAM_NAMES = {"rng", "generator"}
_RNG_CONSTRUCTORS = {"new_rng", "default_rng"}
_RNG_DERIVERS = {"spawn_rng", "derive_rng"}


def _annotation_text(annotation: Optional[ast.expr]) -> str:
    if annotation is None:
        return ""
    try:
        return ast.unparse(annotation)
    except Exception:  # pragma: no cover - defensive
        return ""


@register_rule
class RngGeneratorAliasRule(Rule):
    """No storing a caller's Generator (or a Generator-capable seed routed
    through ``new_rng``, which returns Generators unchanged) on ``self`` —
    derive an independent stream with ``spawn_rng``/``derive_rng`` instead."""

    id = "rng-generator-alias"
    severity = "error"
    description = (
        "stored RNGs must be derived via spawn_rng/derive_rng, not aliased "
        "from a caller's Generator"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _param_kinds(self, func: ast.AST) -> Tuple[Set[str], Set[str]]:
        generator_params: Set[str] = set()
        seedlike_params: Set[str] = set()
        args = func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            text = _annotation_text(arg.annotation)
            if "Generator" in text:
                generator_params.add(arg.arg)
                seedlike_params.add(arg.arg)
            elif "Seedable" in text:
                seedlike_params.add(arg.arg)
            elif not text:
                if arg.arg in _GENERATOR_PARAM_NAMES:
                    generator_params.add(arg.arg)
                if arg.arg in _SEED_PARAM_NAMES:
                    seedlike_params.add(arg.arg)
        return generator_params, seedlike_params

    def _check_function(self, ctx: FileContext, func: ast.AST) -> Iterator[Finding]:
        generator_params, seedlike_params = self._param_kinds(func)
        if not seedlike_params:
            return
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if not any(isinstance(t, ast.Attribute) for t in targets):
                continue
            message = self._classify(value, generator_params, seedlike_params)
            if message is not None:
                yield self.finding(ctx, node, message)

    def _classify(
        self,
        value: ast.expr,
        generator_params: Set[str],
        seedlike_params: Set[str],
    ) -> Optional[str]:
        def is_gen_param(expr: ast.expr) -> bool:
            return isinstance(expr, ast.Name) and expr.id in generator_params

        if is_gen_param(value):
            return (
                f"stores the caller's Generator {value.id!r} directly; two owners "
                "would share one stream (the PR 4/PR 7 aliasing bug) — use "
                "spawn_rng/derive_rng to fork an independent stream"
            )
        if isinstance(value, ast.BoolOp) and any(is_gen_param(v) for v in value.values):
            name = next(v.id for v in value.values if is_gen_param(v))
            return (
                f"may store the caller's Generator {name!r} (via 'or' fallback); "
                "use spawn_rng/derive_rng to fork an independent stream"
            )
        if isinstance(value, ast.IfExp) and (
            is_gen_param(value.body) or is_gen_param(value.orelse)
        ):
            branch = value.body if is_gen_param(value.body) else value.orelse
            return (
                f"may store the caller's Generator {branch.id!r} (conditional "
                "alias); use spawn_rng/derive_rng to fork an independent stream"
            )
        if isinstance(value, ast.Call):
            name = _terminal_name(value.func)
            if name in _RNG_CONSTRUCTORS:
                for arg in value.args:
                    if isinstance(arg, ast.Name) and arg.id in seedlike_params:
                        return (
                            f"'{name}({arg.id})' returns the caller's Generator "
                            f"unchanged when {arg.id!r} is one; use "
                            "derive_rng(seed, <label>) to fork an independent "
                            "stream"
                        )
        return None


# ---------------------------------------------------------------------------
# mutable-default
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "deque",
    "defaultdict",
    "OrderedDict",
    "Counter",
}


@register_rule
class MutableDefaultRule(Rule):
    """No mutable default arguments (the PR 3 shared-config bug)."""

    id = "mutable-default"
    severity = "error"
    description = "no mutable default arguments (lists, dicts, sets, ...)"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            name = getattr(node, "name", "<lambda>")
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if default is None:
                    continue
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in {name!r} is shared across "
                        "calls (the PR 3 shared-config bug); default to None and "
                        "construct inside the body",
                    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return _terminal_name(node.func) in _MUTABLE_CALLS
        return False


# ---------------------------------------------------------------------------
# clone-discipline
# ---------------------------------------------------------------------------

_CLONE_ALLOWED_PREFIXES = ("load", "_load", "restore", "_restore")
_CLONE_ALLOWED_CLASSES = {"FineTuner"}


@register_rule
class CloneDisciplineRule(Rule):
    """No method outside ``clone()``/loaders/``FineTuner`` writes into another
    model's ``state_dict`` (the PR 4 shared-checkpoint corruption)."""

    id = "clone-discipline"
    severity = "error"
    description = (
        "state_dict writes only in clone()/load*/restore* methods or FineTuner"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._visit(ctx, ctx.tree, None, None)

    def _visit(
        self,
        ctx: FileContext,
        node: ast.AST,
        cls: Optional[str],
        func: Optional[str],
    ) -> Iterator[Finding]:
        if isinstance(node, ast.ClassDef):
            cls = node.name
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func = node.name
        yield from self._check_node(ctx, node, cls, func)
        for child in ast.iter_child_nodes(node):
            yield from self._visit(ctx, child, cls, func)

    def _allowed(self, cls: Optional[str], func: Optional[str]) -> bool:
        if cls in _CLONE_ALLOWED_CLASSES:
            return True
        if func is None:
            return False
        return func == "clone" or func.startswith(_CLONE_ALLOWED_PREFIXES)

    def _check_node(
        self,
        ctx: FileContext,
        node: ast.AST,
        cls: Optional[str],
        func: Optional[str],
    ) -> Iterator[Finding]:
        # other.load_state_dict(...) outside an allowed context.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "load_state_dict"
        ):
            receiver = node.func.value
            self_rooted = isinstance(receiver, ast.Name) and receiver.id == "self"
            self_rooted = self_rooted or _root_self_attr(receiver) is not None
            if not self_rooted and not self._allowed(cls, func):
                target = _terminal_name(receiver) or "<expr>"
                yield self.finding(
                    ctx,
                    node,
                    f"'{target}.load_state_dict(...)' overwrites another model's "
                    "parameters outside clone()/load*/restore*/FineTuner (the "
                    "PR 4 shared-checkpoint corruption)",
                )
        # model.state_dict()[key] = value — mutating a checkpoint view.
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, (ast.Store, ast.Del))
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
            and node.value.func.attr == "state_dict"
        ):
            yield self.finding(
                ctx,
                node,
                "writing into 'state_dict()[...]' mutates shared checkpoint "
                "state in place; copy the dict (or use clone()) instead",
            )


# ---------------------------------------------------------------------------
# thread-global
# ---------------------------------------------------------------------------

_CONSTANT_NAME_RE = re.compile(r"^_?[A-Z][A-Z0-9_]*$")
_THREAD_SAFE_FACTORIES = {"local", "ContextVar"}


@register_rule
class ThreadGlobalRule(Rule):
    """Module-level mutable globals in ``nn/`` must be thread-local (the PR 5
    ``_GRAD_ENABLED`` grad-mode race)."""

    id = "thread-global"
    severity = "error"
    description = (
        "no module-level mutable globals in nn/ unless threading.local / "
        "ContextVar; no 'global' rebinding"
    )

    SCOPE = ("repro", "nn")

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*self.SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Global):
                for name in node.names:
                    yield self.finding(
                        ctx,
                        node,
                        f"'global {name}' rebinds module state at runtime; "
                        "module-level mutability in nn/ raced across threads "
                        "before (PR 5 _GRAD_ENABLED) — prefer threading.local "
                        "or instance state",
                    )
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if not self._is_mutable_container(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                is_dunder = target.id.startswith("__") and target.id.endswith("__")
                if not is_dunder and not _CONSTANT_NAME_RE.match(target.id):
                    yield self.finding(
                        ctx,
                        stmt,
                        f"module-level mutable global {target.id!r} in nn/ is "
                        "shared across threads; use threading.local(), a "
                        "ContextVar, or an ALL_CAPS immutable constant",
                    )

    def _is_mutable_container(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func)
            if name in _THREAD_SAFE_FACTORIES:
                return False
            return name in _MUTABLE_CALLS
        return False


# ---------------------------------------------------------------------------
# protocol-conformance
# ---------------------------------------------------------------------------


@register_rule
class ProtocolConformanceRule(Rule):
    """Every ``CostModel`` subclass statically defines the abstract protocol
    surface declared in ``backends/base.py`` (methods whose base implementation
    raises ``NotImplementedError``, plus the ``backend`` identifier)."""

    id = "protocol-conformance"
    severity = "error"
    description = (
        "CostModel subclasses define every abstract member of the protocol"
    )

    BASE_SUFFIX = "backends/base.py"
    BASE_CLASS = "CostModel"

    def check_project(self, project: Project) -> Iterator[Finding]:
        base = self._find_base(project)
        if base is None:
            return
        required = self._abstract_members(base)
        required_attrs = {"backend"}
        for ctx in project.files:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if node is base:
                    continue
                if not any(
                    _terminal_name(b) == self.BASE_CLASS for b in node.bases
                ):
                    continue
                defined = self._defined_members(node)
                for member in sorted(required - defined):
                    yield Finding(
                        rule=self.id,
                        message=(
                            f"{node.name} subclasses {self.BASE_CLASS} but does "
                            f"not define abstract member {member!r} (the base "
                            "raises NotImplementedError at call time)"
                        ),
                        path=ctx.display,
                        line=node.lineno,
                        severity=self.severity,
                    )
                for attr in sorted(required_attrs - defined):
                    yield Finding(
                        rule=self.id,
                        message=(
                            f"{node.name} subclasses {self.BASE_CLASS} but sets "
                            f"no {attr!r} identifier (class attribute or "
                            f"'self.{attr} = ...' in __init__)"
                        ),
                        path=ctx.display,
                        line=node.lineno,
                        severity=self.severity,
                    )

    def _find_base(self, project: Project) -> Optional[ast.ClassDef]:
        for ctx in project.find(self.BASE_SUFFIX):
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef) and node.name == self.BASE_CLASS:
                    return node
        return None

    def _abstract_members(self, base: ast.ClassDef) -> Set[str]:
        members: Set[str] = set()
        for stmt in base.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Raise) and node.exc is not None:
                    exc = node.exc
                    name = (
                        _terminal_name(exc.func)
                        if isinstance(exc, ast.Call)
                        else _terminal_name(exc)
                    )
                    if name == "NotImplementedError":
                        members.add(stmt.name)
                        break
        return members

    def _defined_members(self, cls: ast.ClassDef) -> Set[str]:
        defined: Set[str] = set()
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defined.add(stmt.name)
                if stmt.name == "__init__":
                    for node in ast.walk(stmt):
                        if isinstance(node, ast.Attribute) and isinstance(
                            node.ctx, ast.Store
                        ):
                            if _is_self_attr(node):
                                defined.add(node.attr)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        defined.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                defined.add(stmt.target.id)
        return defined


# ---------------------------------------------------------------------------
# broad-except
# ---------------------------------------------------------------------------

_BROAD_EXCEPTIONS = {"Exception", "BaseException"}
_REPORTING_FRAGMENTS = ("log", "warn", "error", "except", "print", "debug", "fail")


@register_rule
class BroadExceptRule(Rule):
    """``except Exception``/bare ``except`` in ``serving/`` must re-raise or
    report — silent swallowing hides daemon-tier failures."""

    id = "broad-except"
    severity = "warning"
    description = (
        "broad except handlers in serving/ must re-raise or log/report"
    )

    SCOPE = ("repro", "serving")

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*self.SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._reports(node):
                continue
            label = (
                "bare 'except:'" if node.type is None else "'except Exception'"
            )
            yield self.finding(
                ctx,
                node,
                f"{label} swallows serving-tier errors without re-raising or "
                "reporting; narrow the exception type, re-raise, or send the "
                "error to the caller/log",
            )

    def _is_broad(self, type_node: Optional[ast.expr]) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(elt) for elt in type_node.elts)
        return _terminal_name(type_node) in _BROAD_EXCEPTIONS

    def _reports(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                name = _terminal_name(node.func)
                if name and any(
                    fragment in name.lower() for fragment in _REPORTING_FRAGMENTS
                ):
                    return True
        return False


# ---------------------------------------------------------------------------
# inference-autograd
# ---------------------------------------------------------------------------


@register_rule
class InferenceAutogradRule(Rule):
    """Serving hot paths stay on the autograd-free inference path: no
    ``Tensor(...)`` construction and no direct ``.forward(...)`` calls in
    ``serving/`` — the predictors' ``infer``/``predict_*`` entry points
    operate on raw ndarrays without building a tape."""

    id = "inference-autograd"
    severity = "error"
    description = (
        "no Tensor(...) construction or .forward(...) calls in serving/; "
        "serve through the autograd-free infer path"
    )

    SCOPE = ("repro", "serving")

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*self.SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _terminal_name(node.func) == "Tensor":
                yield self.finding(
                    ctx,
                    node,
                    "'Tensor(...)' builds an autograd graph on the serving hot "
                    "path; serve through the model's predict_*/infer entry "
                    "points, which stay on raw ndarrays",
                )
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "forward":
                yield self.finding(
                    ctx,
                    node,
                    "direct '.forward(...)' runs the autograd forward pass on "
                    "the serving hot path; call the inference-mode entry point "
                    "(Module.infer / predictor.infer) instead",
                )
