"""Device onboarding: grow a live fleet by one device without retraining.

This module turns Section 5.3 + Algorithm 1 into a production pipeline, the
loop TLP-style cost models and the TPU learned performance model run when a
new accelerator generation lands:

1. **select** — κ representative tasks are chosen by KMeans clustering of the
   *pre-trained* model's latent representations of the candidate tensor
   programs (Algorithm 1; ``strategy="random"`` is the Fig. 13 baseline);
2. **profile** — only the selected tasks are measured on the target device,
   under an optional measurement budget (``max_measurements``), mirroring the
   paper's premise that profiling is the expensive step;
3. **fine-tune** — a *detached clone* of the pre-trained model (see
   :meth:`repro.core.trainer.Trainer.clone`) is optimised with the Eq. 7
   objective (hybrid supervised loss + α·CMD between source and target
   latents), with per-epoch validation on held-out profiled records,
   early stopping and best-state restore;
4. **report / register** — zero-shot vs adapted error is reported, and the
   adapted model can be registered as a backend-tagged checkpoint carrying
   lineage metadata (parent checkpoint, κ, α, strategy, epochs), ready for
   :meth:`repro.serving.FleetService.onboard_device` to hot-swap in.

The pre-trained model is never mutated: a fleet that serves it through
``ModelRegistry.load_shared`` on other devices keeps answering from
bit-identical weights while the clone adapts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.backends.cdmpp import CDMPPBackend
from repro.backends.base import as_cost_model
from repro.core.finetune import FineTuner, featurize_for_predictor
from repro.core.trainer import Trainer, TrainingResult
from repro.devices.spec import DeviceSpec, get_device
from repro.errors import TrainingError
from repro.features.pipeline import FeatureSet, featurize_programs
from repro.profiler.profiler import Profiler
from repro.profiler.records import MeasureRecord
from repro.core.sampling import select_tasks_kmeans, select_tasks_random
from repro.tir.lower import lower
from repro.tir.schedule import random_schedule
from repro.tir.task import Task
from repro.utils.rng import new_rng, spawn_rng

STRATEGIES = ("kmeans", "random")


def _require_cdmpp(model) -> CDMPPBackend:
    """Adapt ``model`` onto the CDMPP backend, refusing other backends."""
    backend = as_cost_model(model)
    if not isinstance(backend, CDMPPBackend):
        raise TrainingError(
            f"device onboarding needs the cdmpp backend (fine-tuning uses its "
            f"latent space), got {backend.backend!r}"
        )
    if not backend.fitted:
        raise TrainingError("device onboarding requires a pre-trained model (call fit() first)")
    return backend


@dataclass
class OnboardingResult:
    """Everything one :meth:`OnboardingPipeline.onboard` run produced.

    ``model`` is the adapted :class:`~repro.backends.cdmpp.CDMPPBackend` — a
    detached clone; the pipeline's pre-trained parent keeps its weights
    bit-identical.  ``zero_shot``/``adapted`` are error reports of the parent
    and the adapted model on the same evaluation split (``eval_split`` names
    which split that was).
    """

    device: str
    strategy: str
    kappa: int
    selected_tasks: List[str]
    alpha: float
    profiled_records: int
    profiling_budget: Optional[int]
    profiling_seconds: float
    finetune: TrainingResult
    zero_shot: Dict[str, float]
    adapted: Dict[str, float]
    cmd_before: float
    cmd_after: float
    eval_split: str
    model: CDMPPBackend
    parent: Optional[str] = None
    registered_as: Optional[str] = None
    checkpoint_path: Optional[Path] = None

    @property
    def mape_improvement(self) -> float:
        """Zero-shot MAPE minus adapted MAPE (positive = onboarding helped)."""
        return self.zero_shot["mape"] - self.adapted["mape"]

    @property
    def lineage(self) -> Dict[str, object]:
        """Provenance metadata stored in the adapted checkpoint."""
        return {
            "parent": self.parent,
            "kappa": int(self.kappa),
            "num_selected": len(self.selected_tasks),
            "strategy": self.strategy,
            "alpha": float(self.alpha),
            "epochs": len(self.finetune.history),
            "records_profiled": int(self.profiled_records),
            "profiling_budget": self.profiling_budget,
        }


class OnboardingPipeline:
    """End-to-end adaptation of a pre-trained cost model to a new device.

    Args:
        model: The pre-trained parent — a fitted :class:`Trainer`, the
            ``CDMPP`` facade or a :class:`CDMPPBackend` (other backends are
            refused: onboarding fine-tunes in the CDMPP latent space).
        source_train: Labeled source-domain features for the supervised term
            of Eq. 7 (a subset of the pre-training set).
        parent_name: Registry name of the parent checkpoint, recorded in the
            adapted checkpoint's lineage metadata.
        seed: Base seed for schedule sampling, profiling and task selection.
    """

    def __init__(
        self,
        model: Union[Trainer, CDMPPBackend, object],
        source_train: FeatureSet,
        parent_name: Optional[str] = None,
        seed: int | str | None = 0,
    ):
        self.backend = _require_cdmpp(model)
        if len(source_train) == 0:
            raise TrainingError("OnboardingPipeline needs non-empty source training features")
        self.source_train = source_train
        self.parent_name = parent_name
        self.seed = seed

    # ------------------------------------------------------------------
    # Stages (also usable piecemeal)
    # ------------------------------------------------------------------
    def candidate_features(
        self, tasks: Sequence[Task], device: DeviceSpec, schedules_per_task: int, rng
    ) -> FeatureSet:
        """Unlabeled target-domain features of every candidate task.

        Schedules are sampled deterministically per task for the device's
        taxonomy; no profiling happens here — these features drive task
        selection and the unsupervised CMD term only.
        """
        programs = []
        for task in tasks:
            task_rng = spawn_rng(rng, "candidate", task.workload_key)
            for _ in range(max(int(schedules_per_task), 1)):
                programs.append(lower(task, random_schedule(task, task_rng, device.taxonomy)))
        return featurize_programs(programs, device, max_leaves=self.backend.max_leaves)

    def select_tasks(
        self, pool: FeatureSet, num_tasks: int, strategy: str, rng
    ) -> List[str]:
        """Algorithm 1 (or the random baseline) over the parent's latents."""
        if strategy not in STRATEGIES:
            raise TrainingError(
                f"unknown sampling strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        latents = self.backend.trainer.latent(pool)
        features_by_task = {key: latents[idx] for key, idx in pool.by_task().items()}
        if strategy == "kmeans":
            return select_tasks_kmeans(features_by_task, num_tasks, seed=spawn_rng(rng, "kmeans"))
        return select_tasks_random(list(features_by_task), num_tasks, seed=spawn_rng(rng, "random"))

    def profile_selected(
        self,
        tasks: Sequence[Task],
        selected: Sequence[str],
        device: DeviceSpec,
        schedules_per_task: int,
        max_measurements: Optional[int],
        rng,
    ) -> List[MeasureRecord]:
        """Measure the selected tasks on the target device, within budget.

        Tasks are profiled in selection order (most representative clusters
        first), so a tight ``max_measurements`` budget drops the least
        informative tasks, not random ones.
        """
        by_key = {task.workload_key: task for task in tasks}
        profiler = Profiler(device, seed=spawn_rng(rng, "profile", device.name))
        remaining = max_measurements if max_measurements is not None else float("inf")
        records: List[MeasureRecord] = []
        for key in selected:
            if remaining <= 0:
                break
            budgeted = int(min(max(int(schedules_per_task), 1), remaining))
            records.extend(profiler.profile_task(by_key[key], num_schedules=budgeted))
            remaining -= budgeted
        return records

    # ------------------------------------------------------------------
    # The pipeline
    # ------------------------------------------------------------------
    def onboard(
        self,
        device: Union[str, DeviceSpec],
        tasks: Sequence[Task],
        num_tasks: int = 8,
        strategy: str = "kmeans",
        schedules_per_task: int = 4,
        max_measurements: Optional[int] = None,
        epochs: int = 5,
        alpha: Optional[float] = None,
        learning_rate: Optional[float] = None,
        valid_fraction: float = 0.25,
        patience: Optional[int] = 2,
        target_test: Optional[FeatureSet] = None,
        registry=None,
        register_as: Optional[str] = None,
        annotations: Optional[Dict[str, object]] = None,
    ) -> OnboardingResult:
        """Run select → profile → fine-tune → report for one new device.

        Args:
            device: The device joining the fleet.
            tasks: Candidate tasks the device is expected to serve (the
                selection pool of Algorithm 1).
            num_tasks: κ, how many tasks to profile.
            strategy: ``"kmeans"`` (Algorithm 1) or ``"random"``.
            schedules_per_task: Schedules measured per selected task.
            max_measurements: Hard cap on profiled records (the profiling
                budget); ``None`` = κ × ``schedules_per_task``.
            epochs / alpha / learning_rate: Fine-tuning knobs (Eq. 7).
            valid_fraction: Fraction of profiled records held out for
                per-epoch validation / early stopping / best-state restore.
            patience: Early-stopping patience (``None`` disables it).
            target_test: Optional labeled target-device test features; when
                given, the zero-shot/adapted report uses it instead of the
                held-out profiled records (experiment mode).
            registry / register_as: When both are given, the adapted model is
                saved as a backend-tagged checkpoint under ``register_as``
                with lineage metadata.
            annotations: Extra checkpoint annotations (scale, seed, ...) so
                the adapted entry carries the same bookkeeping a ``cdmpp
                train`` registration would — later onboards chained off this
                checkpoint read them back.
        """
        tasks = list(tasks)
        if not tasks:
            raise TrainingError("onboard needs a non-empty candidate task list")
        spec = get_device(device) if isinstance(device, str) else device
        rng = new_rng(("onboard", spec.name, self.seed))
        alpha_value = (
            float(alpha) if alpha is not None else float(self.backend.trainer.config.cmd_alpha)
        )

        # 1. Candidate features + Algorithm-1 selection on the parent latents.
        pool = self.candidate_features(tasks, spec, schedules_per_task, rng)
        selected = self.select_tasks(pool, num_tasks, strategy, rng)

        # 2. Budget-capped profiling of the selected tasks.
        profile_start = time.perf_counter()
        records = self.profile_selected(
            tasks, selected, spec, schedules_per_task, max_measurements, rng
        )
        profiling_seconds = time.perf_counter() - profile_start
        if not records:
            raise TrainingError(
                "profiling produced no records (is max_measurements zero?); "
                "onboarding needs at least one measurement"
            )
        labeled = featurize_for_predictor(records, self.backend.max_leaves)

        # 3. Hold out part of the profiled records for validation.
        order = rng.permutation(len(labeled))
        num_valid = int(len(labeled) * valid_fraction) if len(labeled) >= 4 else 0
        valid = labeled.subset(order[:num_valid]) if num_valid else None
        train_labeled = labeled.subset(order[num_valid:])

        # 4. Evaluation split for the zero-shot vs adapted report.
        if target_test is not None and len(target_test) > 0:
            eval_fs, eval_split = target_test, "target_test"
        elif valid is not None:
            eval_fs, eval_split = valid, "holdout"
        else:
            eval_fs, eval_split = labeled, "profiled"

        zero_shot = self.backend.trainer.evaluate(eval_fs)

        # 5. CMD-regularized fine-tuning of a detached clone (Eq. 7).
        finetuner = FineTuner(self.backend.trainer)  # clones internally
        cmd_before = finetuner.latent_cmd(self.source_train, pool)
        finetune_result = finetuner.finetune(
            source=self.source_train,
            target=pool,
            target_labeled=train_labeled,
            epochs=epochs,
            alpha=alpha_value,
            learning_rate=learning_rate,
            valid=valid,
            patience=patience,
        )
        cmd_after = finetuner.latent_cmd(self.source_train, pool)
        adapted_backend = CDMPPBackend(trainer=finetuner.trainer)
        adapted = finetuner.trainer.evaluate(eval_fs)

        result = OnboardingResult(
            device=spec.name,
            strategy=strategy,
            kappa=int(num_tasks),
            selected_tasks=list(selected),
            alpha=alpha_value,
            profiled_records=len(records),
            profiling_budget=max_measurements,
            profiling_seconds=profiling_seconds,
            finetune=finetune_result,
            zero_shot=zero_shot,
            adapted=adapted,
            cmd_before=cmd_before,
            cmd_after=cmd_after,
            eval_split=eval_split,
            model=adapted_backend,
            parent=self.parent_name,
        )

        # 6. Optional registration with lineage metadata.
        if registry is not None and register_as:
            result.checkpoint_path = registry.save(
                register_as,
                adapted_backend,
                device=spec.name,
                lineage=result.lineage,
                **(annotations or {}),
            )
            result.registered_as = register_as
        return result
