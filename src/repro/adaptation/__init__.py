"""Device onboarding: clone-then-finetune new devices into a live fleet.

:class:`OnboardingPipeline` runs the paper's cross-device adaptation
(Sec. 5.3, Algorithm 1, Eq. 7) as a production pipeline — select κ tasks on
the pre-trained model's latents, profile them on the target device under a
measurement budget, CMD-regularize-finetune a *detached clone* and register
the adapted model with lineage metadata — without ever mutating the parent
model a fleet may be serving (``ModelRegistry.load_shared``).  The serving
side is :meth:`repro.serving.FleetService.onboard_device`, which hot-swaps
the adapted model in and invalidates only that device's prediction-cache
shard; the CLI front-end is ``cdmpp onboard``.
"""

from repro.adaptation.pipeline import STRATEGIES, OnboardingPipeline, OnboardingResult

__all__ = ["STRATEGIES", "OnboardingPipeline", "OnboardingResult"]
