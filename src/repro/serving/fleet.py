"""Graph-level fleet serving: end-to-end model latency across devices.

:class:`repro.serving.service.PredictionService` answers *per-kernel* latency
queries; callers who want a whole-model number ("how long does ResNet-50 take
on a T4?") would have to partition the model, loop over kernels and compose
the results themselves.  :class:`FleetService` is that graph-level tier, the
way TLP-style cost models and the TPU learned performance model are consumed
in practice:

* **partition** — the model (a zoo name, a :class:`ModelGraph` or a
  pre-built :class:`TIRDataFlowGraph`) is dissected into tensor programs via
  :func:`repro.graph.partition.partition_into_programs`, one scheduled kernel
  per unique workload; partitioned DFGs are memoized per
  (model, batch, taxonomy, seed) so repeated queries skip lowering;
* **batch** — the kernel queries of *every* requested device are submitted to
  one shared :class:`PredictionService` and answered by a single flush: one
  vectorized predictor call per distinct underlying model, which means
  literally one call when the fleet serves a shared cross-device checkpoint
  (CDMPP's speciality);
* **compose** — per-kernel latencies are folded into the end-to-end estimate
  by :func:`repro.replay.compose_latencies`: critical-path replay
  (Algorithm 2) by default, with a serial-sum fallback (``compose="serial"``);
* **fleet caches** — the per-device predictors share one feature cache
  (featurization does not depend on the model) while predictions live in a
  :class:`~repro.serving.cache.DeviceShardedCache`, so retraining one device
  invalidates only that device's shard.

Build a fleet from registry checkpoints with :meth:`FleetService.from_registry`
(devices naming the same checkpoint share one in-memory model via
``ModelRegistry.load_shared``), then ask :meth:`FleetService.predict_model`
for one device or :meth:`FleetService.predict_model_fleet` for a ranked
answer across every registered device.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backends import ensure_model_level
from repro.devices.spec import ACCEL, DeviceSpec, get_device
from repro.errors import ServingError
from repro.graph.dfg import TIRDataFlowGraph
from repro.graph.model import ModelGraph
from repro.graph.partition import partition_into_programs
from repro.graph.zoo import build_model, resolve_model_name
from repro.replay.e2e import COMPOSE_MODES, compose_latencies
from repro.serving.cache import DeviceShardedCache, LRUCache
from repro.serving.service import (
    DEFAULT_DEVICE,
    DEFAULT_TIER,
    ModelLike,
    PredictionService,
    validate_tier,
)
from repro.tir.program import TensorProgram

ModelQuery = Union[str, ModelGraph, TIRDataFlowGraph]

DEFAULT_GAP_S = 2e-6


def _canonical_device(name: Union[str, DeviceSpec]) -> str:
    """Canonical device name for fleet model keys (``"*"`` passes through)."""
    if isinstance(name, DeviceSpec):
        return name.name
    if name == DEFAULT_DEVICE:
        return name
    return get_device(name).name


@dataclass
class FleetPrediction:
    """End-to-end latency estimate of one model on one device.

    ``predicted_latency_s`` is composed with the requested mode;
    ``serial_latency_s`` is always the serial-sum bound, so callers can see
    how much graph parallelism the replay credited the device with.
    """

    model: str
    device: str
    predicted_latency_s: float
    serial_latency_s: float
    per_kernel_latency_s: Dict[str, float]
    num_nodes: int
    num_unique_kernels: int
    compose: str

    @property
    def parallel_speedup(self) -> float:
        """Serial bound over composed estimate (1.0 = no overlap credited)."""
        if self.predicted_latency_s <= 0:
            return 1.0
        return self.serial_latency_s / self.predicted_latency_s


@dataclass
class FleetStats:
    """Lifetime counters of one :class:`FleetService`."""

    model_queries: int = 0
    fanout_queries: int = 0
    partitions: int = 0
    partition_cache_hits: int = 0
    devices_onboarded: int = 0
    fast_tier_model_queries: int = 0
    accurate_tier_model_queries: int = 0


class FleetService:
    """Serve whole-model latency queries across a fleet of devices.

    ``models`` maps device names to fitted models — any
    :class:`repro.backends.CostModel` backend, the legacy
    ``CDMPP``/``Trainer`` entry points or a raw baseline; ``"*"`` is the
    any-device fallback, and different devices may be served by different
    backends.  All devices are served by one internal
    :class:`PredictionService` so kernel queries micro-batch across devices;
    devices passing the *same* model object share one predictor group and
    therefore one vectorized call per flush.
    """

    def __init__(
        self,
        models: Union[ModelLike, Mapping[str, ModelLike]],
        feature_cache_size: int = 8192,
        prediction_cache_size_per_device: int = 16384,
        max_batch_size: int = 512,
        predict_chunk_size: Optional[int] = 1024,
        gap_s: float = DEFAULT_GAP_S,
        fast_models: Optional[Union[ModelLike, Mapping[str, ModelLike]]] = None,
    ):
        self.gap_s = float(gap_s)
        self.feature_cache = LRUCache(feature_cache_size)
        self.prediction_cache = DeviceShardedCache(prediction_cache_size_per_device)
        if isinstance(models, Mapping):
            # Canonicalize device keys (queries resolve aliases/case through
            # get_device, so 'T4' must register under 't4' to be reachable).
            models = {_canonical_device(name): model for name, model in models.items()}
        if isinstance(fast_models, Mapping):
            fast_models = {
                _canonical_device(name): model for name, model in fast_models.items()
            }
        self._service = PredictionService(
            models,
            max_batch_size=max_batch_size,
            predict_chunk_size=predict_chunk_size,
            feature_cache=self.feature_cache,
            prediction_cache=self.prediction_cache,
            fast_models=fast_models,
        )
        self._dfg_cache = LRUCache(64)
        # Guards the fleet-level counters; the heavy lifting (queue, caches)
        # is protected by the underlying PredictionService's own lock.
        self._stats_lock = threading.Lock()
        self.stats = FleetStats()  # guarded-by: _stats_lock

    # ------------------------------------------------------------------
    # Construction / fleet management
    # ------------------------------------------------------------------
    @classmethod
    def from_registry(
        cls,
        registry,
        names: Union[str, Mapping[str, str]],
        devices: Optional[Sequence[str]] = None,
        **kwargs,
    ) -> "FleetService":
        """Build a fleet from registry checkpoints, one device per entry.

        ``names`` is either a ``{device: checkpoint_name}`` mapping or one
        checkpoint name combined with ``devices`` (the same cross-device
        model serving every listed device; with no ``devices`` it becomes the
        ``"*"`` fallback).  Checkpoints are loaded through
        ``ModelRegistry.load_shared``, so devices naming the same checkpoint
        share one in-memory model — and their kernel queries batch into one
        predictor call.
        """
        load = getattr(registry, "load_shared", registry.load)
        if isinstance(names, Mapping):
            if devices is not None:
                raise ServingError("pass either a {device: name} mapping or devices=, not both")
            if not names:
                raise ServingError("FleetService.from_registry needs at least one device")
            return cls({device: load(name) for device, name in names.items()}, **kwargs)
        model = load(names)
        if devices is None:
            return cls(model, **kwargs)
        if not devices:
            raise ServingError("FleetService.from_registry needs at least one device")
        return cls({get_device(device).name: model for device in devices}, **kwargs)

    @property
    def devices(self) -> List[str]:
        """Sorted device names served by the fleet (``"*"`` = fallback)."""
        return self._service.devices

    @property
    def fast_devices(self) -> List[str]:
        """Sorted device names with a registered fast-tier model."""
        return self._service.fast_devices

    def register_device(self, device: str, model: ModelLike) -> None:
        """Add (or replace) the predictor serving ``device``.

        Only that device's prediction-cache shard is invalidated; every other
        device keeps its warm cache.
        """
        self._service.swap_model(_canonical_device(device), model)

    def register_fast_model(self, device: str, model: ModelLike) -> None:
        """Install (or replace) the fast-tier model serving ``device``.

        ``model`` is normally a :class:`repro.backends.DistilledBackend`
        student of the accurate model serving the same device; queries with
        ``tier="fast"`` route to it.
        """
        self._service.swap_model(_canonical_device(device), model, tier="fast")

    def onboard_device(self, device: str, adapted) -> None:
        """Hot-swap an onboarded device's *adapted* model into the fleet.

        ``adapted`` is an :class:`repro.adaptation.OnboardingResult` (its
        ``model`` is used) or any fitted model.  The adapted model must be a
        detached clone (:meth:`repro.core.trainer.Trainer.clone`, what
        :class:`~repro.adaptation.OnboardingPipeline` produces): a model that
        still shares weights with the one currently serving ``device`` means
        fine-tuning mutated the served object — possibly shared with every
        other device via ``ModelRegistry.load_shared`` — and is refused.

        Only the onboarded device's prediction-cache shard is invalidated;
        every other device keeps its warm cache and its weights untouched.
        """
        from repro.adaptation.pipeline import OnboardingResult

        if isinstance(adapted, OnboardingResult):
            if adapted.device != _canonical_device(device):
                raise ServingError(
                    f"onboarding result is for device {adapted.device!r}, "
                    f"not {device!r}"
                )
            adapted = adapted.model
        name = _canonical_device(device)
        for served_device in self._service.devices:
            served = self._service.model_for(served_device)
            if served.wraps(adapted):
                raise ServingError(
                    f"the adapted model for {name!r} shares weights with the model "
                    f"serving device {served_device!r}; fine-tune a detached clone "
                    "(Trainer.clone / OnboardingPipeline) instead of the served object"
                )
        self._service.swap_model(name, adapted)
        with self._stats_lock:
            self.stats.devices_onboarded += 1

    def service_for_kernels(self) -> PredictionService:
        """The shared per-kernel service (for direct program-level queries)."""
        return self._service

    def add_swap_listener(self, listener) -> None:
        """Register ``listener(device_name)`` for model swaps on any device.

        Fires for :meth:`register_device` and :meth:`onboard_device` alike
        (both route through the kernel service's ``swap_model``); see
        :meth:`PredictionService.add_swap_listener`.
        """
        self._service.add_swap_listener(listener)

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def _resolve_targets(
        self, devices: Optional[Sequence[str]], tier: str = DEFAULT_TIER
    ) -> List[DeviceSpec]:
        if devices is None:
            names = [name for name in self.devices if name != DEFAULT_DEVICE]
            if not names:
                raise ServingError(
                    "fleet has only the '*' fallback model; pass devices= explicitly"
                )
        else:
            names = list(devices)
            if not names:
                raise ServingError("predict_model_fleet needs at least one device")
        specs, seen = [], set()
        for name in names:
            spec = name if isinstance(name, DeviceSpec) else get_device(name)
            if spec.name not in seen:
                seen.add(spec.name)
                specs.append(spec)
        for spec in specs:
            # raises ServingError when unservable on the requested tier
            backend = self._service.model_for(spec, tier=tier)
            ensure_model_level(backend, ServingError, device=spec.name)
        return specs

    def _partition(
        self,
        model: ModelQuery,
        taxonomy: str,
        batch_size: int,
        seed,
    ) -> TIRDataFlowGraph:
        """The DFG of ``model`` for one device taxonomy (memoized for zoo names)."""
        if isinstance(model, TIRDataFlowGraph):
            if len(model) == 0:
                raise ServingError(f"cannot predict an empty data-flow graph {model.name!r}")
            return model
        if isinstance(model, ModelGraph):
            # Caller-built graphs are mutable, so they are partitioned fresh.
            if len(model) == 0:
                raise ServingError(f"cannot predict an empty model graph {model.name!r}")
            with self._stats_lock:
                self.stats.partitions += 1
            return partition_into_programs(model, target_kind=taxonomy, seed=seed)
        name = resolve_model_name(model)
        key = (name, int(batch_size), taxonomy, repr(seed))
        dfg = self._dfg_cache.get(key)
        if dfg is None:
            # Two threads may race to build the same DFG; partitioning is
            # deterministic per (name, batch, taxonomy, seed) so last-put-wins
            # is harmless, and duplicate work is bounded by the race window.
            graph = build_model(name, batch_size=batch_size)
            dfg = partition_into_programs(graph, target_kind=taxonomy, seed=seed)
            self._dfg_cache.put(key, dfg)
            with self._stats_lock:
                self.stats.partitions += 1
        else:
            with self._stats_lock:
                self.stats.partition_cache_hits += 1
        return dfg

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def predict_model(
        self,
        model: ModelQuery,
        device: Union[str, DeviceSpec],
        batch_size: int = 1,
        seed: Union[int, str, None] = 0,
        compose: str = "replay",
        tier: str = DEFAULT_TIER,
    ) -> FleetPrediction:
        """End-to-end latency of one model on one device.

        Partition → batch → compose for a single device; equivalent to a
        one-device :meth:`predict_model_fleet`.  ``tier="fast"`` answers the
        kernel queries from the device's registered distilled student.
        """
        device_name = device if isinstance(device, str) else device.name
        results = self.predict_model_fleet(
            model,
            devices=[device_name],
            batch_size=batch_size,
            seed=seed,
            compose=compose,
            tier=tier,
        )
        return results[0]

    def predict_model_fleet(
        self,
        model: ModelQuery,
        devices: Optional[Sequence[str]] = None,
        batch_size: int = 1,
        seed: Union[int, str, None] = 0,
        compose: str = "replay",
        tier: str = DEFAULT_TIER,
    ) -> List[FleetPrediction]:
        """End-to-end latency of one model on every requested device, ranked.

        ``devices`` defaults to every registered device.  All kernel queries
        of all devices are enqueued first and answered by one flush — one
        vectorized predictor call per distinct underlying model — then each
        device's latencies are composed independently.  Results are sorted
        fastest-first.

        ``batch_size`` only applies when ``model`` is a zoo name; a
        :class:`ModelGraph` or :class:`TIRDataFlowGraph` is predicted at the
        batch size it was built with.
        """
        tier = validate_tier(tier)
        specs = self._resolve_targets(devices, tier=tier)
        with self._stats_lock:
            if len(specs) > 1:
                self.stats.fanout_queries += 1
        results = self.predict_model_batch(
            [(model, spec, batch_size) for spec in specs],
            seed=seed,
            compose=compose,
            tier=tier,
        )
        results.sort(key=lambda prediction: prediction.predicted_latency_s)
        return results

    def predict_model_batch(
        self,
        queries: Sequence[Tuple[ModelQuery, Union[str, DeviceSpec], int]],
        seed: Union[int, str, None] = 0,
        compose: str = "replay",
        tier: str = DEFAULT_TIER,
    ) -> List[FleetPrediction]:
        """Answer many heterogeneous model queries with one batched flush.

        ``queries`` is a sequence of ``(model, device, batch_size)`` triples —
        different networks, devices and batch sizes may be mixed freely.  All
        per-kernel queries of *all* triples are enqueued on the shared
        :class:`PredictionService` first and answered by a single flush (one
        vectorized predictor call per distinct underlying model), then each
        triple's latencies are composed independently.  Results come back in
        input order (unsorted).

        This is the cross-request micro-batching primitive the serving daemon
        builds on: a shard worker drains its request queue into one
        ``predict_model_batch`` call, so concurrent clients amortize
        featurization and predictor overhead exactly like one big caller.
        """
        if compose not in COMPOSE_MODES:
            raise ServingError(
                f"unknown composition mode {compose!r}; expected one of {COMPOSE_MODES}"
            )
        if not queries:
            return []
        tier = validate_tier(tier)
        resolved: List[Tuple[ModelQuery, DeviceSpec, int]] = []
        for model, device, batch_size in queries:
            spec = device if isinstance(device, DeviceSpec) else get_device(device)
            backend = self._service.model_for(spec, tier=tier)  # raises when unservable
            ensure_model_level(backend, ServingError, device=spec.name)
            resolved.append((model, spec, int(batch_size)))
        with self._stats_lock:
            self.stats.model_queries += len(resolved)
            if tier == "fast":
                self.stats.fast_tier_model_queries += len(resolved)
            else:
                self.stats.accurate_tier_model_queries += len(resolved)

        # Partition each distinct (model, batch, taxonomy) once; the DFG cache
        # additionally memoizes zoo names across calls.
        dfgs: Dict[tuple, TIRDataFlowGraph] = {}
        for model, spec, batch_size in resolved:
            key = (id(model) if not isinstance(model, str) else model, batch_size, spec.taxonomy)
            if key not in dfgs:
                dfgs[key] = self._partition(model, spec.taxonomy, batch_size, seed)

        # Batch: enqueue every (kernel, device) pair, then flush once.
        tickets: List[tuple] = []
        for model, spec, batch_size in resolved:
            key = (id(model) if not isinstance(model, str) else model, batch_size, spec.taxonomy)
            unique = dfgs[key].unique_programs()
            tickets.append(
                (
                    dfgs[key],
                    spec,
                    {
                        k: self._service.submit(program, spec, tier=tier)
                        for k, program in unique.items()
                    },
                )
            )
        self._service.flush()

        # Compose: fold per-kernel latencies into each query's estimate.
        results: List[FleetPrediction] = []
        for dfg, spec, device_tickets in tickets:
            durations = {key: ticket.result() for key, ticket in device_tickets.items()}
            composed = compose_latencies(dfg, durations, spec, gap_s=self.gap_s, mode=compose)
            # On single-slot devices replay degenerates to the serial sum, so
            # the bound is free; only multi-engine accelerators need a second
            # composition pass.
            multi_slot = spec.taxonomy == ACCEL and spec.gemm_engines > 1
            serial = (
                compose_latencies(dfg, durations, spec, gap_s=self.gap_s, mode="serial")
                if compose != "serial" and multi_slot
                else composed
            )
            results.append(
                FleetPrediction(
                    model=dfg.name,
                    device=spec.name,
                    predicted_latency_s=composed.iteration_time_s,
                    serial_latency_s=serial.iteration_time_s,
                    per_kernel_latency_s=dict(durations),
                    num_nodes=len(dfg),
                    num_unique_kernels=len(durations),
                    compose=compose,
                )
            )
        return results

    def predict_programs(
        self,
        programs: Sequence[TensorProgram],
        device: Union[str, DeviceSpec],
        tier: str = DEFAULT_TIER,
    ) -> np.ndarray:
        """Per-kernel latencies through the shared batch-and-cache path."""
        return self._service.predict(programs, device, tier=tier)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe_stats(self) -> Dict[str, object]:
        """Fleet counters plus the shared kernel service's counters."""
        with self._stats_lock:
            counters = {
                "model_queries": self.stats.model_queries,
                "fanout_queries": self.stats.fanout_queries,
                "partitions": self.stats.partitions,
                "partition_cache_hits": self.stats.partition_cache_hits,
                "devices_onboarded": self.stats.devices_onboarded,
                "fast_tier_model_queries": self.stats.fast_tier_model_queries,
                "accurate_tier_model_queries": self.stats.accurate_tier_model_queries,
            }
        counters["kernel_service"] = self._service.describe_stats()
        return counters

    def reset_stats(self) -> None:
        """Zero every counter (cache and DFG contents are kept)."""
        with self._stats_lock:
            self.stats = FleetStats()
        self._service.reset_stats()

    def __repr__(self) -> str:
        return (
            f"FleetService(devices={self.devices}, "
            f"dfg_cache={len(self._dfg_cache)}, "
            f"prediction_cache={self.prediction_cache!r})"
        )
