"""Checkpoint-backed model registry.

A :class:`ModelRegistry` is a directory of named ``.npz`` checkpoints.  It is
how the CLI's ``train`` / ``query`` / ``serve`` subcommands share pre-trained
cost models across processes: train once, register under a name
(conventionally ``"<device>-<scale>"``), and every later invocation loads
instead of retraining.

Checkpoints are **backend-tagged**: any :class:`repro.backends.CostModel`
(the CDMPP trainer or any baseline) can be registered, and :meth:`load`
dispatches on the tag through :func:`repro.backends.load_backend`.  Legacy
untagged trainer checkpoints keep loading as the ``"cdmpp"`` backend, and —
for backward compatibility with every pre-protocol caller — CDMPP
checkpoints load as a plain :class:`repro.core.trainer.Trainer` (which every
protocol consumer adapts via :func:`repro.backends.as_cost_model`).
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.backends import CostModel, as_cost_model, backend_of_checkpoint, load_backend
from repro.core.persistence import load_trainer, read_meta, save_trainer
from repro.core.trainer import Trainer
from repro.errors import TrainingError
from repro.version import __version__

PathLike = Union[str, Path]

#: What load() returns: a Trainer for cdmpp checkpoints (back-compat), a
#: CostModel backend for everything else.
LoadedModel = Union[Trainer, CostModel]

_SUFFIX = ".npz"


def default_registry_root() -> Path:
    """The registry directory used when none is given.

    ``$CDMPP_REGISTRY`` overrides the default of ``~/.cache/cdmpp/models``.
    """
    env = os.environ.get("CDMPP_REGISTRY")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "cdmpp" / "models"


class ModelRegistry:
    """Named, persisted cost models under one root directory."""

    def __init__(self, root: Optional[PathLike] = None):
        self.root = Path(root) if root is not None else default_registry_root()
        # Reentrant: delete() holds the lock while reading the lazy
        # search_cache property.  One registry is shared by every shard
        # worker of a ServingDaemon, so the memo table and the lazily
        # created search cache must not race.
        self._lock = threading.RLock()
        # (name, checkpoint mtime) -> loaded model, for load_shared().
        self._load_cache: Dict[tuple, LoadedModel] = {}  # guarded-by: _lock
        self._search_cache = None  # guarded-by: _lock

    @property
    def search_cache(self):
        """Persisted schedule-search results living next to the checkpoints.

        Lazy so registries that never tune pay nothing; see
        :class:`repro.serving.search_cache.SearchCache` for the invalidation
        semantics (re-registering or deleting a checkpoint evicts its
        tunings — see :meth:`save` / :meth:`delete`).
        """
        with self._lock:
            if self._search_cache is None:
                from repro.serving.search_cache import SearchCache

                self._search_cache = SearchCache(self.root / "search")
            return self._search_cache

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def path_for(self, name: str) -> Path:
        """Checkpoint path of a registry entry (which may not exist yet)."""
        if not name or "/" in name or name.startswith("."):
            raise TrainingError(f"invalid registry model name {name!r}")
        return self.root / f"{name}{_SUFFIX}"

    def exists(self, name: str) -> bool:
        """Whether a model is registered under ``name``."""
        return self.path_for(name).exists()

    def list(self) -> List[str]:
        """Sorted names of all registered models."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob(f"*{_SUFFIX}"))

    def describe(self, name: str) -> Dict:
        """Checkpoint metadata (configs + registry annotations), weights untouched."""
        return read_meta(self.path_for(name))

    def backend_of(self, name: str) -> str:
        """Backend tag of a registered checkpoint (``"cdmpp"`` when untagged)."""
        return backend_of_checkpoint(self.path_for(name))

    def lineage_of(self, name: str) -> Dict:
        """Onboarding lineage of a checkpoint (empty for pre-trained roots).

        Checkpoints registered by :class:`repro.adaptation.OnboardingPipeline`
        record how they were derived — parent checkpoint, κ, sampling
        strategy, α, fine-tuning epochs, profiled-record count — so a fleet
        operator can audit where every adapted model came from.
        """
        return dict(self.describe(name).get("extra", {}).get("lineage") or {})

    # ------------------------------------------------------------------
    # Save / load
    # ------------------------------------------------------------------
    def save(self, name: str, model: Union[Trainer, CostModel, object], **annotations) -> Path:
        """Register a fitted cost model under ``name``.

        ``model`` is a fitted :class:`Trainer`, any :class:`CostModel`
        backend, the ``CDMPP`` facade or a raw baseline — anything
        :func:`repro.backends.as_cost_model` accepts.  Keyword
        ``annotations`` (device, scale, ...) are stored in the checkpoint
        metadata and come back through :meth:`describe`.
        """
        extra = {"registry_name": name, "version": __version__, **annotations}
        path = self.path_for(name)
        existed = path.exists()
        if isinstance(model, Trainer):
            saved = save_trainer(model, path, extra_meta=extra)
        else:
            saved = as_cost_model(model).save(path, extra_meta=extra)
        if existed:
            # Re-registering under the same name (retrain/finetune) makes any
            # schedule tuning done against the old weights stale — the new
            # model may share the old cache_signature, so evict by name.
            self.search_cache.invalidate_model(name)
        return saved

    def load(self, name: str) -> LoadedModel:
        """Load a registered cost model, ready to answer queries.

        Dispatches on the checkpoint's backend tag: CDMPP checkpoints
        (tagged or legacy untagged) come back as a :class:`Trainer`, other
        backends as their :class:`CostModel`.
        """
        path = self.path_for(name)
        if not path.exists():
            available = ", ".join(self.list()) or "<registry is empty>"
            raise TrainingError(f"no model {name!r} in registry {self.root} (available: {available})")
        if backend_of_checkpoint(path) == "cdmpp":
            return load_trainer(path)
        return load_backend(path)

    def load_model(self, name: str) -> CostModel:
        """Load a registered checkpoint as a :class:`CostModel`, whatever its backend."""
        return as_cost_model(self.load(name))

    def load_shared(self, name: str) -> LoadedModel:
        """Load a registered model, memoized per (name, checkpoint mtime).

        A fleet that serves the same checkpoint on several devices (CDMPP's
        cross-device speciality) calls this once per device; every call after
        the first returns the *same* model object, so the devices share one
        set of weights in memory and their queries batch into one predictor
        call.  A re-registered checkpoint (new mtime) is reloaded.
        """
        path = self.path_for(name)
        if not path.exists():
            return self.load(name)  # raises with the standard message
        key = (name, path.stat().st_mtime_ns)
        with self._lock:
            model = self._load_cache.get(key)
            if model is None:
                model = self._load_cache[key] = self.load(name)
                # Drop stale mtimes of the same name so the cache stays bounded.
                for stale in [k for k in self._load_cache if k[0] == name and k != key]:
                    del self._load_cache[stale]
            return model

    def delete(self, name: str) -> bool:
        """Remove a registered model; returns whether it existed.

        The name is also evicted from the ``load_shared`` cache: deleting
        then re-registering under the same name must never hand callers the
        dead model, even if the new checkpoint's mtime collides with the old
        one's.
        """
        with self._lock:
            for stale in [k for k in self._load_cache if k[0] == name]:
                del self._load_cache[stale]
            path = self.path_for(name)
            if path.exists():
                path.unlink()
                # Tunings searched against the deleted checkpoint are orphans.
                self.search_cache.invalidate_model(name)
                return True
            return False

    def __contains__(self, name: str) -> bool:
        return self.exists(name)

    def __repr__(self) -> str:
        return f"ModelRegistry(root={str(self.root)!r}, models={len(self.list())})"
