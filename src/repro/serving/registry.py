"""Checkpoint-backed model registry.

A :class:`ModelRegistry` is a directory of named ``.npz`` checkpoints written
through :mod:`repro.core.persistence`.  It is how the CLI's ``train`` /
``query`` / ``serve`` subcommands share pre-trained cost models across
processes: train once, register under a name (conventionally
``"<device>-<scale>"``), and every later invocation loads instead of
retraining.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.persistence import load_trainer, read_meta, save_trainer
from repro.core.trainer import Trainer
from repro.errors import TrainingError
from repro.version import __version__

PathLike = Union[str, Path]

_SUFFIX = ".npz"


def default_registry_root() -> Path:
    """The registry directory used when none is given.

    ``$CDMPP_REGISTRY`` overrides the default of ``~/.cache/cdmpp/models``.
    """
    env = os.environ.get("CDMPP_REGISTRY")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "cdmpp" / "models"


class ModelRegistry:
    """Named, persisted cost models under one root directory."""

    def __init__(self, root: Optional[PathLike] = None):
        self.root = Path(root) if root is not None else default_registry_root()
        # (name, checkpoint mtime) -> loaded trainer, for load_shared().
        self._load_cache: Dict[tuple, Trainer] = {}

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def path_for(self, name: str) -> Path:
        """Checkpoint path of a registry entry (which may not exist yet)."""
        if not name or "/" in name or name.startswith("."):
            raise TrainingError(f"invalid registry model name {name!r}")
        return self.root / f"{name}{_SUFFIX}"

    def exists(self, name: str) -> bool:
        """Whether a model is registered under ``name``."""
        return self.path_for(name).exists()

    def list(self) -> List[str]:
        """Sorted names of all registered models."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob(f"*{_SUFFIX}"))

    def describe(self, name: str) -> Dict:
        """Checkpoint metadata (configs + registry annotations), weights untouched."""
        return read_meta(self.path_for(name))

    # ------------------------------------------------------------------
    # Save / load
    # ------------------------------------------------------------------
    def save(self, name: str, trainer: Trainer, **annotations) -> Path:
        """Register a fitted trainer under ``name``.

        Keyword ``annotations`` (device, scale, ...) are stored in the
        checkpoint metadata and come back through :meth:`describe`.
        """
        extra = {"registry_name": name, "version": __version__, **annotations}
        return save_trainer(trainer, self.path_for(name), extra_meta=extra)

    def load(self, name: str) -> Trainer:
        """Load a registered trainer, ready to answer queries."""
        path = self.path_for(name)
        if not path.exists():
            available = ", ".join(self.list()) or "<registry is empty>"
            raise TrainingError(f"no model {name!r} in registry {self.root} (available: {available})")
        return load_trainer(path)

    def load_shared(self, name: str) -> Trainer:
        """Load a registered trainer, memoized per (name, checkpoint mtime).

        A fleet that serves the same checkpoint on several devices (CDMPP's
        cross-device speciality) calls this once per device; every call after
        the first returns the *same* trainer object, so the devices share one
        set of weights in memory and their queries batch into one predictor
        call.  A re-registered checkpoint (new mtime) is reloaded.
        """
        path = self.path_for(name)
        if not path.exists():
            return self.load(name)  # raises with the standard message
        key = (name, path.stat().st_mtime_ns)
        trainer = self._load_cache.get(key)
        if trainer is None:
            trainer = self._load_cache[key] = self.load(name)
            # Drop stale mtimes of the same name so the cache stays bounded.
            for stale in [k for k in self._load_cache if k[0] == name and k != key]:
                del self._load_cache[stale]
        return trainer

    def delete(self, name: str) -> bool:
        """Remove a registered model; returns whether it existed."""
        path = self.path_for(name)
        if path.exists():
            path.unlink()
            return True
        return False

    def __contains__(self, name: str) -> bool:
        return self.exists(name)

    def __repr__(self) -> str:
        return f"ModelRegistry(root={str(self.root)!r}, models={len(self.list())})"
