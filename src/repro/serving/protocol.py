"""Wire protocol of the ``cdmpp daemon``: line-delimited JSON over TCP.

Every message — request or response — is one JSON object serialized on a
single line and terminated by ``\\n``.  The protocol is deliberately tiny and
language-agnostic: any client that can open a socket and speak JSON can query
the daemon (``printf '{"op": "health"}\\n' | nc host port`` works).

Requests
--------

``{"op": <op>, "id": <any>, ...}`` where ``op`` is one of:

* ``query`` — end-to-end latency of one network on one device::

      {"op": "query", "network": "bert_tiny", "device": "t4",
       "batch_size": 1, "deadline_ms": 50, "seed": 0, "tier": "accurate"}

* ``predict-model`` — one network ranked across several devices (default:
  every device the daemon serves)::

      {"op": "predict-model", "network": "resnet50", "devices": ["t4", "k80"],
       "tier": "fast"}

* ``tune`` — cost-model-guided schedule search for one network on one or
  more devices (default: every device the daemon serves), answered from the
  daemon's persistent search cache when the exact tuning is already known::

      {"op": "tune", "network": "bert_tiny", "devices": ["t4"],
       "rounds": 6, "population": 12, "measurements_per_round": 3, "seed": 0}

* ``stats`` — daemon + per-shard serving counters.
* ``health`` — liveness probe: status, uptime, served devices, queue depth.

``id`` is optional and echoed verbatim on the response so clients may
pipeline requests on one connection; responses are **not** guaranteed to
come back in request order (different device shards answer independently).

``tier`` (``query``/``predict-model`` only) selects the serving tier:
``"accurate"`` answers from the full model, ``"fast"`` from the device's
distilled student — a ``bad_request`` error if the daemon has no fast-tier
model for the device.  Omitted, it falls back to the daemon's configured
default (``accurate`` unless started otherwise).  Responses echo the tier
that answered.  ``tune`` is accurate-tier only.

Responses
---------

``{"ok": true, "id": ..., ...payload...}`` on success, or on failure::

    {"ok": false, "id": ..., "error": {"code": <code>, "message": <text>},
     "retry_after_ms": <number, only for "overloaded">}

Error codes (the HTTP analogy is documented, not wire-visible):

* ``bad_request`` — malformed JSON / unknown op / unknown network or device
  (HTTP 400).
* ``overloaded`` — admission control rejected the request because the
  daemon's bounded queue is full; retry after ``retry_after_ms`` (HTTP 503).
* ``deadline_exceeded`` — the request's deadline expired while it waited in
  the queue, so it was shed instead of answered late (HTTP 504).
* ``shutting_down`` — the daemon is draining after SIGTERM and accepts no
  new work (HTTP 503).
* ``internal`` — unexpected server-side failure (HTTP 500).
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Dict, Optional

from repro.errors import ServingError

#: Protocol revision, reported by ``health``; bump on breaking wire changes.
PROTOCOL_VERSION = 1

OPS = ("query", "predict-model", "tune", "stats", "health")

E_BAD_REQUEST = "bad_request"
E_OVERLOADED = "overloaded"
E_DEADLINE = "deadline_exceeded"
E_SHUTTING_DOWN = "shutting_down"
E_INTERNAL = "internal"

ERROR_CODES = (E_BAD_REQUEST, E_OVERLOADED, E_DEADLINE, E_SHUTTING_DOWN, E_INTERNAL)

_MAX_LINE_BYTES = 1 << 20  # one message may not exceed 1 MiB


def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialize one message as a compact single-line JSON record."""
    return json.dumps(message, separators=(",", ":"), sort_keys=True).encode() + b"\n"


def error_payload(
    code: str,
    message: str,
    request_id: Any = None,
    **extra: Any,
) -> Dict[str, Any]:
    """A failure response envelope (see the module docstring for codes)."""
    payload: Dict[str, Any] = {"ok": False, "error": {"code": code, "message": message}}
    if request_id is not None:
        payload["id"] = request_id
    payload.update(extra)
    return payload


def ok_payload(request_id: Any = None, **fields: Any) -> Dict[str, Any]:
    """A success response envelope."""
    payload: Dict[str, Any] = {"ok": True}
    if request_id is not None:
        payload["id"] = request_id
    payload.update(fields)
    return payload


class ProtocolError(ServingError):
    """A malformed or oversized wire message."""


class MessageStream:
    """Framed JSON messages over one socket, safe for multi-threaded sends.

    The daemon answers one connection from several shard-worker threads, so
    :meth:`send` serializes writers with a lock.  :meth:`recv` is expected to
    be called from a single reader thread (per connection) and buffers
    partial lines internally.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = threading.Lock()
        self._buffer = b""  # only touched by the single reader thread
        self._closed = False  # guarded-by: _send_lock

    def send(self, message: Dict[str, Any]) -> bool:
        """Send one message; returns False when the peer is gone."""
        data = encode_message(message)
        with self._send_lock:
            if self._closed:
                return False
            try:
                self._sock.sendall(data)
                return True
            except OSError:
                self._closed = True
                return False

    def recv(self) -> Optional[Dict[str, Any]]:
        """Read one message; None on clean EOF.

        Raises :class:`ProtocolError` on non-JSON input or an oversized line
        (the connection should be dropped by the caller).
        """
        while b"\n" not in self._buffer:
            if len(self._buffer) > _MAX_LINE_BYTES:
                raise ProtocolError(
                    f"wire message exceeds {_MAX_LINE_BYTES} bytes without a newline"
                )
            try:
                chunk = self._sock.recv(65536)
            except OSError:
                return None
            if not chunk:
                if self._buffer.strip():
                    raise ProtocolError("connection closed mid-message")
                return None
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        line = line.strip()
        if not line:
            return self.recv()  # tolerate blank keep-alive lines
        try:
            message = json.loads(line)
        except json.JSONDecodeError as error:
            raise ProtocolError(f"invalid JSON on the wire: {error}") from error
        if not isinstance(message, dict):
            raise ProtocolError(
                f"wire messages must be JSON objects, got {type(message).__name__}"
            )
        return message

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        with self._send_lock:
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
