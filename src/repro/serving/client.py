"""A thin Python client for the ``cdmpp`` serving daemon.

:class:`DaemonClient` speaks the line-delimited JSON protocol of
:mod:`repro.serving.protocol` over one TCP connection and exposes the
daemon's operations as methods.  Failures come back as
:class:`DaemonRequestError` carrying the wire error code, so callers can
distinguish backpressure (``overloaded`` — retry after
``error.retry_after_ms``) from a shed deadline (``deadline_exceeded``) or a
bad request.

The client tags every request with a monotonically increasing ``id`` and
matches responses by that id, buffering out-of-order arrivals — the daemon's
device shards answer independently, so pipelined responses may interleave.
One client instance may be shared across threads (each call holds the
client lock for its full round-trip); for *concurrent* in-flight requests,
open one client per thread — connections are cheap.

Example::

    with DaemonClient("127.0.0.1", 7077) as client:
        result = client.query("bert_tiny", device="t4", deadline_ms=50)
        print(result["latency_s"])
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ServingError
from repro.serving.protocol import E_OVERLOADED, MessageStream


class DaemonRequestError(ServingError):
    """A request the daemon answered with an error payload.

    ``code`` is one of :data:`repro.serving.protocol.ERROR_CODES`;
    ``retry_after_ms`` is set for ``overloaded`` rejections.
    """

    def __init__(self, code: str, message: str, retry_after_ms: Optional[float] = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.retry_after_ms = retry_after_ms


class DaemonClient:
    """One TCP connection to a :class:`repro.serving.daemon.ServingDaemon`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7077, timeout_s: float = 60.0):
        sock = socket.create_connection((host, port), timeout=timeout_s)
        self._stream = MessageStream(sock)
        self._lock = threading.Lock()
        self._next_id = 0  # guarded-by: _lock
        self._responses: Dict[Any, Dict[str, Any]] = {}  # guarded-by: _lock
        self.host = host
        self.port = port

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            request["id"] = request_id
            if not self._stream.send(request):
                raise ServingError("daemon connection is closed")
            while request_id not in self._responses:
                response = self._stream.recv()
                if response is None:
                    raise ServingError("daemon closed the connection mid-request")
                self._responses[response.get("id")] = response
            response = self._responses.pop(request_id)
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        raise DaemonRequestError(
            error.get("code", "internal"),
            error.get("message", "unknown daemon error"),
            retry_after_ms=response.get("retry_after_ms")
            if error.get("code") == E_OVERLOADED
            else None,
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def query(
        self,
        network: str,
        device: str,
        batch_size: int = 1,
        deadline_ms: Optional[float] = None,
        seed: Optional[int] = None,
        compose: Optional[str] = None,
        tier: Optional[str] = None,
    ) -> Dict[str, Any]:
        """End-to-end latency of ``network`` on ``device``.

        Returns the response payload: ``latency_s``, ``serial_latency_s``,
        ``per_kernel_latency_s``, ``num_nodes``, ``num_unique_kernels``.
        ``tier`` selects ``"accurate"`` (the full model) or ``"fast"`` (the
        device's distilled student); None uses the daemon's default.
        """
        request: Dict[str, Any] = {
            "op": "query",
            "network": network,
            "device": device,
            "batch_size": batch_size,
        }
        if deadline_ms is not None:
            request["deadline_ms"] = deadline_ms
        if seed is not None:
            request["seed"] = seed
        if compose is not None:
            request["compose"] = compose
        if tier is not None:
            request["tier"] = tier
        return self._call(request)

    def predict_model(
        self,
        network: str,
        devices: Optional[Sequence[str]] = None,
        batch_size: int = 1,
        deadline_ms: Optional[float] = None,
        seed: Optional[int] = None,
        compose: Optional[str] = None,
        tier: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Rank ``network`` across ``devices`` (default: all served devices).

        Returns per-device result dicts sorted fastest-first.  Devices that
        failed individually are reported under ``errors`` in the raw payload;
        use :meth:`predict_model_raw` to see them.
        """
        return self.predict_model_raw(
            network,
            devices=devices,
            batch_size=batch_size,
            deadline_ms=deadline_ms,
            seed=seed,
            compose=compose,
            tier=tier,
        )["results"]

    def predict_model_raw(
        self,
        network: str,
        devices: Optional[Sequence[str]] = None,
        batch_size: int = 1,
        deadline_ms: Optional[float] = None,
        seed: Optional[int] = None,
        compose: Optional[str] = None,
        tier: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Like :meth:`predict_model` but returns the full response payload."""
        request: Dict[str, Any] = {
            "op": "predict-model",
            "network": network,
            "batch_size": batch_size,
        }
        if devices is not None:
            request["devices"] = list(devices)
        if deadline_ms is not None:
            request["deadline_ms"] = deadline_ms
        if seed is not None:
            request["seed"] = seed
        if compose is not None:
            request["compose"] = compose
        if tier is not None:
            request["tier"] = tier
        return self._call(request)

    def tune(
        self,
        network: str,
        devices: Optional[Sequence[str]] = None,
        batch_size: int = 1,
        rounds: Optional[int] = None,
        population: Optional[int] = None,
        measurements_per_round: Optional[int] = None,
        seed: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """Schedule-search ``network`` on ``devices`` (default: all served).

        Returns one tuning dict per device: ``device``, ``tuned_latency_s``,
        per-task ``results`` and the ``cached_tasks``/``fresh_tasks`` split
        (a repeat tune of an unchanged model is fully cached and issues no
        new searches).  Use :meth:`tune_raw` to also see per-device errors.
        """
        return self.tune_raw(
            network,
            devices=devices,
            batch_size=batch_size,
            rounds=rounds,
            population=population,
            measurements_per_round=measurements_per_round,
            seed=seed,
            deadline_ms=deadline_ms,
        )["results"]

    def tune_raw(
        self,
        network: str,
        devices: Optional[Sequence[str]] = None,
        batch_size: int = 1,
        rounds: Optional[int] = None,
        population: Optional[int] = None,
        measurements_per_round: Optional[int] = None,
        seed: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Like :meth:`tune` but returns the full response payload."""
        request: Dict[str, Any] = {
            "op": "tune",
            "network": network,
            "batch_size": batch_size,
        }
        if devices is not None:
            request["devices"] = list(devices)
        if rounds is not None:
            request["rounds"] = rounds
        if population is not None:
            request["population"] = population
        if measurements_per_round is not None:
            request["measurements_per_round"] = measurements_per_round
        if seed is not None:
            request["seed"] = seed
        if deadline_ms is not None:
            request["deadline_ms"] = deadline_ms
        return self._call(request)

    def stats(self) -> Dict[str, Any]:
        """Daemon counters plus per-shard serving statistics."""
        return self._call({"op": "stats"})

    def health(self) -> Dict[str, Any]:
        """Liveness probe: status, uptime, served devices, queue depth."""
        return self._call({"op": "health"})

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection (idempotent)."""
        self._stream.close()

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"DaemonClient({self.host}:{self.port})"
