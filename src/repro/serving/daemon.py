"""The ``cdmpp`` serving daemon: concurrent, deadline-aware latency serving.

:class:`repro.serving.PredictionService` and :class:`FleetService` are
synchronous, one caller at a time.  :class:`ServingDaemon` turns them into a
long-running concurrent system — the tier adaptive optimizers and TLP-style
tuners actually call from many processes at once:

* **async request queue** — clients speak the line-delimited JSON protocol of
  :mod:`repro.serving.protocol` over TCP; every connection gets a reader
  thread that validates requests and routes them onto bounded per-device
  queues, returning immediately to read the next pipelined request;
* **deadline-aware micro-batching** — each device shard worker collects
  requests until the batch is full OR the oldest request has waited
  ``max_wait_ms``, then answers the whole batch through one
  :meth:`FleetService.predict_model_batch` flush.  Requests carrying a
  ``deadline_ms`` jump the queue (the batch window closes early and they are
  served first); a request whose deadline expires while queued is **shed**
  with ``deadline_exceeded`` instead of being answered late;
* **concurrent per-device shard workers** — one worker thread per served
  device, each owning a single-device :class:`FleetService` over that
  device's model, so distinct models predict in parallel and one slow
  device cannot stall another's queue;
* **admission control / backpressure** — the total number of queued requests
  is bounded by ``queue_limit``; beyond it new work is rejected immediately
  with an ``overloaded`` error and a ``retry_after_ms`` hint (503-style)
  rather than queued into unbounded latency;
* **graceful drain** — SIGTERM/SIGINT (or :meth:`stop`) stop admission,
  answer everything already queued, then close; clients never see a
  half-written response.

Answers are **bit-identical** to in-process serving: a shard worker runs the
very same partition → batch → compose path as a direct
``FleetService.predict_model`` call on the same model, and the JSON wire
format round-trips doubles exactly.
"""

from __future__ import annotations

import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.devices.spec import DeviceSpec, get_device
from repro.errors import ReproError, ServingError
from repro.graph.zoo import resolve_model_name
from repro.replay.e2e import COMPOSE_MODES
from repro.serving.fleet import FleetPrediction, FleetService
from repro.serving.protocol import (
    E_BAD_REQUEST,
    E_DEADLINE,
    E_INTERNAL,
    E_OVERLOADED,
    E_SHUTTING_DOWN,
    OPS,
    PROTOCOL_VERSION,
    MessageStream,
    ProtocolError,
    error_payload,
    ok_payload,
)
from repro.serving.service import DEFAULT_TIER, ModelLike, validate_tier
from repro.version import __version__

import socket


@dataclass
class DaemonConfig:
    """Tunables of one :class:`ServingDaemon`.

    ``max_wait_ms`` trades latency for batching efficiency: a larger window
    lets more concurrent requests coalesce into one vectorized predictor
    call (higher throughput), a smaller one bounds the queueing delay added
    to every request (lower p99).  ``max_batch_size`` caps how much work one
    flush may take regardless of the window.  See ``docs/daemon.md``.
    """

    host: str = "127.0.0.1"
    #: Port to bind; 0 asks the OS for an ephemeral port (see ``address``).
    port: int = 0
    #: Flush a shard's batch at this many requests even mid-window.
    max_batch_size: int = 32
    #: Flush a shard's batch once its oldest request has waited this long.
    max_wait_ms: float = 10.0
    #: Total queued requests across all shards; beyond it -> ``overloaded``.
    queue_limit: int = 256
    #: Hint returned with ``overloaded`` rejections.
    retry_after_ms: float = 50.0
    #: Deadline applied to requests that do not carry ``deadline_ms`` (None = no deadline).
    default_deadline_ms: Optional[float] = None
    #: How long :meth:`ServingDaemon.stop` waits for workers to drain.
    drain_timeout_s: float = 30.0
    #: Defaults a request may override per call.
    seed: int = 0
    compose: str = "replay"
    #: Tier answering requests that do not carry a ``tier`` field:
    #: ``accurate`` (the full model) or ``fast`` (the distilled student).
    tier: str = DEFAULT_TIER

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ServingError(f"max_batch_size must be positive, got {self.max_batch_size}")
        if self.max_wait_ms < 0:
            raise ServingError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.queue_limit <= 0:
            raise ServingError(f"queue_limit must be positive, got {self.queue_limit}")
        if self.compose not in COMPOSE_MODES:
            raise ServingError(
                f"unknown composition mode {self.compose!r}; expected one of {COMPOSE_MODES}"
            )
        self.tier = validate_tier(self.tier)


@dataclass
class DaemonStats:
    """Lifetime counters of one :class:`ServingDaemon` (guarded by its lock)."""

    connections: int = 0
    requests: int = 0
    queries: int = 0
    model_queries: int = 0
    tune_queries: int = 0
    health_checks: int = 0
    stats_requests: int = 0
    responses: int = 0
    batches: int = 0
    rejected_overloaded: int = 0
    shed_deadline: int = 0
    rejected_shutting_down: int = 0
    bad_requests: int = 0
    internal_errors: int = 0
    fast_tier_requests: int = 0
    accurate_tier_requests: int = 0


class _Fanout:
    """Collects the per-device answers of one fanned-out request.

    Used by ``predict-model`` (results sorted fastest-first) and ``tune``
    (results in completion order, each a :class:`ModelTuning` dict).
    """

    def __init__(
        self,
        daemon: "ServingDaemon",
        stream: MessageStream,
        request_id: Any,
        op: str,
        network: str,
        batch_size: int,
        expected: int,
        tier: str = DEFAULT_TIER,
    ):
        self._daemon = daemon
        self._stream = stream
        self._request_id = request_id
        self._op = op
        self._network = network
        self._batch_size = batch_size
        self._tier = tier
        self._lock = threading.Lock()
        self._remaining = expected  # guarded-by: _lock
        self._results: List[Any] = []  # guarded-by: _lock
        self._errors: Dict[str, Dict[str, str]] = {}  # guarded-by: _lock

    def add(self, result: Any) -> None:
        with self._lock:
            self._results.append(result)
            self._remaining -= 1
            # Build the response while still holding the lock: a sibling leg
            # finishing between the decrement and the read would otherwise
            # see a half-assembled result list.
            payload = self._payload() if self._remaining == 0 else None
        if payload is not None:
            self._daemon._send(self._stream, payload)

    def add_error(self, device: str, code: str, message: str) -> None:
        with self._lock:
            self._errors[device] = {"code": code, "message": message}
            self._remaining -= 1
            payload = self._payload() if self._remaining == 0 else None
        if payload is not None:
            self._daemon._send(self._stream, payload)

    # requires-lock: _lock
    def _result_fields(self) -> List[Dict[str, Any]]:
        if self._op == "tune":
            return [tuning.to_dict() for tuning in self._results]
        results = sorted(self._results, key=lambda p: p.predicted_latency_s)
        return [_prediction_fields(p) for p in results]

    # requires-lock: _lock
    def _payload(self) -> Dict[str, Any]:
        if not self._results:
            first = next(iter(self._errors.values()))
            return error_payload(
                first["code"], first["message"], self._request_id, devices=self._errors
            )
        return ok_payload(
            self._request_id,
            op=self._op,
            network=self._network,
            batch_size=self._batch_size,
            tier=self._tier,
            results=self._result_fields(),
            errors=self._errors,
        )


def _prediction_fields(prediction: FleetPrediction) -> Dict[str, Any]:
    return {
        "network": prediction.model,
        "device": prediction.device,
        "latency_s": prediction.predicted_latency_s,
        "serial_latency_s": prediction.serial_latency_s,
        "per_kernel_latency_s": dict(prediction.per_kernel_latency_s),
        "num_nodes": prediction.num_nodes,
        "num_unique_kernels": prediction.num_unique_kernels,
        "compose": prediction.compose,
    }


class _WorkItem:
    """One routed request (or one device leg of a fanout) awaiting a batch."""

    __slots__ = (
        "op",
        "request_id",
        "stream",
        "network",
        "device",
        "batch_size",
        "seed",
        "compose",
        "tier",
        "deadline",
        "enqueued_at",
        "collector",
        "params",
    )

    def __init__(
        self,
        op: str,
        request_id: Any,
        stream: MessageStream,
        network: str,
        device: str,
        batch_size: int,
        seed: Union[int, str, None],
        compose: str,
        deadline: Optional[float],
        collector: Optional[_Fanout] = None,
        params: Optional[Dict[str, Any]] = None,
        tier: str = DEFAULT_TIER,
    ):
        self.op = op
        self.request_id = request_id
        self.stream = stream
        self.network = network
        self.device = device
        self.batch_size = batch_size
        self.seed = seed
        self.compose = compose
        self.tier = tier
        self.deadline = deadline  # absolute time.monotonic() instant, or None
        self.enqueued_at = time.monotonic()
        self.collector = collector
        self.params = params  # op-specific extras (tune: search budget)


class _ShardWorker(threading.Thread):
    """One device's queue + batching loop, over its own FleetService."""

    def __init__(
        self,
        daemon: "ServingDaemon",
        spec: DeviceSpec,
        model: ModelLike,
        model_name: Optional[str] = None,
        fast_model: Optional[ModelLike] = None,
    ):
        super().__init__(name=f"cdmpp-shard-{spec.name}", daemon=True)
        self.daemon_ref = daemon
        self.spec = spec
        self.model_name = model_name
        self.fleet = FleetService(
            {spec.name: model},
            max_batch_size=max(512, daemon.config.max_batch_size * 64),
            gap_s=daemon.gap_s,
            fast_models={spec.name: fast_model} if fast_model is not None else None,
        )
        self._search: Optional["SearchService"] = None
        self._cond = threading.Condition()
        self._items: deque = deque()  # guarded-by: _cond
        self._stop_requested = False  # guarded-by: _cond
        self._drain = True  # guarded-by: _cond

    @property
    def search(self) -> "SearchService":
        """This shard's schedule-search tier (built on first ``tune``).

        With a registry attached to the daemon the search cache is the
        registry's persistent one, so tunings survive daemon restarts and a
        checkpoint re-save/delete evicts them; only the owning shard thread
        touches the service, so lazy construction is race-free.
        """
        if self._search is None:
            from repro.serving.search import SearchService

            names = {self.spec.name: self.model_name} if self.model_name else None
            self._search = SearchService(
                self.fleet, registry=self.daemon_ref.registry, model_names=names
            )
        return self._search

    @property
    def has_fast_tier(self) -> bool:
        """Whether this shard can answer ``tier="fast"`` requests."""
        return bool(self.fleet.fast_devices)

    # -- queue side (called from connection reader threads) -------------
    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._items)

    def enqueue(self, item: _WorkItem) -> None:
        with self._cond:
            self._items.append(item)
            self._cond.notify_all()

    def request_stop(self, drain: bool = True) -> None:
        with self._cond:
            self._stop_requested = True
            self._drain = drain
            self._cond.notify_all()

    # -- batching loop ---------------------------------------------------
    #: How far *before* the nearest deadline the batch window closes.  A
    #: window that closed exactly at the deadline would always wake past it
    #: by scheduling jitter and shed the very request it tried to rescue.
    _DEADLINE_FLUSH_LEAD_S = 0.005

    # requires-lock: _cond
    def _window_remaining(self) -> float:
        """Seconds until this shard must flush (<= 0 = flush now).

        The window closes at ``oldest arrival + max_wait_ms`` — or earlier,
        shortly before the nearest request deadline: a request that cannot
        afford the full window jumps the queue instead of expiring inside
        it.
        """
        now = time.monotonic()
        oldest = min(item.enqueued_at for item in self._items)
        flush_at = oldest + self.daemon_ref.config.max_wait_ms / 1000.0
        deadlines = [item.deadline for item in self._items if item.deadline is not None]
        if deadlines:
            flush_at = min(flush_at, min(deadlines) - self._DEADLINE_FLUSH_LEAD_S)
        return flush_at - now

    # requires-lock: _cond
    def _take_batch(self) -> Tuple[List[_WorkItem], List[_WorkItem]]:
        """Split the queue into (batch to serve, expired items to shed).

        Deadline-bearing items sort first (earliest deadline first), so a
        request about to expire is served ahead of patient FIFO traffic.
        """
        items = sorted(
            self._items,
            key=lambda i: (i.deadline is None, i.deadline or 0.0, i.enqueued_at),
        )
        now = time.monotonic()
        shed = [i for i in items if i.deadline is not None and i.deadline <= now]
        expired = set(map(id, shed))
        alive = [i for i in items if id(i) not in expired]
        batch = alive[: self.daemon_ref.config.max_batch_size]
        self._items = deque(alive[self.daemon_ref.config.max_batch_size :])
        return batch, shed

    def run(self) -> None:
        while True:
            with self._cond:
                while not self._items and not self._stop_requested:
                    self._cond.wait()
                if not self._items and self._stop_requested:
                    return  # stopped and fully drained
                if not self._stop_requested:
                    # Batching window: wait for more work until the batch
                    # is full, the window closes, or a deadline presses.
                    while (
                        len(self._items) < self.daemon_ref.config.max_batch_size
                        and not self._stop_requested
                    ):
                        timeout = self._window_remaining()
                        if timeout <= 0:
                            break
                        self._cond.wait(timeout)
                # Re-check after the window wait: a no-drain stop must fail
                # queued work even if it arrived mid-window.
                if self._stop_requested and not self._drain:
                    leftovers, self._items = list(self._items), deque()
                else:
                    batch, shed = self._take_batch()
                    leftovers = None
            if leftovers is not None:
                for item in leftovers:
                    self.daemon_ref._fail_item(
                        item, E_SHUTTING_DOWN, "daemon is shutting down", counted="shutdown"
                    )
                return
            for item in shed:
                self.daemon_ref._fail_item(
                    item,
                    E_DEADLINE,
                    f"deadline expired after {1e3 * (time.monotonic() - item.enqueued_at):.1f}ms in queue",
                    counted="deadline",
                )
            if batch:
                self._process(batch)

    def _process(self, batch: List[_WorkItem]) -> None:
        # Tune requests run one at a time (each is a whole search, already
        # internally batched — one vectorized predict per search round);
        # query/predict-model items batch as before.
        tune_items = [item for item in batch if item.op == "tune"]
        batch = [item for item in batch if item.op != "tune"]
        for item in tune_items:
            try:
                tuning = self.search.tune_model(
                    item.network,
                    devices=[self.spec],
                    batch_size=item.batch_size,
                    seed=item.seed,
                    **(item.params or {}),
                )[0]
            except ReproError as error:
                self.daemon_ref._fail_item(item, E_INTERNAL, str(error), counted="internal")
                continue
            self.daemon_ref._complete_tune(item, tuning)

        # One predict_model_batch per (seed, compose, tier) group: all kernel
        # queries of the group are answered by a single batched flush.
        groups: Dict[tuple, List[_WorkItem]] = {}
        for item in batch:
            groups.setdefault((repr(item.seed), item.compose, item.tier), []).append(item)
        for items in groups.values():
            try:
                predictions = self.fleet.predict_model_batch(
                    [(item.network, self.spec, item.batch_size) for item in items],
                    seed=items[0].seed,
                    compose=items[0].compose,
                    tier=items[0].tier,
                )
            except ReproError as error:
                for item in items:
                    self.daemon_ref._fail_item(item, E_INTERNAL, str(error), counted="internal")
                continue
            self.daemon_ref._count_batch()
            for item, prediction in zip(items, predictions):
                self.daemon_ref._complete_item(item, prediction)


class ServingDaemon:
    """A long-running TCP daemon serving latency queries for a device fleet.

    ``models`` maps device names to fitted cost models (any backend the
    serving tier accepts); alternatively pass one model plus ``devices`` to
    serve the same cross-device model everywhere.  Each device gets its own
    shard worker and single-device :class:`FleetService`, so distinct models
    predict concurrently while every shard keeps the full batch-and-cache
    serving semantics.

    Lifecycle::

        daemon = ServingDaemon({"t4": model}, DaemonConfig(port=0))
        daemon.start()                  # binds, spawns workers + acceptor
        host, port = daemon.address     # ephemeral port resolved here
        ...
        daemon.stop()                   # drain: answer queued work, then close

    ``serve_forever()`` blocks until :meth:`request_shutdown` (which the
    SIGTERM/SIGINT handlers installed by :meth:`install_signal_handlers`
    call), then drains and returns — the CLI's ``cdmpp daemon`` loop.
    """

    def __init__(
        self,
        models: Union[ModelLike, Mapping[str, ModelLike]],
        config: Optional[DaemonConfig] = None,
        devices: Optional[Sequence[str]] = None,
        gap_s: float = 2e-6,
        registry=None,
        model_names: Optional[Mapping[str, str]] = None,
        fast_models: Optional[Mapping[str, ModelLike]] = None,
    ):
        self.config = config or DaemonConfig()
        self.gap_s = float(gap_s)
        # Attach a ModelRegistry to persist tune-op search results in its
        # search cache (from_registry wires this up automatically).
        self.registry = registry
        model_names = dict(model_names or {})
        if not isinstance(models, Mapping):
            if not devices:
                raise ServingError(
                    "a single model needs devices=: ServingDaemon(model, devices=['t4', ...])"
                )
            models = {get_device(name).name: models for name in devices}
        elif devices is not None:
            raise ServingError("pass either a {device: model} mapping or devices=, not both")
        if not models:
            raise ServingError("ServingDaemon needs at least one device")
        # Optional per-device distilled students backing the fast tier;
        # devices without one refuse tier="fast" requests.
        fast_models = {
            get_device(name).name: model for name, model in (fast_models or {}).items()
        }
        for name in fast_models:
            if name not in {get_device(d).name for d in models}:
                raise ServingError(
                    f"fast model given for device {name!r}, which this daemon does not serve"
                )
        self._shards: Dict[str, _ShardWorker] = {}
        for name, model in models.items():
            spec = get_device(name)
            self._shards[spec.name] = _ShardWorker(
                self,
                spec,
                model,
                model_name=model_names.get(spec.name),
                fast_model=fast_models.get(spec.name),
            )
        self._stats_lock = threading.Lock()
        self.stats = DaemonStats()  # guarded-by: _stats_lock
        self._admission_lock = threading.Lock()
        self._streams_lock = threading.Lock()
        self._streams: "set[MessageStream]" = set()  # guarded-by: _streams_lock
        self._lifecycle_lock = threading.Lock()
        self._listener: Optional[socket.socket] = None  # guarded-by: _lifecycle_lock
        self._accept_thread: Optional[threading.Thread] = None  # guarded-by: _lifecycle_lock
        self._started_at: Optional[float] = None  # guarded-by: _lifecycle_lock
        # Lifecycle flags are Events, not booleans: the accept loop, dispatch
        # path and health checks read them without taking _lifecycle_lock.
        self._accepting = threading.Event()
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_event = threading.Event()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_registry(
        cls,
        registry,
        names: Union[str, Mapping[str, str]],
        devices: Optional[Sequence[str]] = None,
        config: Optional[DaemonConfig] = None,
        fast_names: Optional[Mapping[str, str]] = None,
        **kwargs,
    ) -> "ServingDaemon":
        """Build a daemon from registry checkpoints (mirrors FleetService).

        ``names`` is a ``{device: checkpoint}`` mapping, or one checkpoint
        name combined with ``devices``; same-checkpoint devices share one
        in-memory model via ``ModelRegistry.load_shared``.  ``fast_names``
        optionally maps devices to distilled checkpoints backing the fast
        tier.
        """
        load = getattr(registry, "load_shared", registry.load)
        if fast_names:
            kwargs["fast_models"] = {
                get_device(device).name: load(name) for device, name in fast_names.items()
            }
        if isinstance(names, Mapping):
            if devices is not None:
                raise ServingError("pass either a {device: name} mapping or devices=, not both")
            model_names = {get_device(d).name: name for d, name in names.items()}
            return cls(
                {device: load(name) for device, name in names.items()},
                config,
                registry=registry,
                model_names=model_names,
                **kwargs,
            )
        if not devices:
            raise ServingError("one checkpoint name needs devices= to know what to serve")
        model = load(names)
        return cls(
            {get_device(d).name: model for d in devices},
            config,
            registry=registry,
            model_names={get_device(d).name: names for d in devices},
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingDaemon":
        """Bind the socket, start shard workers and the accept loop."""
        with self._lifecycle_lock:
            if self._started.is_set():
                raise ServingError("daemon already started")
            self._listener = socket.create_server(
                (self.config.host, self.config.port), backlog=128
            )
            self._accepting.set()
            self._started.set()
            self._started_at = time.monotonic()
            for worker in self._shards.values():
                worker.start()
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="cdmpp-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); the OS-assigned port when port=0 was asked."""
        with self._lifecycle_lock:
            listener = self._listener
        if listener is None:
            raise ServingError("daemon not started")
        return listener.getsockname()[:2]

    @property
    def running(self) -> bool:
        """Whether the daemon is accepting new work."""
        return (
            self._started.is_set()
            and self._accepting.is_set()
            and not self._stopped.is_set()
        )

    @property
    def pending(self) -> int:
        """Requests currently queued across every shard."""
        return sum(worker.pending for worker in self._shards.values())

    @property
    def devices(self) -> List[str]:
        """Sorted device names this daemon serves."""
        return sorted(self._shards)

    @property
    def fast_devices(self) -> List[str]:
        """Sorted device names with a fast-tier (distilled) model."""
        return sorted(name for name, shard in self._shards.items() if shard.has_fast_tier)

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain (main thread only)."""
        signal.signal(signal.SIGTERM, self._on_signal)
        signal.signal(signal.SIGINT, self._on_signal)

    def _on_signal(self, signum, frame) -> None:  # pragma: no cover - exercised via CLI test
        self.request_shutdown()

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_forever` to drain and stop (signal-handler safe)."""
        self._shutdown_event.set()

    def serve_forever(self) -> None:
        """Block until :meth:`request_shutdown`, then drain and stop."""
        self._shutdown_event.wait()
        self.stop(drain=True)

    def stop(self, drain: bool = True) -> None:
        """Stop the daemon.

        With ``drain=True`` (the SIGTERM path) admission stops first, every
        already-queued request is answered, and only then are connections
        closed.  With ``drain=False`` queued requests are failed with
        ``shutting_down``.  Idempotent.
        """
        with self._lifecycle_lock:
            if not self._started.is_set() or self._stopped.is_set():
                return
            self._accepting.clear()
            if self._listener is not None:
                try:
                    self._listener.close()
                except OSError:
                    pass
            for worker in self._shards.values():
                worker.request_stop(drain=drain)
            deadline = time.monotonic() + self.config.drain_timeout_s
            for worker in self._shards.values():
                worker.join(timeout=max(0.0, deadline - time.monotonic()))
            if self._accept_thread is not None:
                self._accept_thread.join(timeout=1.0)
            with self._streams_lock:
                streams = list(self._streams)
                self._streams.clear()
            for stream in streams:
                stream.close()
            self._stopped.set()
            self._shutdown_event.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        with self._lifecycle_lock:
            listener = self._listener
        while self._accepting.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:
                break  # listener closed by stop()
            stream = MessageStream(conn)
            with self._streams_lock:
                self._streams.add(stream)
            with self._stats_lock:
                self.stats.connections += 1
            threading.Thread(
                target=self._client_loop, args=(stream,), name="cdmpp-conn", daemon=True
            ).start()

    def _client_loop(self, stream: MessageStream) -> None:
        try:
            while True:
                try:
                    message = stream.recv()
                except ProtocolError as error:
                    with self._stats_lock:
                        self.stats.bad_requests += 1
                    stream.send(error_payload(E_BAD_REQUEST, str(error)))
                    return
                if message is None:
                    return
                self._dispatch(message, stream)
        finally:
            with self._streams_lock:
                self._streams.discard(stream)
            stream.close()

    def _send(self, stream: MessageStream, payload: Dict[str, Any]) -> None:
        if stream.send(payload):
            with self._stats_lock:
                self.stats.responses += 1

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, message: Dict[str, Any], stream: MessageStream) -> None:
        request_id = message.get("id")
        with self._stats_lock:
            self.stats.requests += 1
        op = message.get("op")
        if op not in OPS:
            with self._stats_lock:
                self.stats.bad_requests += 1
            self._send(
                stream,
                error_payload(
                    E_BAD_REQUEST, f"unknown op {op!r}; expected one of {OPS}", request_id
                ),
            )
            return
        if op == "health":
            with self._stats_lock:
                self.stats.health_checks += 1
            self._send(stream, self._health_payload(request_id))
            return
        if op == "stats":
            with self._stats_lock:
                self.stats.stats_requests += 1
            self._send(stream, self._stats_payload(request_id))
            return
        if not self._accepting.is_set():
            with self._stats_lock:
                self.stats.rejected_shutting_down += 1
            self._send(
                stream,
                error_payload(E_SHUTTING_DOWN, "daemon is shutting down", request_id),
            )
            return
        try:
            network, batch_size, seed, compose, tier, deadline = self._parse_query_common(
                message
            )
            params = self._parse_tune_params(message) if op == "tune" else None
            if op == "tune" and tier != "accurate":
                raise ServingError(
                    "tune requests are accurate-tier only (a search guided by the "
                    "distilled student would tune toward its approximation error)"
                )
            if op == "query":
                specs = [self._served_device(message.get("device"))]
            else:
                requested = message.get("devices")
                if requested is None:
                    specs = [self._shards[name].spec for name in self.devices]
                elif not isinstance(requested, (list, tuple)) or not requested:
                    raise ServingError("'devices' must be a non-empty list of device names")
                else:
                    specs, seen = [], set()
                    for name in requested:
                        spec = self._served_device(name)
                        if spec.name not in seen:
                            seen.add(spec.name)
                            specs.append(spec)
            if tier == "fast":
                unservable = [s.name for s in specs if not self._shards[s.name].has_fast_tier]
                if unservable:
                    raise ServingError(
                        f"no fast-tier model for device(s) {', '.join(unservable)} "
                        f"(fast devices: {', '.join(self.fast_devices) or 'none'}); "
                        "start the daemon with distilled checkpoints or query "
                        "tier='accurate'"
                    )
        except (ReproError, KeyError, TypeError, ValueError) as error:
            with self._stats_lock:
                self.stats.bad_requests += 1
            self._send(stream, error_payload(E_BAD_REQUEST, str(error), request_id))
            return

        # Admission control: the whole fanout is admitted or rejected as one.
        with self._admission_lock:
            if self.pending + len(specs) > self.config.queue_limit:
                admitted = False
            else:
                admitted = True
                collector = (
                    _Fanout(
                        self, stream, request_id, op, network, batch_size, len(specs), tier
                    )
                    if op in ("predict-model", "tune")
                    else None
                )
                for spec in specs:
                    item = _WorkItem(
                        op,
                        request_id,
                        stream,
                        network,
                        spec.name,
                        batch_size,
                        seed,
                        compose,
                        deadline,
                        collector,
                        params=params,
                        tier=tier,
                    )
                    self._shards[spec.name].enqueue(item)
        if not admitted:
            with self._stats_lock:
                self.stats.rejected_overloaded += 1
            self._send(
                stream,
                error_payload(
                    E_OVERLOADED,
                    f"daemon is saturated ({self.config.queue_limit} requests queued)",
                    request_id,
                    retry_after_ms=self.config.retry_after_ms,
                ),
            )
            return
        with self._stats_lock:
            if op == "query":
                self.stats.queries += 1
            elif op == "tune":
                self.stats.tune_queries += 1
            else:
                self.stats.model_queries += 1
            if tier == "fast":
                self.stats.fast_tier_requests += 1
            else:
                self.stats.accurate_tier_requests += 1

    def _parse_query_common(self, message: Dict[str, Any]):
        network = resolve_model_name(str(message["network"]))
        batch_size = int(message.get("batch_size", 1))
        if batch_size <= 0:
            raise ServingError(f"batch_size must be positive, got {batch_size}")
        seed = message.get("seed", self.config.seed)
        compose = message.get("compose", self.config.compose)
        if compose not in COMPOSE_MODES:
            raise ServingError(
                f"unknown composition mode {compose!r}; expected one of {COMPOSE_MODES}"
            )
        tier = validate_tier(message.get("tier", self.config.tier))
        deadline_ms = message.get("deadline_ms", self.config.default_deadline_ms)
        deadline = None
        if deadline_ms is not None:
            deadline = time.monotonic() + float(deadline_ms) / 1000.0
        return network, batch_size, seed, compose, tier, deadline

    def _parse_tune_params(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Search-budget fields of a ``tune`` request (omitted = defaults)."""
        from repro.serving import search as search_mod

        params = {
            "num_rounds": int(message.get("rounds", search_mod.DEFAULT_NUM_ROUNDS)),
            "population": int(message.get("population", search_mod.DEFAULT_POPULATION)),
            "measurements_per_round": int(
                message.get(
                    "measurements_per_round", search_mod.DEFAULT_MEASUREMENTS_PER_ROUND
                )
            ),
        }
        for field_name, value in params.items():
            if value <= 0:
                raise ServingError(f"{field_name} must be positive, got {value}")
        return params

    def _served_device(self, name: Any) -> DeviceSpec:
        if not name:
            raise ServingError(
                f"request needs a 'device'; this daemon serves: {', '.join(self.devices)}"
            )
        spec = get_device(str(name))
        if spec.name not in self._shards:
            raise ServingError(
                f"device {spec.name!r} is not served by this daemon "
                f"(devices: {', '.join(self.devices)})"
            )
        return spec

    # ------------------------------------------------------------------
    # Worker callbacks
    # ------------------------------------------------------------------
    def _complete_item(self, item: _WorkItem, prediction: FleetPrediction) -> None:
        if item.collector is not None:
            item.collector.add(prediction)
            return
        self._send(
            item.stream,
            ok_payload(
                item.request_id,
                op="query",
                batch_size=item.batch_size,
                tier=item.tier,
                **_prediction_fields(prediction),
            ),
        )

    def _complete_tune(self, item: _WorkItem, tuning) -> None:
        if item.collector is not None:
            item.collector.add(tuning)
            return
        self._send(
            item.stream,
            ok_payload(
                item.request_id,
                op="tune",
                network=item.network,
                batch_size=item.batch_size,
                results=[tuning.to_dict()],
                errors={},
            ),
        )

    def _fail_item(self, item: _WorkItem, code: str, message: str, counted: str) -> None:
        with self._stats_lock:
            if counted == "deadline":
                self.stats.shed_deadline += 1
            elif counted == "shutdown":
                self.stats.rejected_shutting_down += 1
            elif counted == "internal":
                self.stats.internal_errors += 1
        if item.collector is not None:
            item.collector.add_error(item.device, code, message)
            return
        self._send(item.stream, error_payload(code, message, item.request_id))

    def _count_batch(self) -> None:
        with self._stats_lock:
            self.stats.batches += 1

    # ------------------------------------------------------------------
    # Introspection payloads
    # ------------------------------------------------------------------
    def _uptime_s(self) -> float:
        with self._lifecycle_lock:
            started_at = self._started_at
        return (time.monotonic() - started_at) if started_at else 0.0

    def _health_payload(self, request_id: Any) -> Dict[str, Any]:
        return ok_payload(
            request_id,
            op="health",
            status="serving" if self._accepting.is_set() else "draining",
            protocol=PROTOCOL_VERSION,
            version=__version__,
            devices=self.devices,
            fast_devices=self.fast_devices,
            pending=self.pending,
            uptime_s=self._uptime_s(),
        )

    def _stats_payload(self, request_id: Any) -> Dict[str, Any]:
        with self._stats_lock:
            daemon = {
                "connections": self.stats.connections,
                "requests": self.stats.requests,
                "queries": self.stats.queries,
                "model_queries": self.stats.model_queries,
                "tune_queries": self.stats.tune_queries,
                "health_checks": self.stats.health_checks,
                "stats_requests": self.stats.stats_requests,
                "responses": self.stats.responses,
                "batches": self.stats.batches,
                "rejected_overloaded": self.stats.rejected_overloaded,
                "shed_deadline": self.stats.shed_deadline,
                "rejected_shutting_down": self.stats.rejected_shutting_down,
                "bad_requests": self.stats.bad_requests,
                "internal_errors": self.stats.internal_errors,
                "fast_tier_requests": self.stats.fast_tier_requests,
                "accurate_tier_requests": self.stats.accurate_tier_requests,
            }
        daemon["pending"] = self.pending
        daemon["uptime_s"] = self._uptime_s()
        shards = {}
        for name, worker in self._shards.items():
            shard_stats = worker.fleet.describe_stats()
            if worker._search is not None:
                shard_stats["search"] = worker._search.describe_stats()
            shards[name] = shard_stats
        return ok_payload(request_id, op="stats", daemon=daemon, shards=shards)

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServingDaemon":
        return self.start() if not self._started.is_set() else self

    def __exit__(self, *exc_info) -> None:
        self.stop(drain=True)

    def __repr__(self) -> str:
        stopped = self._stopped.is_set()
        state = "running" if self.running else ("stopped" if stopped else "new")
        addr = ""
        if self._started.is_set() and not stopped:
            try:
                host, port = self.address
                addr = f", address={host}:{port}"
            except (ServingError, OSError):
                pass
        return f"ServingDaemon(devices={self.devices}, state={state}{addr})"
