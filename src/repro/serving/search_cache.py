"""Persistent cache of schedule-search results, keyed by model signature.

Schedule search is the most expensive thing the serving stack does: one
:func:`repro.search.evolutionary_search` run scores hundreds of candidate
programs and measures dozens.  Its outcome only depends on (task, device,
cost model, search parameters), so the fleet tier caches results per
``(task_key, device, CostModel.cache_signature, params)`` and persists them
next to the checkpoints in the :class:`~repro.serving.registry.ModelRegistry`
(``<registry root>/search/*.json``) — a tuning survives process restarts.

``cache_signature`` alone cannot distinguish two *fitted states* of the same
architecture (a fine-tuned clone reports the same ``("cdmpp", max_leaves)``
as its parent), so entries are additionally tagged with the registry name
they were tuned against and the cache supports *active* invalidation:

- :meth:`invalidate_device` — a ``swap_model`` / ``onboard_device`` replaced
  what answers that device's queries; every tuning for the device is stale.
- :meth:`invalidate_model` — a checkpoint was re-registered or deleted;
  every tuning tagged with that registry name is stale, on any device.

Entries are JSON files written atomically (temp file + ``os.replace``), so a
concurrent reader never observes a torn entry.  Floats round-trip through
JSON bit-identically, which is what makes "cached re-tune returns the exact
same ``SearchResult``" an assertable contract rather than an approximation.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.devices.spec import DeviceSpec
from repro.search.ansor import SearchResult
from repro.utils.rng import stable_hash

PathLike = Union[str, Path]


def _device_name(device: Union[str, DeviceSpec]) -> str:
    return device.name if isinstance(device, DeviceSpec) else str(device)


def _signature_repr(signature: Sequence) -> str:
    return repr(tuple(signature))


def _params_repr(params: Dict) -> str:
    return repr(tuple(sorted((str(k), repr(v)) for k, v in params.items())))


@dataclass
class SearchCacheStats:
    """Counters for cache effectiveness and invalidation behaviour."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }


class SearchCache:
    """Thread-safe (task, device, signature, params) -> SearchResult cache.

    With a ``root`` directory the cache is disk-backed and shared across
    processes; without one it is purely in-memory (handy for tests and
    ad-hoc :class:`~repro.serving.search.SearchService` instances).
    """

    def __init__(self, root: Optional[PathLike] = None):
        self.root = Path(root) if root is not None else None
        self._lock = threading.RLock()
        # key -> entry payload (the same dict shape that lands on disk).
        self._entries: Dict[str, Dict] = {}  # guarded-by: _lock
        self._stats = SearchCacheStats()  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    @staticmethod
    def entry_key(
        task_key: str,
        device: Union[str, DeviceSpec],
        signature: Sequence,
        params: Dict,
    ) -> str:
        """Stable string key for one cached tuning."""
        return format(
            stable_hash(
                "search-cache",
                task_key,
                _device_name(device),
                _signature_repr(signature),
                _params_repr(params),
            ),
            "016x",
        )

    def _path_for(self, key: str) -> Optional[Path]:
        if self.root is None:
            return None
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    # Get / put
    # ------------------------------------------------------------------
    def get(
        self,
        task_key: str,
        device: Union[str, DeviceSpec],
        signature: Sequence,
        params: Dict,
    ) -> Optional[SearchResult]:
        """The cached result for this exact tuning, or ``None``."""
        key = self.entry_key(task_key, device, signature, params)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._read_disk(key)
                if entry is not None:
                    self._entries[key] = entry
            if entry is None:
                self._stats.misses += 1
                return None
            self._stats.hits += 1
            return SearchResult.from_dict(entry["result"])

    def put(
        self,
        task_key: str,
        device: Union[str, DeviceSpec],
        signature: Sequence,
        params: Dict,
        result: SearchResult,
        model_name: Optional[str] = None,
    ) -> None:
        """Record a finished tuning (overwrites any previous entry)."""
        key = self.entry_key(task_key, device, signature, params)
        entry = {
            "task_key": task_key,
            "device": _device_name(device),
            "signature": _signature_repr(signature),
            "params": _params_repr(params),
            "model_name": model_name,
            "result": result.to_dict(),
        }
        with self._lock:
            self._entries[key] = entry
            self._write_disk(key, entry)
            self._stats.puts += 1

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_device(self, device: Union[str, DeviceSpec]) -> int:
        """Drop every tuning for ``device``; returns how many were evicted."""
        name = _device_name(device)
        return self._evict(lambda entry: entry.get("device") == name)

    def invalidate_model(self, model_name: str) -> int:
        """Drop every tuning tagged with registry name ``model_name``."""
        return self._evict(lambda entry: entry.get("model_name") == model_name)

    def clear(self) -> int:
        """Drop everything; returns how many entries were evicted."""
        return self._evict(lambda entry: True)

    def _evict(self, predicate) -> int:
        with self._lock:
            self._load_all_disk()
            doomed = [key for key, entry in self._entries.items() if predicate(entry)]
            for key in doomed:
                del self._entries[key]
                path = self._path_for(key)
                if path is not None and path.exists():
                    path.unlink()
            self._stats.evictions += len(doomed)
            return len(doomed)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            self._load_all_disk()
            return len(self._entries)

    def entries(self) -> List[Dict]:
        """Snapshot of all entry payloads (without the serialized results)."""
        with self._lock:
            self._load_all_disk()
            return [
                {k: v for k, v in entry.items() if k != "result"}
                for entry in self._entries.values()
            ]

    def describe_stats(self) -> Dict[str, int]:
        with self._lock:
            return self._stats.as_dict()

    # ------------------------------------------------------------------
    # Disk backing
    # ------------------------------------------------------------------
    def _read_disk(self, key: str) -> Optional[Dict]:
        path = self._path_for(key)
        if path is None or not path.exists():
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def _write_disk(self, key: str, entry: Dict) -> None:
        path = self._path_for(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # requires-lock: _lock
    def _load_all_disk(self) -> None:
        """Pull any entries written by other processes into memory."""
        if self.root is None or not self.root.is_dir():
            return
        for path in self.root.glob("*.json"):
            key = path.stem
            if key in self._entries:
                continue
            entry = self._read_disk(key)
            if entry is not None:
                self._entries[key] = entry

    def __repr__(self) -> str:
        root = str(self.root) if self.root is not None else None
        return f"SearchCache(root={root!r}, entries={len(self)})"
