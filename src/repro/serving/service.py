"""Micro-batched, cached latency-prediction serving for any backend.

The one-shot :class:`repro.core.api.CDMPP` facade featurizes and runs the
predictor from scratch on every call.  A :class:`PredictionService` turns a
set of trained cost models — **any** :class:`repro.backends.CostModel`
backend: CDMPP, XGBoost, TLP, Habitat, Tiramisu — into a long-lived service
in the "train once, query many" regime the paper targets (and that TLP-style
tuners exercise when they score thousands of candidate schedules per round):

* **micro-batching** — queries are enqueued with :meth:`submit` and executed
  by :meth:`flush` as one vectorized backend call per model, so per-query
  Python and predictor overhead is amortized across the batch;
* **feature cache** — backends that expose the ``featurize_rows`` /
  ``predict_rows`` fast path (the CDMPP transformer, whose featurization
  dominates per-query cost) get their per-(program, device) feature rows
  cached in an LRU, so repeats skip featurization; other backends featurize
  internally and skip this tier;
* **prediction cache** — final latencies are kept in a second LRU keyed per
  backend feature space (``CostModel.cache_signature``), so exact repeats
  skip the predictor entirely and different backends never alias;
* **model registry integration** — services are built straight from
  :class:`repro.serving.registry.ModelRegistry` checkpoints (whatever
  backend wrote them), never retraining in the serving process.

The service is synchronous but **thread-safe**: ``submit``, ``flush``,
``swap_model`` and the stats counters are serialized by one reentrant lock,
so multiple threads (the shard workers of
:class:`repro.serving.daemon.ServingDaemon`, or any concurrent callers)
can share one service without losing queue entries or tearing counters.
Async front-ends wrap it without changing the batching core.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.backends import CostModel, as_cost_model, ensure_model_level
from repro.core.api import CDMPP, EndToEndPrediction
from repro.core.trainer import Trainer
from repro.devices.spec import DeviceSpec
from repro.errors import ServingError, TrainingError
from repro.serving.cache import CacheKey, LRUCache, program_cache_key
from repro.tir.program import TensorProgram

ModelLike = Union[CDMPP, Trainer, CostModel, object]

DEFAULT_DEVICE = "*"

#: Serving tiers: ``accurate`` answers from the full model, ``fast`` from a
#: distilled student registered alongside it.  The tier is part of every
#: prediction-cache key, so a fast answer can never alias an accurate one.
TIERS = ("fast", "accurate")
DEFAULT_TIER = "accurate"


def validate_tier(tier: str) -> str:
    """Normalise and validate a tier name."""
    name = str(tier).strip().lower()
    if name not in TIERS:
        raise ServingError(f"unknown tier {tier!r} (tiers: {', '.join(TIERS)})")
    return name


def _as_serving_model(model: ModelLike) -> CostModel:
    """Adapt ``model`` onto the CostModel protocol, requiring it to be fitted."""
    try:
        cost_model = as_cost_model(model)
    except TrainingError as error:
        raise ServingError(str(error)) from error
    if not cost_model.fitted:
        raise ServingError(
            f"PredictionService needs a fitted model, got an unfitted "
            f"{cost_model.backend!r} backend (train it first)"
        )
    return cost_model


class PendingPrediction:
    """A ticket for one submitted query; resolved by the next flush."""

    __slots__ = ("key", "device", "_service", "_value")

    def __init__(self, service: "PredictionService", key: CacheKey, device: str):
        self._service = service
        self.key = key
        self.device = device
        self._value: Optional[float] = None

    @property
    def done(self) -> bool:
        """Whether the prediction has been computed."""
        return self._value is not None

    def result(self) -> float:
        """The predicted latency in seconds, flushing the service if needed."""
        if self._value is None:
            self._service.flush()
        if self._value is None:  # pragma: no cover - flush always resolves
            raise ServingError("pending prediction was not resolved by flush()")
        return self._value

    def _resolve(self, value: float) -> None:
        self._value = float(value)


@dataclass
class _QueueEntry:
    """One distinct queued query with every ticket coalesced onto it."""

    program: TensorProgram
    device: str
    model_id: int
    tier: str = DEFAULT_TIER
    tickets: List[PendingPrediction] = field(default_factory=list)


@dataclass
class ServingStats:
    """Lifetime counters of one :class:`PredictionService`."""

    queries: int = 0
    coalesced: int = 0
    flushes: int = 0
    batches: int = 0
    programs_featurized: int = 0
    predictions_computed: int = 0
    fast_tier_queries: int = 0
    accurate_tier_queries: int = 0


class PredictionService:
    """Serve latency queries from trained cost models with batching + caching.

    ``models`` is either a single fitted model (CDMPP is device-agnostic, so
    one cross-device model can serve every device) or a mapping from device
    name to a per-device model; the entry under ``"*"`` acts as the fallback
    for unlisted devices.  Every model is adapted onto the
    :class:`repro.backends.CostModel` protocol, so different devices may be
    served by entirely different backends (one device on CDMPP, another on
    XGBoost) behind the same batching and caching contracts.
    """

    def __init__(
        self,
        models: Union[ModelLike, Mapping[str, ModelLike]],
        feature_cache_size: int = 4096,
        prediction_cache_size: int = 16384,
        max_batch_size: int = 256,
        predict_chunk_size: Optional[int] = 1024,
        feature_cache: Optional[LRUCache] = None,
        prediction_cache=None,
        fast_models: Optional[Union[ModelLike, Mapping[str, ModelLike]]] = None,
    ):
        self._models = self._adapt_models(models)  # guarded-by: _lock
        # The fast tier is optional per device; queries with tier="fast" are
        # refused (not silently downgraded) for devices without an entry.
        self._fast_models: Dict[str, CostModel] = (  # guarded-by: _lock
            self._adapt_models(fast_models) if fast_models is not None else {}
        )
        if max_batch_size <= 0:
            raise ServingError(f"max_batch_size must be positive, got {max_batch_size}")
        self.max_batch_size = int(max_batch_size)
        self.predict_chunk_size = predict_chunk_size
        # Caches may be injected (any object with the LRUCache get/put/stats
        # surface) so several services — or a fleet — can share featurization
        # work, or shard predictions per device (DeviceShardedCache).
        self.feature_cache = feature_cache if feature_cache is not None else LRUCache(feature_cache_size)
        self.prediction_cache = (
            prediction_cache if prediction_cache is not None else LRUCache(prediction_cache_size)
        )
        # One reentrant lock serializes the queue, the model table and the
        # stats counters.  flush() holds it across the predictor call too:
        # cheaper-but-racier schemes (detach the queue, predict unlocked)
        # would let swap_model() retire a model while a detached flush is
        # still writing its stale predictions into the cache.
        self._lock = threading.RLock()
        self.stats = ServingStats()  # guarded-by: _lock
        # Called with the device name after every swap_model; lets higher
        # tiers (the search-result cache) invalidate state derived from the
        # replaced model even when its cache_signature is unchanged.
        self._swap_listeners: List = []  # guarded-by: _lock
        self._queue: "OrderedDict[CacheKey, _QueueEntry]" = OrderedDict()  # guarded-by: _lock

    @staticmethod
    def _adapt_models(
        models: Union[ModelLike, Mapping[str, ModelLike]]
    ) -> Dict[str, CostModel]:
        """Adapt a model-or-mapping argument onto per-device CostModels."""
        if isinstance(models, Mapping):
            if not models:
                raise ServingError("PredictionService needs at least one model")
            # Devices handing in the same model object share one adapter, so
            # their queries land in one batch group at flush time.
            adapters: Dict[int, CostModel] = {}
            return {
                name: adapters.setdefault(id(model), _as_serving_model(model))
                for name, model in models.items()
            }
        return {DEFAULT_DEVICE: _as_serving_model(models)}

    # ------------------------------------------------------------------
    # Model management
    # ------------------------------------------------------------------
    @classmethod
    def from_registry(
        cls,
        registry,
        names: Union[str, Mapping[str, str]],
        **kwargs,
    ) -> "PredictionService":
        """Build a service from registry checkpoints (any backend).

        ``names`` is either one checkpoint name (shared cross-device model)
        or a mapping from device name to checkpoint name.
        """
        if isinstance(names, Mapping):
            return cls({device: registry.load(name) for device, name in names.items()}, **kwargs)
        return cls(registry.load(names), **kwargs)

    @property
    def devices(self) -> List[str]:
        """Sorted device names with a dedicated model (``"*"`` = fallback)."""
        with self._lock:
            return sorted(self._models)

    @property
    def fast_devices(self) -> List[str]:
        """Sorted device names with a registered fast-tier model."""
        with self._lock:
            return sorted(self._fast_models)

    def model_for(
        self, device: Union[str, DeviceSpec], tier: str = DEFAULT_TIER
    ) -> CostModel:
        """The model that serves ``device`` on ``tier`` (exact entry, else fallback)."""
        name = device if isinstance(device, str) else device.name
        tier = validate_tier(tier)
        with self._lock:
            table = self._fast_models if tier == "fast" else self._models
            model = table.get(name) or table.get(DEFAULT_DEVICE)
        if model is None:
            if tier == "fast":
                raise ServingError(
                    f"no fast-tier model registered for device {name!r} "
                    f"(fast devices: {', '.join(self.fast_devices) or 'none'}; "
                    "register a distilled student with register_fast_model, or "
                    "query tier='accurate')"
                )
            raise ServingError(
                f"no model registered for device {name!r} "
                f"(devices: {', '.join(self.devices)}; add one under '*' as fallback)"
            )
        return model

    def register_fast_model(self, device: str, model: ModelLike) -> None:
        """Install (or replace) the fast-tier model serving ``device``."""
        self.swap_model(device, model, tier="fast")

    def swap_model(self, device: str, model: ModelLike, tier: str = DEFAULT_TIER) -> None:
        """Install (or replace) the model serving ``device`` on ``tier``.

        Cached *predictions* are dropped — they were produced by the old
        weights — but cached *features* are kept: a feature row only depends
        on the backend's feature space (``cache_signature``), so a
        fine-tuned replacement with the same architecture reuses them for
        free.

        With a device-sharded prediction cache only the swapped device's
        shard is invalidated (unless the device is the ``"*"`` fallback,
        whose model may have answered queries for any device).  Swapping one
        tier invalidates the device shard as a whole — conservative for the
        untouched tier, but cache keys are tier-qualified so correctness
        never depends on it.
        """
        tier = validate_tier(tier)
        with self._lock:
            if self._queue:
                self.flush()
            table = self._fast_models if tier == "fast" else self._models
            # Reuse the adapter of a model already serving another device, so the
            # one-predictor-call-per-distinct-model batch grouping is preserved.
            adapter = next(
                (existing for existing in table.values() if existing.wraps(model)),
                None,
            )
            table[device] = adapter if adapter is not None else _as_serving_model(model)
            invalidate_device = getattr(self.prediction_cache, "invalidate_device", None)
            if invalidate_device is not None and device != DEFAULT_DEVICE:
                invalidate_device(device)
            else:
                self.prediction_cache.clear()
            listeners = list(self._swap_listeners)
        for listener in listeners:
            listener(device)

    def add_swap_listener(self, listener) -> None:
        """Register ``listener(device_name)`` to run after every swap_model.

        The predictions cache is invalidated by :meth:`swap_model` itself;
        listeners exist for state the service cannot see — most importantly
        cached *schedule-search results* (:class:`repro.serving.search_cache.
        SearchCache`), which stay bit-valid only while the exact fitted model
        that scored them keeps serving the device.  ``cache_signature`` alone
        cannot catch a fine-tuned clone (same architecture, new weights), so
        swap/onboard notify instead.
        """
        with self._lock:
            self._swap_listeners.append(listener)

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def submit(
        self,
        program: TensorProgram,
        device: Union[str, DeviceSpec],
        tier: str = DEFAULT_TIER,
    ) -> PendingPrediction:
        """Enqueue one query; returns a ticket resolved at the next flush.

        Cache hits resolve immediately; duplicate in-flight queries coalesce
        onto the same queue entry, so a batch full of repeats still costs one
        featurization and one predictor row.  The tier is folded into the
        cache key (alongside the model's ``cache_signature``), so a fast-tier
        answer can never be returned to an accurate-tier query or vice versa.
        """
        device_name = device if isinstance(device, str) else device.name
        tier = validate_tier(tier)
        with self._lock:
            model = self.model_for(device_name, tier=tier)
            key = program_cache_key(program, device_name, (tier, model.cache_signature))
            self.stats.queries += 1
            if tier == "fast":
                self.stats.fast_tier_queries += 1
            else:
                self.stats.accurate_tier_queries += 1

            ticket = PendingPrediction(self, key, device_name)
            cached = self.prediction_cache.get(key)
            if cached is not None:
                ticket._resolve(cached)
                return ticket

            entry = self._queue.get(key)
            if entry is not None:
                self.stats.coalesced += 1
                entry.tickets.append(ticket)
                return ticket

            self._queue[key] = _QueueEntry(
                program=program,
                device=device_name,
                model_id=id(model),
                tier=tier,
                tickets=[ticket],
            )
            if len(self._queue) >= self.max_batch_size:
                self.flush()
            return ticket

    # requires-lock: _lock
    def _predict_group(self, model: CostModel, queue, keys: List[CacheKey]) -> np.ndarray:
        """One vectorized backend call for every queued query of one model.

        Backends exposing the ``featurize_rows``/``predict_rows`` fast path
        go through the per-row feature cache; every other backend answers
        the group with one ``predict_programs`` call (featurizing
        internally).
        """
        if not hasattr(model, "featurize_rows"):
            self.stats.programs_featurized += len(keys)
            return model.predict_programs(
                [queue[key].program for key in keys],
                [queue[key].device for key in keys],
            )
        rows: List[object] = []
        missing: List[CacheKey] = []
        for key in keys:
            row = self.feature_cache.get(key)
            rows.append(row)  # placeholder None for misses, filled below
            if row is None:
                missing.append(key)
        if missing:
            featurized = model.featurize_rows(
                [queue[key].program for key in missing],
                [queue[key].device for key in missing],
            )
            self.stats.programs_featurized += len(missing)
            fresh = dict(zip(missing, featurized))
            for key, row in fresh.items():
                self.feature_cache.put(key, row)
            rows = [row if row is not None else fresh[key] for key, row in zip(keys, rows)]
        return model.predict_rows(rows, chunk_size=self.predict_chunk_size)

    def flush(self) -> int:
        """Run every queued query through its model in vectorized batches.

        Queries are grouped by owning model; each group is answered by a
        single backend call (mixed-device groups are featurized with one
        device per program).  Returns the number of distinct queue entries
        resolved.  A concurrent flush from another thread may resolve this
        thread's tickets first; both flushes still account every entry
        exactly once.
        """
        with self._lock:
            if not self._queue:
                return 0
            queue, self._queue = self._queue, OrderedDict()
            self.stats.flushes += 1

            groups: "OrderedDict[int, List[CacheKey]]" = OrderedDict()
            for key, entry in queue.items():
                groups.setdefault(entry.model_id, []).append(key)

            for keys in groups.values():
                head = queue[keys[0]]
                model = self.model_for(head.device, tier=head.tier)
                predictions = self._predict_group(model, queue, keys)
                self.stats.batches += 1
                self.stats.predictions_computed += len(keys)
                for key, value in zip(keys, predictions):
                    value = float(value)
                    self.prediction_cache.put(key, value)
                    for ticket in queue[key].tickets:
                        ticket._resolve(value)
            return len(queue)

    # ------------------------------------------------------------------
    # Synchronous convenience API
    # ------------------------------------------------------------------
    def predict(
        self,
        programs: Sequence[TensorProgram],
        device: Union[str, DeviceSpec],
        tier: str = DEFAULT_TIER,
    ) -> np.ndarray:
        """Latency (seconds) per program, in input order, via one batched pass."""
        tickets = [self.submit(program, device, tier=tier) for program in programs]
        self.flush()
        return np.asarray([ticket.result() for ticket in tickets], dtype=np.float64)

    def predict_program(
        self,
        program: TensorProgram,
        device: Union[str, DeviceSpec],
        tier: str = DEFAULT_TIER,
    ) -> float:
        """Latency (seconds) of one program (cache-accelerated)."""
        return float(self.predict([program], device, tier=tier)[0])

    def predict_model(
        self,
        model: Union[str, object],
        device: Union[str, DeviceSpec],
        batch_size: int = 1,
        seed: Union[int, str, None] = 0,
        compose: str = "replay",
        tier: str = DEFAULT_TIER,
    ) -> EndToEndPrediction:
        """End-to-end model latency through the replayer, cost from this service.

        Same contract as :meth:`repro.core.api.CDMPP.predict_model`, but every
        per-kernel cost query goes through the batch-and-cache path, so
        repeated whole-model queries (capacity planning sweeps, placement
        search) reuse each other's kernels.  Works with any serving backend
        whose Table 1 row claims model-level support; op-level-only backends
        (e.g. Tiramisu) are refused instead of silently mis-served.
        """
        from repro.devices.spec import get_device
        from repro.graph.model import ModelGraph
        from repro.graph.zoo import build_model
        from repro.replay.e2e import predict_end_to_end

        tier = validate_tier(tier)
        device_spec = get_device(device) if isinstance(device, str) else device
        backend = self.model_for(device_spec, tier=tier)
        ensure_model_level(backend, ServingError)

        def cost_fn(programs: List[TensorProgram]) -> Dict[str, float]:
            values = self.predict(programs, device_spec, tier=tier)
            return {
                program.task.workload_key: float(value)
                for program, value in zip(programs, values)
            }

        graph = model if isinstance(model, ModelGraph) else build_model(model, batch_size=batch_size)
        outcome = predict_end_to_end(
            graph, device_spec, cost_fn=cost_fn, seed=seed, compose=compose
        )
        return EndToEndPrediction(
            model=graph.name,
            device=device_spec.name,
            predicted_latency_s=outcome.iteration_time_s,
            per_program_latency_s=dict(outcome.durations),
            num_nodes=len(graph),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of distinct queries waiting for the next flush."""
        with self._lock:
            return len(self._queue)

    def describe_stats(self) -> Dict[str, object]:
        """All serving counters plus both cache summaries, as a plain dict."""
        with self._lock:
            return {
                "queries": self.stats.queries,
                "coalesced": self.stats.coalesced,
                "flushes": self.stats.flushes,
                "batches": self.stats.batches,
                "programs_featurized": self.stats.programs_featurized,
                "predictions_computed": self.stats.predictions_computed,
                "fast_tier_queries": self.stats.fast_tier_queries,
                "accurate_tier_queries": self.stats.accurate_tier_queries,
                "fast_devices": self.fast_devices,
                "feature_cache": self.feature_cache.stats(),
                "prediction_cache": self.prediction_cache.stats(),
            }

    def reset_stats(self) -> None:
        """Zero every counter (cache contents are kept)."""
        with self._lock:
            self.stats = ServingStats()
            self.feature_cache.reset_stats()
            self.prediction_cache.reset_stats()

    def __repr__(self) -> str:
        return (
            f"PredictionService(models={self.devices}, pending={self.pending}, "
            f"prediction_cache={self.prediction_cache!r})"
        )
