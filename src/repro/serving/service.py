"""Micro-batched, cached latency-prediction serving.

The one-shot :class:`repro.core.api.CDMPP` facade featurizes and runs the
predictor from scratch on every call.  A :class:`PredictionService` turns a
set of trained models into a long-lived service in the "train once, query
many" regime the paper targets (and that TLP-style tuners exercise when they
score thousands of candidate schedules per round):

* **micro-batching** — queries are enqueued with :meth:`submit` and executed
  by :meth:`flush` as one vectorized ``Trainer.predict`` call per model, so
  per-query Python and predictor overhead is amortized across the batch;
* **feature cache** — the one-row :class:`FeatureSet` of each distinct
  (program, device) query is kept in an LRU, so repeats skip
  ``featurize_programs`` (the dominant per-query cost);
* **prediction cache** — final latencies are kept in a second LRU, so exact
  repeats skip the predictor entirely;
* **model registry integration** — services are built straight from
  :class:`repro.serving.registry.ModelRegistry` checkpoints, never retraining
  in the serving process.

The service is deliberately synchronous and single-threaded; sharded and
async front-ends can wrap it without changing the batching core.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.api import CDMPP
from repro.core.trainer import Trainer
from repro.devices.spec import DeviceSpec
from repro.errors import ServingError
from repro.features.pipeline import FeatureSet, featurize_programs
from repro.serving.cache import CacheKey, LRUCache, program_cache_key
from repro.tir.program import TensorProgram

ModelLike = Union[CDMPP, Trainer]

DEFAULT_DEVICE = "*"


def _as_cdmpp(model: ModelLike) -> CDMPP:
    if isinstance(model, CDMPP):
        if not getattr(model.trainer, "_fitted", False):
            raise ServingError("PredictionService needs a fitted model (call pretrain first)")
        return model
    if isinstance(model, Trainer):
        if not getattr(model, "_fitted", False):
            raise ServingError("PredictionService needs a fitted trainer")
        return CDMPP.from_trainer(model)
    raise ServingError(f"expected CDMPP or Trainer, got {type(model).__name__}")


class PendingPrediction:
    """A ticket for one submitted query; resolved by the next flush."""

    __slots__ = ("key", "device", "_service", "_value")

    def __init__(self, service: "PredictionService", key: CacheKey, device: str):
        self._service = service
        self.key = key
        self.device = device
        self._value: Optional[float] = None

    @property
    def done(self) -> bool:
        """Whether the prediction has been computed."""
        return self._value is not None

    def result(self) -> float:
        """The predicted latency in seconds, flushing the service if needed."""
        if self._value is None:
            self._service.flush()
        if self._value is None:  # pragma: no cover - flush always resolves
            raise ServingError("pending prediction was not resolved by flush()")
        return self._value

    def _resolve(self, value: float) -> None:
        self._value = float(value)


@dataclass
class _QueueEntry:
    """One distinct queued query with every ticket coalesced onto it."""

    program: TensorProgram
    device: str
    model_id: int
    tickets: List[PendingPrediction] = field(default_factory=list)


@dataclass
class ServingStats:
    """Lifetime counters of one :class:`PredictionService`."""

    queries: int = 0
    coalesced: int = 0
    flushes: int = 0
    batches: int = 0
    programs_featurized: int = 0
    predictions_computed: int = 0


class PredictionService:
    """Serve latency queries from trained cost models with batching + caching.

    ``models`` is either a single fitted :class:`CDMPP`/:class:`Trainer`
    (CDMPP is device-agnostic, so one cross-device model can serve every
    device) or a mapping from device name to a per-device model; the entry
    under ``"*"`` acts as the fallback for unlisted devices.
    """

    def __init__(
        self,
        models: Union[ModelLike, Mapping[str, ModelLike]],
        feature_cache_size: int = 4096,
        prediction_cache_size: int = 16384,
        max_batch_size: int = 256,
        predict_chunk_size: Optional[int] = 1024,
        feature_cache: Optional[LRUCache] = None,
        prediction_cache=None,
    ):
        if isinstance(models, Mapping):
            if not models:
                raise ServingError("PredictionService needs at least one model")
            # Devices handing in the same model object share one facade, so
            # their queries land in one batch group at flush time.
            facades: Dict[int, CDMPP] = {}
            self._models: Dict[str, CDMPP] = {
                name: facades.setdefault(id(model), _as_cdmpp(model))
                for name, model in models.items()
            }
        else:
            self._models = {DEFAULT_DEVICE: _as_cdmpp(models)}
        if max_batch_size <= 0:
            raise ServingError(f"max_batch_size must be positive, got {max_batch_size}")
        self.max_batch_size = int(max_batch_size)
        self.predict_chunk_size = predict_chunk_size
        # Caches may be injected (any object with the LRUCache get/put/stats
        # surface) so several services — or a fleet — can share featurization
        # work, or shard predictions per device (DeviceShardedCache).
        self.feature_cache = feature_cache if feature_cache is not None else LRUCache(feature_cache_size)
        self.prediction_cache = (
            prediction_cache if prediction_cache is not None else LRUCache(prediction_cache_size)
        )
        self.stats = ServingStats()
        self._queue: "OrderedDict[CacheKey, _QueueEntry]" = OrderedDict()

    # ------------------------------------------------------------------
    # Model management
    # ------------------------------------------------------------------
    @classmethod
    def from_registry(
        cls,
        registry,
        names: Union[str, Mapping[str, str]],
        **kwargs,
    ) -> "PredictionService":
        """Build a service from registry checkpoints.

        ``names`` is either one checkpoint name (shared cross-device model)
        or a mapping from device name to checkpoint name.
        """
        if isinstance(names, Mapping):
            return cls({device: registry.load(name) for device, name in names.items()}, **kwargs)
        return cls(registry.load(names), **kwargs)

    @property
    def devices(self) -> List[str]:
        """Sorted device names with a dedicated model (``"*"`` = fallback)."""
        return sorted(self._models)

    def model_for(self, device: Union[str, DeviceSpec]) -> CDMPP:
        """The model that serves ``device`` (exact entry, else the fallback)."""
        name = device if isinstance(device, str) else device.name
        model = self._models.get(name) or self._models.get(DEFAULT_DEVICE)
        if model is None:
            raise ServingError(
                f"no model registered for device {name!r} "
                f"(devices: {', '.join(sorted(self._models))}; add one under '*' as fallback)"
            )
        return model

    def swap_model(self, device: str, model: ModelLike) -> None:
        """Install (or replace) the model serving ``device``.

        Cached *predictions* are dropped — they were produced by the old
        weights — but cached *features* are kept: featurization does not
        depend on the model, only on ``max_leaves``, so a fine-tuned
        replacement with the same architecture reuses them for free.

        With a device-sharded prediction cache only the swapped device's
        shard is invalidated (unless the device is the ``"*"`` fallback,
        whose model may have answered queries for any device).
        """
        if self._queue:
            self.flush()
        # Reuse the facade of a model already serving another device, so the
        # one-predictor-call-per-distinct-model batch grouping is preserved.
        facade = None
        if not isinstance(model, CDMPP):
            facade = next(
                (existing for existing in self._models.values() if existing.trainer is model),
                None,
            )
        self._models[device] = facade if facade is not None else _as_cdmpp(model)
        invalidate_device = getattr(self.prediction_cache, "invalidate_device", None)
        if invalidate_device is not None and device != DEFAULT_DEVICE:
            invalidate_device(device)
        else:
            self.prediction_cache.clear()

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def submit(
        self, program: TensorProgram, device: Union[str, DeviceSpec]
    ) -> PendingPrediction:
        """Enqueue one query; returns a ticket resolved at the next flush.

        Cache hits resolve immediately; duplicate in-flight queries coalesce
        onto the same queue entry, so a batch full of repeats still costs one
        featurization and one predictor row.
        """
        device_name = device if isinstance(device, str) else device.name
        model = self.model_for(device_name)
        key = program_cache_key(program, device_name, model.predictor_config.max_leaves)
        self.stats.queries += 1

        ticket = PendingPrediction(self, key, device_name)
        cached = self.prediction_cache.get(key)
        if cached is not None:
            ticket._resolve(cached)
            return ticket

        entry = self._queue.get(key)
        if entry is not None:
            self.stats.coalesced += 1
            entry.tickets.append(ticket)
            return ticket

        self._queue[key] = _QueueEntry(
            program=program, device=device_name, model_id=id(model), tickets=[ticket]
        )
        if len(self._queue) >= self.max_batch_size:
            self.flush()
        return ticket

    def flush(self) -> int:
        """Run every queued query through its model in vectorized batches.

        Queries are grouped by owning model; each group is answered by a
        single ``Trainer.predict`` call (mixed-device groups are featurized
        with one device per program).  Returns the number of distinct queue
        entries resolved.
        """
        if not self._queue:
            return 0
        queue, self._queue = self._queue, OrderedDict()
        self.stats.flushes += 1

        groups: "OrderedDict[int, List[CacheKey]]" = OrderedDict()
        for key, entry in queue.items():
            groups.setdefault(entry.model_id, []).append(key)

        for keys in groups.values():
            model = self.model_for(queue[keys[0]].device)
            rows: List[FeatureSet] = []
            missing: List[CacheKey] = []
            for key in keys:
                row = self.feature_cache.get(key)
                rows.append(row)  # placeholder None for misses, filled below
                if row is None:
                    missing.append(key)
            if missing:
                featurized = featurize_programs(
                    [queue[key].program for key in missing],
                    [queue[key].device for key in missing],
                    max_leaves=model.predictor_config.max_leaves,
                )
                self.stats.programs_featurized += len(missing)
                fresh = {key: featurized.subset([i]) for i, key in enumerate(missing)}
                for key, row in fresh.items():
                    self.feature_cache.put(key, row)
                rows = [row if row is not None else fresh[key] for key, row in zip(keys, rows)]
            batch = rows[0] if len(rows) == 1 else FeatureSet.concatenate(rows)
            predictions = model.trainer.predict(batch, batch_size=self.predict_chunk_size)
            self.stats.batches += 1
            self.stats.predictions_computed += len(keys)
            for key, value in zip(keys, predictions):
                value = float(value)
                self.prediction_cache.put(key, value)
                for ticket in queue[key].tickets:
                    ticket._resolve(value)
        return len(queue)

    # ------------------------------------------------------------------
    # Synchronous convenience API
    # ------------------------------------------------------------------
    def predict(
        self, programs: Sequence[TensorProgram], device: Union[str, DeviceSpec]
    ) -> np.ndarray:
        """Latency (seconds) per program, in input order, via one batched pass."""
        tickets = [self.submit(program, device) for program in programs]
        self.flush()
        return np.asarray([ticket.result() for ticket in tickets], dtype=np.float64)

    def predict_program(
        self, program: TensorProgram, device: Union[str, DeviceSpec]
    ) -> float:
        """Latency (seconds) of one program (cache-accelerated)."""
        return float(self.predict([program], device)[0])

    def predict_model(
        self,
        model: Union[str, object],
        device: Union[str, DeviceSpec],
        batch_size: int = 1,
        seed: Union[int, str, None] = 0,
        compose: str = "replay",
    ):
        """End-to-end model latency through the replayer, cost from this service.

        Same contract as :meth:`repro.core.api.CDMPP.predict_model`, but every
        per-kernel cost query goes through the batch-and-cache path, so
        repeated whole-model queries (capacity planning sweeps, placement
        search) reuse each other's kernels.
        """
        from repro.devices.spec import get_device

        device_spec = get_device(device) if isinstance(device, str) else device
        facade = self.model_for(device_spec)

        def cost_fn(programs: List[TensorProgram]) -> Dict[str, float]:
            values = self.predict(programs, device_spec)
            return {
                program.task.workload_key: float(value)
                for program, value in zip(programs, values)
            }

        return facade.predict_model(
            model, device_spec, batch_size=batch_size, seed=seed, cost_fn=cost_fn,
            compose=compose,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of distinct queries waiting for the next flush."""
        return len(self._queue)

    def describe_stats(self) -> Dict[str, object]:
        """All serving counters plus both cache summaries, as a plain dict."""
        return {
            "queries": self.stats.queries,
            "coalesced": self.stats.coalesced,
            "flushes": self.stats.flushes,
            "batches": self.stats.batches,
            "programs_featurized": self.stats.programs_featurized,
            "predictions_computed": self.stats.predictions_computed,
            "feature_cache": self.feature_cache.stats(),
            "prediction_cache": self.prediction_cache.stats(),
        }

    def reset_stats(self) -> None:
        """Zero every counter (cache contents are kept)."""
        self.stats = ServingStats()
        self.feature_cache.reset_stats()
        self.prediction_cache.reset_stats()

    def __repr__(self) -> str:
        return (
            f"PredictionService(models={sorted(self._models)}, pending={self.pending}, "
            f"prediction_cache={self.prediction_cache!r})"
        )
