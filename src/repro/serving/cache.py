"""LRU caching for the prediction-serving path.

The dominant cost of answering a latency query is ``featurize_programs``
(Compact-AST extraction + positional encoding), followed by the predictor
forward pass.  The serving layer therefore caches at two levels:

* a **feature cache** holding the one-row :class:`FeatureSet` of a program,
  so a repeated query skips featurization entirely, and
* a **prediction cache** holding the final latency in seconds, so a repeated
  query skips the predictor forward pass too.

Both are keyed by :func:`program_cache_key`.  The issue-level key is
``(workload_key, device, cache_signature)`` where the signature identifies
the serving backend's feature space; because two *different* schedules of
the same task share a workload key (see ``CDMPP.predict_latencies``), the key
additionally folds in a stable fingerprint of the schedule so distinct
kernels never alias in the cache.

Both cache classes are **thread-safe**: every mutation (lookup bookkeeping,
insert, the eviction loop, shard creation) happens under an internal lock,
so the caches can be shared by the concurrent shard workers of
:class:`repro.serving.daemon.ServingDaemon` without torn counters or a
half-applied eviction.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Iterator, Optional, Tuple, Union

from repro.devices.spec import DeviceSpec
from repro.tir.program import TensorProgram
from repro.utils.rng import stable_hash

CacheKey = Tuple[str, int, str, Hashable]

_MISSING = object()


def schedule_fingerprint(program: TensorProgram) -> int:
    """A stable fingerprint of a program's schedule steps.

    Schedule steps are frozen dataclasses with deterministic ``repr``, so the
    fingerprint is reproducible across processes (unlike ``hash``, which is
    randomized for strings).
    """
    return stable_hash(tuple(repr(step) for step in program.schedule.steps), bits=48)


def program_cache_key(
    program: TensorProgram,
    device: Union[str, DeviceSpec],
    signature: Hashable,
) -> CacheKey:
    """Cache key of one (program, device) query for one feature space.

    ``signature`` is the serving model's feature-space tag — historically the
    Compact-AST padding width (an ``int``, still accepted), today any
    hashable :attr:`repro.backends.CostModel.cache_signature` — so queries
    answered by different backends (or differently-padded CDMPP models)
    never alias in the cache.
    """
    device_name = device if isinstance(device, str) else device.name
    return (
        program.task.workload_key,
        schedule_fingerprint(program),
        device_name,
        signature,
    )


class LRUCache:
    """A size-bounded least-recently-used cache with hit/miss accounting.

    ``get`` refreshes recency; ``put`` evicts the least recently used entry
    once ``capacity`` is exceeded.  ``hits``/``misses``/``evictions`` feed the
    serving statistics surfaced by :class:`repro.serving.PredictionService`.

    All operations are atomic under an internal lock, including the eviction
    loop inside :meth:`put`, so concurrent readers can never observe a cache
    above capacity or lose a counter increment.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._entries))

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, counting a hit or a miss and refreshing recency."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self.hits += 1
            self._entries.move_to_end(key)
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key`` without touching recency or the hit/miss counters."""
        with self._lock:
            return self._entries.get(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``, evicting the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it existed."""
        with self._lock:
            return self._entries.pop(key, _MISSING) is not _MISSING

    def clear(self) -> None:
        """Drop every entry (counters are kept; use :meth:`reset_stats`)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never queried)."""
        with self._lock:  # one consistent (hits, misses) snapshot
            hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0

    def stats(self) -> dict:
        """Counters as a plain dict (for logging / the CLI stats line)."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hit_rate,
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"LRUCache(size={len(self._entries)}/{self.capacity}, "
                f"hits={self.hits}, misses={self.misses})"
            )


class DeviceShardedCache:
    """Per-device LRU shards behind the one cache interface the service uses.

    Serving cache keys (:func:`program_cache_key`) carry the device name in
    their third position; this cache routes every ``get``/``put`` to a
    dedicated :class:`LRUCache` shard for that device.  The point is
    *isolation*: retraining or hot-swapping one device's model invalidates
    only that device's shard (:meth:`invalidate_device`), leaving every other
    device's warm predictions untouched — the property
    :class:`repro.serving.fleet.FleetService` relies on.

    Shards are created on demand, each with ``capacity_per_device`` entries,
    so total capacity grows with the fleet instead of devices competing for
    one LRU.

    Shard creation and the shard table are guarded by a lock (two threads
    racing to create the same device's shard must end up sharing one), and
    per-entry operations inherit each shard's own atomicity; a device-wide
    :meth:`invalidate_device` drops the whole shard in one locked step.
    """

    def __init__(self, capacity_per_device: int = 16384):
        if capacity_per_device <= 0:
            raise ValueError(
                f"cache capacity must be positive, got {capacity_per_device}"
            )
        self.capacity_per_device = int(capacity_per_device)
        self._lock = threading.RLock()
        self._shards: "OrderedDict[str, LRUCache]" = OrderedDict()  # guarded-by: _lock

    @staticmethod
    def device_of(key: CacheKey) -> str:
        """The device component of a serving cache key."""
        return key[2]

    def shard(self, device: Union[str, DeviceSpec]) -> LRUCache:
        """The (lazily created) shard serving one device."""
        name = device if isinstance(device, str) else device.name
        with self._lock:
            cache = self._shards.get(name)
            if cache is None:
                cache = self._shards[name] = LRUCache(self.capacity_per_device)
            return cache

    @property
    def devices(self) -> Tuple[str, ...]:
        """Names of the devices that currently have a shard."""
        with self._lock:
            return tuple(self._shards)

    def _shards_snapshot(self) -> Tuple[LRUCache, ...]:
        with self._lock:
            return tuple(self._shards.values())

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards_snapshot())

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            shard = self._shards.get(self.device_of(key))
        return shard is not None and key in shard

    def get(self, key: CacheKey, default: Any = None) -> Any:
        """Look up ``key`` in its device's shard (counts a hit or miss there)."""
        return self.shard(self.device_of(key)).get(key, default)

    def peek(self, key: CacheKey, default: Any = None) -> Any:
        """Look up ``key`` without touching recency or counters."""
        with self._lock:
            shard = self._shards.get(self.device_of(key))
        return default if shard is None else shard.peek(key, default)

    def put(self, key: CacheKey, value: Any) -> None:
        """Insert ``key`` into its device's shard."""
        self.shard(self.device_of(key)).put(key, value)

    def invalidate(self, key: CacheKey) -> bool:
        """Drop one entry; returns whether it existed."""
        with self._lock:
            shard = self._shards.get(self.device_of(key))
        return shard is not None and shard.invalidate(key)

    def invalidate_device(self, device: Union[str, DeviceSpec]) -> int:
        """Drop every entry of one device's shard; returns how many were dropped.

        Other devices' shards — including their recency order and counters —
        are untouched.  The drop is atomic: a concurrent ``put`` lands either
        entirely before or entirely after it, never in a half-cleared shard.
        """
        name = device if isinstance(device, str) else device.name
        with self._lock:
            shard = self._shards.get(name)
        if shard is None:
            return 0
        with shard._lock:  # count + clear as one step
            dropped = len(shard._entries)
            shard._entries.clear()
        return dropped

    def clear(self) -> None:
        """Drop every entry of every shard (counters are kept)."""
        for shard in self._shards_snapshot():
            shard.clear()

    def reset_stats(self) -> None:
        """Zero the counters of every shard."""
        for shard in self._shards_snapshot():
            shard.reset_stats()

    @property
    def hits(self) -> int:
        """Hits summed over all shards."""
        return sum(shard.hits for shard in self._shards_snapshot())

    @property
    def misses(self) -> int:
        """Misses summed over all shards."""
        return sum(shard.misses for shard in self._shards_snapshot())

    @property
    def evictions(self) -> int:
        """Evictions summed over all shards."""
        return sum(shard.evictions for shard in self._shards_snapshot())

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from any shard (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Aggregate counters plus a per-device breakdown."""
        with self._lock:
            shards = dict(self._shards)
        return {
            "size": len(self),
            "capacity": self.capacity_per_device * max(len(shards), 1),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "devices": {name: shard.stats() for name, shard in shards.items()},
        }

    def __repr__(self) -> str:
        return (
            f"DeviceShardedCache(devices={list(self.devices)}, size={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
