"""LRU caching for the prediction-serving path.

The dominant cost of answering a latency query is ``featurize_programs``
(Compact-AST extraction + positional encoding), followed by the predictor
forward pass.  The serving layer therefore caches at two levels:

* a **feature cache** holding the one-row :class:`FeatureSet` of a program,
  so a repeated query skips featurization entirely, and
* a **prediction cache** holding the final latency in seconds, so a repeated
  query skips the predictor forward pass too.

Both are keyed by :func:`program_cache_key`.  The issue-level key is
``(workload_key, device, max_leaves)``; because two *different* schedules of
the same task share a workload key (see ``CDMPP.predict_latencies``), the key
additionally folds in a stable fingerprint of the schedule so distinct
kernels never alias in the cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterator, Optional, Tuple, Union

from repro.devices.spec import DeviceSpec
from repro.tir.program import TensorProgram
from repro.utils.rng import stable_hash

CacheKey = Tuple[str, int, str, int]

_MISSING = object()


def schedule_fingerprint(program: TensorProgram) -> int:
    """A stable fingerprint of a program's schedule steps.

    Schedule steps are frozen dataclasses with deterministic ``repr``, so the
    fingerprint is reproducible across processes (unlike ``hash``, which is
    randomized for strings).
    """
    return stable_hash(tuple(repr(step) for step in program.schedule.steps), bits=48)


def program_cache_key(
    program: TensorProgram,
    device: Union[str, DeviceSpec],
    max_leaves: int,
) -> CacheKey:
    """Cache key of one (program, device) query at a given padding width."""
    device_name = device if isinstance(device, str) else device.name
    return (
        program.task.workload_key,
        schedule_fingerprint(program),
        device_name,
        int(max_leaves),
    )


class LRUCache:
    """A size-bounded least-recently-used cache with hit/miss accounting.

    ``get`` refreshes recency; ``put`` evicts the least recently used entry
    once ``capacity`` is exceeded.  ``hits``/``misses``/``evictions`` feed the
    serving statistics surfaced by :class:`repro.serving.PredictionService`.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, counting a hit or a miss and refreshing recency."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key`` without touching recency or the hit/miss counters."""
        return self._entries.get(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it existed."""
        return self._entries.pop(key, _MISSING) is not _MISSING

    def clear(self) -> None:
        """Drop every entry (counters are kept; use :meth:`reset_stats`)."""
        self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counters as a plain dict (for logging / the CLI stats line)."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"LRUCache(size={len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
