"""Prediction serving: batched, cached, registry-backed latency queries.

The serving layer is the "query many" half of the paper's train-once /
query-many workflow: :class:`ModelRegistry` persists trained cost models,
:class:`PredictionService` answers program- and model-level latency queries
by micro-batching them into vectorized predictor calls behind an LRU
feature/prediction cache.
"""

from repro.serving.cache import LRUCache, program_cache_key, schedule_fingerprint
from repro.serving.registry import ModelRegistry, default_registry_root
from repro.serving.service import PendingPrediction, PredictionService, ServingStats

__all__ = [
    "LRUCache",
    "ModelRegistry",
    "PendingPrediction",
    "PredictionService",
    "ServingStats",
    "default_registry_root",
    "program_cache_key",
    "schedule_fingerprint",
]
