"""Prediction serving: batched, cached, registry-backed latency queries.

The serving layer is the "query many" half of the paper's train-once /
query-many workflow: :class:`ModelRegistry` persists trained cost models,
:class:`PredictionService` answers program- and model-level latency queries
by micro-batching them into vectorized predictor calls behind an LRU
feature/prediction cache, and :class:`FleetService` layers the graph-level
tier on top — partition a model into kernels, batch the kernel queries of a
whole device fleet into one flush, and compose per-device end-to-end
estimates (see :mod:`repro.serving.fleet`).

On top of the in-process tiers sits the network tier:
:class:`ServingDaemon` wraps a fleet behind an async TCP request queue with
deadline-aware micro-batching, per-device shard workers, admission control
and graceful drain (see :mod:`repro.serving.daemon`), speaking the
line-delimited JSON protocol of :mod:`repro.serving.protocol`;
:class:`DaemonClient` is the matching Python client.
"""

from repro.serving.cache import (
    DeviceShardedCache,
    LRUCache,
    program_cache_key,
    schedule_fingerprint,
)
from repro.serving.client import DaemonClient, DaemonRequestError
from repro.serving.daemon import DaemonConfig, DaemonStats, ServingDaemon
from repro.serving.fleet import FleetPrediction, FleetService, FleetStats
from repro.serving.protocol import PROTOCOL_VERSION, MessageStream, ProtocolError
from repro.serving.registry import ModelRegistry, default_registry_root
from repro.serving.search import ModelTuning, SearchService, SearchServiceStats
from repro.serving.search_cache import SearchCache, SearchCacheStats
from repro.serving.service import (
    DEFAULT_TIER,
    TIERS,
    PendingPrediction,
    PredictionService,
    ServingStats,
    validate_tier,
)

__all__ = [
    "DEFAULT_TIER",
    "DaemonClient",
    "DaemonConfig",
    "DaemonRequestError",
    "DaemonStats",
    "DeviceShardedCache",
    "FleetPrediction",
    "FleetService",
    "FleetStats",
    "LRUCache",
    "MessageStream",
    "ModelRegistry",
    "ModelTuning",
    "PROTOCOL_VERSION",
    "PendingPrediction",
    "PredictionService",
    "ProtocolError",
    "SearchCache",
    "SearchCacheStats",
    "SearchService",
    "SearchServiceStats",
    "ServingDaemon",
    "ServingStats",
    "TIERS",
    "default_registry_root",
    "program_cache_key",
    "schedule_fingerprint",
    "validate_tier",
]
