"""Prediction serving: batched, cached, registry-backed latency queries.

The serving layer is the "query many" half of the paper's train-once /
query-many workflow: :class:`ModelRegistry` persists trained cost models,
:class:`PredictionService` answers program- and model-level latency queries
by micro-batching them into vectorized predictor calls behind an LRU
feature/prediction cache, and :class:`FleetService` layers the graph-level
tier on top — partition a model into kernels, batch the kernel queries of a
whole device fleet into one flush, and compose per-device end-to-end
estimates (see :mod:`repro.serving.fleet`).
"""

from repro.serving.cache import (
    DeviceShardedCache,
    LRUCache,
    program_cache_key,
    schedule_fingerprint,
)
from repro.serving.fleet import FleetPrediction, FleetService, FleetStats
from repro.serving.registry import ModelRegistry, default_registry_root
from repro.serving.service import PendingPrediction, PredictionService, ServingStats

__all__ = [
    "DeviceShardedCache",
    "FleetPrediction",
    "FleetService",
    "FleetStats",
    "LRUCache",
    "ModelRegistry",
    "PendingPrediction",
    "PredictionService",
    "ServingStats",
    "default_registry_root",
    "program_cache_key",
    "schedule_fingerprint",
]
