"""Schedule search as a fleet service (ROADMAP item 2, Fig. 14b in production).

:func:`repro.search.evolutionary_search` is offline and one-shot: the caller
hands it a bare ``ScoreFn`` closure and the serving stack — batching, caches,
per-device models, checkpoints — is bypassed entirely.  :class:`SearchService`
promotes search to a first-class serving tier, the role a learned cost model
actually plays inside an auto-tuner (Ansor, TLP, the TPU learned performance
model all score thousands of candidates per batched inference):

* **batched scoring** — each search round's candidate population is scored
  through the shared :class:`~repro.serving.service.PredictionService` as
  ONE vectorized predict (submit the whole population, flush once), so
  candidate scoring rides the same micro-batch/cache path as every other
  query instead of one model call per candidate;
* **result caching** — a finished tuning is cached per
  ``(task, device, CostModel.cache_signature, search params)`` in a
  :class:`~repro.serving.search_cache.SearchCache`, persisted in the
  :class:`~repro.serving.registry.ModelRegistry` when one is attached, so a
  re-tune is a cache hit returning the bit-identical
  :class:`~repro.search.SearchResult` with zero new predicts;
* **active invalidation** — the service registers a swap listener on the
  prediction tier: ``swap_model`` / ``onboard_device`` on the underlying
  fleet evicts the swapped device's cached tunings (``cache_signature``
  alone cannot catch a fine-tuned clone with identical architecture), and
  the registry evicts by checkpoint name on re-save/delete;
* **fleet-wide tuning** — :meth:`tune_model` partitions a model into its
  unique tasks via :mod:`repro.graph.partition` and searches each task for
  each requested device, exactly how an operator tunes a new network for
  every device they own.

Determinism contract: with the same ``seed``, tuning is bit-identical across
runs and across warm/cold prediction caches — predictions are deterministic
functions of (program, device, model), so cached scores equal recomputed
ones, and each task searches under its own ``(seed, task_key)`` child stream
(independent tasks, no Generator aliasing).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.devices.spec import DeviceSpec, get_device
from repro.errors import SearchError, ServingError
from repro.graph.partition import extract_unique_tasks, partition_into_programs
from repro.search.ansor import SearchResult, evolutionary_search
from repro.serving.fleet import FleetService
from repro.serving.search_cache import SearchCache
from repro.serving.service import PredictionService
from repro.tir.task import Task

#: Default search budget, matching the Fig. 14b benchmark's scale.
DEFAULT_NUM_ROUNDS = 6
DEFAULT_POPULATION = 12
DEFAULT_MEASUREMENTS_PER_ROUND = 3


@dataclass
class ModelTuning:
    """Outcome of tuning one model for one device.

    ``results`` maps workload key to its :class:`SearchResult`;
    ``cached_tasks`` / ``fresh_tasks`` split the tasks by whether the search
    cache answered them (a fully-cached re-tune has every task in
    ``cached_tasks`` and issued zero predicts).
    """

    model: str
    device: str
    results: Dict[str, SearchResult] = field(default_factory=dict)
    cached_tasks: List[str] = field(default_factory=list)
    fresh_tasks: List[str] = field(default_factory=list)

    @property
    def tuned_latency_s(self) -> float:
        """Sum of per-task best latencies (the tuned model latency of Fig. 14b)."""
        return float(sum(result.best_latency_s for result in self.results.values()))

    @property
    def fully_cached(self) -> bool:
        """Whether every task came out of the search cache."""
        return not self.fresh_tasks

    def to_dict(self) -> Dict:
        """JSON-serializable form (used by the daemon's ``tune`` op)."""
        return {
            "model": self.model,
            "device": self.device,
            "results": {key: result.to_dict() for key, result in self.results.items()},
            "cached_tasks": list(self.cached_tasks),
            "fresh_tasks": list(self.fresh_tasks),
            "tuned_latency_s": self.tuned_latency_s,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ModelTuning":
        """Rebuild a tuning from :meth:`to_dict` output."""
        return cls(
            model=payload["model"],
            device=payload["device"],
            results={
                key: SearchResult.from_dict(value)
                for key, value in payload.get("results", {}).items()
            },
            cached_tasks=list(payload.get("cached_tasks", [])),
            fresh_tasks=list(payload.get("fresh_tasks", [])),
        )


@dataclass
class SearchServiceStats:
    """Lifetime counters of one :class:`SearchService`."""

    tasks_tuned: int = 0
    cache_hits: int = 0
    searches_run: int = 0
    programs_scored: int = 0
    measurements: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "tasks_tuned": self.tasks_tuned,
            "cache_hits": self.cache_hits,
            "searches_run": self.searches_run,
            "programs_scored": self.programs_scored,
            "measurements": self.measurements,
        }


class SearchService:
    """Cost-model-guided schedule search over a serving tier.

    ``service`` is the prediction tier that scores candidates: a
    :class:`FleetService` (the shared kernel service is used, and fleet
    ``register_device``/``onboard_device`` swaps auto-invalidate the search
    cache) or a bare :class:`PredictionService`.

    ``registry`` attaches the persistent search cache living next to the
    checkpoints (``<root>/search``); without one the cache is in-memory.
    ``model_names`` maps device name → registry checkpoint name and tags
    cache entries so ``ModelRegistry.save``/``delete`` of a checkpoint evicts
    its tunings; a plain string tags every device with one shared name.
    """

    def __init__(
        self,
        service: Union[FleetService, PredictionService],
        registry=None,
        model_names: Union[str, Mapping[str, str], None] = None,
        cache: Optional[SearchCache] = None,
    ):
        if isinstance(service, FleetService):
            self._fleet: Optional[FleetService] = service
            self._kernels = service.service_for_kernels()
        elif isinstance(service, PredictionService):
            self._fleet = None
            self._kernels = service
        else:
            raise ServingError(
                "SearchService needs a FleetService or PredictionService, "
                f"got {type(service).__name__}"
            )
        self.registry = registry
        if cache is not None:
            self.cache = cache
        elif registry is not None:
            self.cache = registry.search_cache
        else:
            self.cache = SearchCache()
        self._lock = threading.RLock()
        if model_names is None:
            self._model_names: Dict[str, str] = {}  # guarded-by: _lock
            self._shared_name: Optional[str] = None
        elif isinstance(model_names, str):
            self._model_names = {}  # guarded-by: _lock
            self._shared_name = model_names
        else:
            self._model_names = {get_device(d).name: n for d, n in model_names.items()}  # guarded-by: _lock
            self._shared_name = None
        self.stats = SearchServiceStats()  # guarded-by: _lock
        # A swap on any device (register_device / onboard_device / raw
        # swap_model) makes that device's cached tunings stale even when the
        # new model's cache_signature matches the old one's.
        self._kernels.add_swap_listener(self._on_swap)

    def _on_swap(self, device: str) -> None:
        self.cache.invalidate_device(device)
        with self._lock:
            self._model_names.pop(device, None)

    def _model_name_for(self, device: str) -> Optional[str]:
        with self._lock:
            return self._model_names.get(device, self._shared_name)

    # ------------------------------------------------------------------
    # Tuning
    # ------------------------------------------------------------------
    def tune_task(
        self,
        task: Task,
        device: Union[str, DeviceSpec],
        num_rounds: int = DEFAULT_NUM_ROUNDS,
        population: int = DEFAULT_POPULATION,
        measurements_per_round: int = DEFAULT_MEASUREMENTS_PER_ROUND,
        seed: Union[int, str, None] = 0,
        use_cache: bool = True,
    ) -> SearchResult:
        """Search a fast schedule for one task on one device.

        Candidate scoring is one batched predict per round through the
        shared prediction service (populations up to the service's
        ``max_batch_size`` stay a single vectorized call).  Results are
        cached; pass ``use_cache=False`` to force a fresh search (the fresh
        result still replaces the cached entry).
        """
        result, _ = self._tune_task_tracked(
            task,
            device,
            num_rounds=num_rounds,
            population=population,
            measurements_per_round=measurements_per_round,
            seed=seed,
            use_cache=use_cache,
        )
        return result

    def _tune_task_tracked(
        self,
        task: Task,
        device: Union[str, DeviceSpec],
        num_rounds: int,
        population: int,
        measurements_per_round: int,
        seed,
        use_cache: bool,
        task_seed=None,
    ):
        """(result, was_cached) for one task; ``task_seed`` overrides ``seed``."""
        spec = get_device(device) if isinstance(device, str) else device
        model = self._kernels.model_for(spec)
        signature = tuple(model.cache_signature)
        # The cache key carries the seed the search actually runs under
        # (tune_model derives (seed, task_key) per task), so a base-seed
        # tune_task and a tune_model sweep never alias each other's entries.
        effective_seed = task_seed if task_seed is not None else seed
        params = {
            "num_rounds": int(num_rounds),
            "population": int(population),
            "measurements_per_round": int(measurements_per_round),
            "seed": effective_seed,
        }
        if use_cache:
            cached = self.cache.get(task.workload_key, spec, signature, params)
            if cached is not None:
                with self._lock:
                    self.stats.tasks_tuned += 1
                    self.stats.cache_hits += 1
                return cached, True

        def score_fn(programs):
            return self._kernels.predict(programs, spec)

        result = evolutionary_search(
            task,
            spec,
            score_fn,
            num_rounds=num_rounds,
            population=population,
            measurements_per_round=measurements_per_round,
            seed=effective_seed,
        )
        self.cache.put(
            task.workload_key,
            spec,
            signature,
            params,
            result,
            model_name=self._model_name_for(spec.name),
        )
        with self._lock:
            self.stats.tasks_tuned += 1
            self.stats.searches_run += 1
            self.stats.programs_scored += result.num_scored
            self.stats.measurements += result.num_measurements
        return result, False

    def tune_model(
        self,
        model,
        devices: Optional[Sequence[Union[str, DeviceSpec]]] = None,
        batch_size: int = 1,
        num_rounds: int = DEFAULT_NUM_ROUNDS,
        population: int = DEFAULT_POPULATION,
        measurements_per_round: int = DEFAULT_MEASUREMENTS_PER_ROUND,
        seed: Union[int, str, None] = 0,
        use_cache: bool = True,
    ) -> List[ModelTuning]:
        """Tune a whole model for every requested device.

        ``model`` is a zoo name, a :class:`~repro.graph.model.ModelGraph` or
        a pre-partitioned :class:`~repro.graph.dfg.TIRDataFlowGraph`; it is
        partitioned into unique tasks via :mod:`repro.graph.partition` (per
        device taxonomy — a GPU and a CPU schedule the same model
        differently) and each task is searched under its own independent
        ``(seed, task_key)`` stream, matching
        :func:`repro.search.search_model_schedules`.

        ``devices`` defaults to every device of the underlying fleet.
        Returns one :class:`ModelTuning` per device, in request order.
        """
        from repro.graph.dfg import TIRDataFlowGraph
        from repro.serving.service import DEFAULT_DEVICE

        if devices is None:
            names = [name for name in self._kernels.devices if name != DEFAULT_DEVICE]
            if not names:
                raise ServingError(
                    "the serving tier has only the '*' fallback model; "
                    "pass devices= explicitly"
                )
            devices = names
        if not devices:
            raise SearchError("tune_model needs at least one device")
        specs: List[DeviceSpec] = []
        seen = set()
        for device in devices:
            spec = device if isinstance(device, DeviceSpec) else get_device(device)
            if spec.name not in seen:
                seen.add(spec.name)
                specs.append(spec)

        # Partition once per taxonomy: schedules are sampled for the device
        # kind, so a gpu and a cpu see different kernels of the same model.
        tasks_by_taxonomy: Dict[str, Dict[str, Task]] = {}
        for spec in specs:
            if spec.taxonomy in tasks_by_taxonomy:
                continue
            if isinstance(model, TIRDataFlowGraph):
                tasks_by_taxonomy[spec.taxonomy] = extract_unique_tasks(model)
            else:
                dfg = partition_into_programs(
                    model, target_kind=spec.taxonomy, batch_size=batch_size, seed=seed
                )
                tasks_by_taxonomy[spec.taxonomy] = extract_unique_tasks(dfg)

        model_name = model if isinstance(model, str) else getattr(model, "name", repr(model))
        tunings: List[ModelTuning] = []
        for spec in specs:
            tuning = ModelTuning(model=model_name, device=spec.name)
            for key, task in tasks_by_taxonomy[spec.taxonomy].items():
                result, was_cached = self._tune_task_tracked(
                    task,
                    spec,
                    num_rounds=num_rounds,
                    population=population,
                    measurements_per_round=measurements_per_round,
                    seed=seed,
                    use_cache=use_cache,
                    task_seed=(seed, key),
                )
                tuning.results[key] = result
                (tuning.cached_tasks if was_cached else tuning.fresh_tasks).append(key)
            tunings.append(tuning)
        return tunings

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe_stats(self) -> Dict[str, object]:
        """Search counters plus the search cache's hit/miss/eviction counters."""
        with self._lock:
            counters: Dict[str, object] = dict(self.stats.as_dict())
        counters["search_cache"] = self.cache.describe_stats()
        return counters

    def reset_stats(self) -> None:
        """Zero the search counters (cache contents are kept)."""
        with self._lock:
            self.stats = SearchServiceStats()

    def __repr__(self) -> str:
        tier = "fleet" if self._fleet is not None else "service"
        return f"SearchService(tier={tier!r}, cache={self.cache!r})"
