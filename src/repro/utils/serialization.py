"""Small JSON (de)serialization helpers with NumPy support."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

import numpy as np

PathLike = Union[str, Path]


class NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands NumPy scalars and arrays."""

    def default(self, o: Any) -> Any:  # noqa: D102 - documented by base class
        if isinstance(o, np.integer):
            return int(o)
        if isinstance(o, np.floating):
            return float(o)
        if isinstance(o, np.bool_):
            return bool(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        return super().default(o)


def save_json(obj: Any, path: PathLike, indent: int = 2) -> Path:
    """Serialize ``obj`` to ``path`` as JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(obj, fh, cls=NumpyJSONEncoder, indent=indent, sort_keys=True)
    return path


def load_json(path: PathLike) -> Any:
    """Load a JSON document from ``path``."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)
