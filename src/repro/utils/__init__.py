"""Shared utilities: deterministic RNG handling, serialization and graph helpers."""

from repro.utils.rng import new_rng, spawn_rng, stable_hash
from repro.utils.serialization import load_json, save_json
from repro.utils.topo import topological_order

__all__ = [
    "new_rng",
    "spawn_rng",
    "stable_hash",
    "load_json",
    "save_json",
    "topological_order",
]
