"""Topological ordering helpers used by the model graphs and the replayer."""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Mapping, Sequence

from repro.errors import ReplayError


def topological_order(
    nodes: Iterable[Hashable], edges: Mapping[Hashable, Sequence[Hashable]]
) -> List[Hashable]:
    """Return a topological order of ``nodes``.

    ``edges`` maps each node to the nodes that depend on it (successors).
    Raises :class:`ReplayError` when the graph contains a cycle, because both
    DNN data-flow graphs and TIR DFGs must be acyclic.
    """
    node_list = list(nodes)
    indegree: Dict[Hashable, int] = {node: 0 for node in node_list}
    for src in node_list:
        for dst in edges.get(src, ()):  # successors
            if dst not in indegree:
                raise ReplayError(f"edge target {dst!r} is not a node")
            indegree[dst] += 1

    queue = deque(node for node in node_list if indegree[node] == 0)
    order: List[Hashable] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for succ in edges.get(node, ()):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                queue.append(succ)

    if len(order) != len(node_list):
        raise ReplayError("graph contains a cycle; cannot topologically sort")
    return order
