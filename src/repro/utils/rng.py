"""Deterministic random-number helpers.

Every stochastic component in the library (schedule sampling, device noise,
dataset splits, weight initialisation, KMeans restarts) receives an explicit
``numpy.random.Generator``.  Determinism matters here because the benchmark
harness compares methods on identical synthetic datasets.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

import numpy as np

Seedable = Union[int, str, None, np.random.Generator]


def stable_hash(*parts: object, bits: int = 63) -> int:
    """Hash arbitrary printable objects into a stable non-negative integer.

    Python's builtin ``hash`` is salted per process for strings, so it cannot
    be used to derive reproducible seeds.  We hash the ``repr`` of each part
    with blake2b instead.
    """
    hasher = hashlib.blake2b(digest_size=16)
    for part in parts:
        hasher.update(repr(part).encode("utf-8"))
        hasher.update(b"\x00")
    return int.from_bytes(hasher.digest(), "little") % (1 << bits)


def new_rng(seed: Seedable = 0) -> np.random.Generator:
    """Create a ``numpy.random.Generator`` from an int, string or generator.

    Passing an existing generator returns it unchanged so functions can accept
    either a seed or a generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (str, tuple, list)):
        seed = stable_hash(seed)
    return np.random.default_rng(int(seed))


def spawn_rng(rng: np.random.Generator, *labels: object) -> np.random.Generator:
    """Derive an independent child generator identified by ``labels``.

    The child stream is a deterministic function of the parent's next draw and
    the labels, so the same parent seed always yields the same child streams
    regardless of how many other children were spawned in between -- provided
    the call order for the *parent* draws is fixed.
    """
    base = int(rng.integers(0, 2**31 - 1))
    return np.random.default_rng(stable_hash(base, *labels))


def derive_rng(seed: Seedable, *labels: object) -> np.random.Generator:
    """A generator that is *never* an alias of a caller's generator.

    ``new_rng`` deliberately returns a passed ``Generator`` unchanged, which
    is right for transient local use but wrong for state stored on ``self``:
    two components holding the same generator consume each other's draws (the
    aliasing bug the ``rng-generator-alias`` lint rule guards against).  This
    helper keeps ``new_rng``'s int/str/None behaviour byte-identical while
    forking an independent child stream (via :func:`spawn_rng`, tagged with
    ``labels``) when handed a live generator.
    """
    if isinstance(seed, np.random.Generator):
        return spawn_rng(seed, *labels)
    return new_rng(seed)


def choice_without_replacement(
    rng: np.random.Generator, items: Iterable[object], count: int
) -> list:
    """Sample ``count`` distinct items (or all of them if fewer are available)."""
    pool = list(items)
    if count >= len(pool):
        return pool
    idx = rng.choice(len(pool), size=count, replace=False)
    return [pool[i] for i in sorted(idx)]
