"""End-to-end model latency: ground truth and cost-model-driven prediction.

``measure_end_to_end`` obtains per-program latencies from the device
simulator (standing in for real profiling) and replays the DFG;
``predict_end_to_end`` does the same but takes latencies from an arbitrary
cost function (the CDMPP predictor, a baseline, ...), querying it once per
unique tensor program, as in Section 5.5.

Both are thin wrappers around :func:`compose_latencies`, the reusable step
that turns (DFG, per-kernel durations) into one end-to-end number.  The
serving layer's :class:`repro.serving.fleet.FleetService` calls it directly,
with durations coming from its batched prediction path.  Two composition
modes exist:

* ``"replay"`` — critical-path simulation of the execution order
  (Algorithm 2, the paper's method);
* ``"serial"`` — the serial-sum fallback: every kernel runs back to back on
  one queue, so the estimate is the sum of durations plus inter-kernel gaps.
  An upper bound on the replayed time, and exact on single-queue devices
  with linear graphs.

Device-specific replay behaviour: on accelerators with multiple GEMM engines
(HL-100 has 3) contraction nodes are split into ``gemm_engines`` parallel
sub-operators, each carrying 1/``gemm_engines`` of the predicted time.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.devices.simulator import DeviceSimulator
from repro.devices.spec import ACCEL, DeviceSpec, get_device
from repro.errors import ReplayError
from repro.graph.dfg import DFGNode, TIRDataFlowGraph, build_dfg
from repro.graph.model import ModelGraph
from repro.replay.replayer import ReplayResult, Replayer, ScheduledNode
from repro.tir.program import TensorProgram

# Operator families that run on GEMM/convolution engines (used for splitting
# nodes on multi-engine accelerators, Section 5.5).
_SPLITTABLE_OPS = {"conv2d", "dense", "batch_matmul", "attention_scores", "attention_context"}

COMPOSE_MODES = ("replay", "serial")

CostFn = Callable[[List[TensorProgram]], Dict[str, float]]


def cost_fn_from_model(model, device: Union[str, DeviceSpec]) -> CostFn:
    """Adapt anything with ``predict_programs(programs, device)`` into a cost_fn.

    Any :class:`repro.backends.CostModel` (CDMPP or a baseline) qualifies, so
    the replayer can be driven by every backend through one code path.
    """

    def cost_fn(programs: List[TensorProgram]) -> Dict[str, float]:
        predictions = model.predict_programs(programs, device)
        return {
            program.task.workload_key: float(value)
            for program, value in zip(programs, predictions)
        }

    return cost_fn


def _split_for_accelerator(dfg: TIRDataFlowGraph, device: DeviceSpec) -> TIRDataFlowGraph:
    """Split contraction nodes into per-engine sub-operators on accelerators."""
    engines = max(int(device.gemm_engines), 1)
    if device.taxonomy != ACCEL or engines <= 1:
        return dfg

    split = TIRDataFlowGraph(f"{dfg.name}@{device.name}")
    name_map: Dict[str, List[str]] = {}
    for name in dfg.topo_order():
        node = dfg.node(name)
        inputs = [sub for dep in node.inputs for sub in name_map[dep]]
        if node.program.task.op_type in _SPLITTABLE_OPS:
            sub_names = []
            for engine in range(engines):
                sub_name = f"{name}#engine{engine}"
                split.add_node(
                    DFGNode(
                        name=sub_name,
                        program=node.program,
                        inputs=list(inputs),
                        duration_s=node.duration_s / engines,
                        device_slot=engine,
                    )
                )
                sub_names.append(sub_name)
            name_map[name] = sub_names
        else:
            split.add_node(
                DFGNode(
                    name=name,
                    program=node.program,
                    inputs=list(inputs),
                    duration_s=node.duration_s,
                    device_slot=0,
                )
            )
            name_map[name] = [name]
    return split


def _serial_sum(dfg: TIRDataFlowGraph, gap_s: float) -> ReplayResult:
    """Serial-sum composition: kernels back to back on one execution queue."""
    timeline: Dict[str, ScheduledNode] = {}
    clock = 0.0
    for name in dfg.topo_order():
        node = dfg.node(name)
        end = clock + node.duration_s
        timeline[name] = ScheduledNode(name=name, start_s=clock, end_s=end, device_slot=0)
        clock = end + (node.gap_s or gap_s)
    return ReplayResult(iteration_time_s=float(clock), timeline=timeline)


def compose_latencies(
    dfg: TIRDataFlowGraph,
    durations: Dict[str, float],
    device: Union[str, DeviceSpec],
    gap_s: float = 2e-6,
    mode: str = "replay",
) -> ReplayResult:
    """Compose per-kernel latencies into an end-to-end model estimate.

    ``durations`` maps workload keys to predicted (or measured) seconds, one
    entry per unique kernel of ``dfg``.  ``mode="replay"`` runs the
    critical-path simulation of Algorithm 2 (splitting contraction nodes
    across GEMM engines on accelerators); ``mode="serial"`` is the serial-sum
    fallback that never parallelizes.  The returned
    :class:`~repro.replay.replayer.ReplayResult` reports ``durations`` per
    unique workload, pre-splitting.
    """
    if mode not in COMPOSE_MODES:
        raise ReplayError(f"unknown composition mode {mode!r}; expected one of {COMPOSE_MODES}")
    if len(dfg) == 0:
        raise ReplayError(f"cannot compose latencies of empty DFG {dfg.name!r}")
    device = get_device(device) if isinstance(device, str) else device
    dfg.assign_durations(durations, gap_s=gap_s)
    if mode == "serial":
        result = _serial_sum(dfg, gap_s)
    else:
        runnable = _split_for_accelerator(dfg, device)
        num_slots = device.gemm_engines if device.taxonomy == ACCEL else 1
        replayer = Replayer(num_device_slots=max(num_slots, 1), gap_s=gap_s)
        result = replayer.replay(runnable)
    # Report durations per unique workload (pre-splitting).
    result.durations = dict(durations)
    return result


def predict_end_to_end(
    model: Union[str, ModelGraph],
    device: Union[str, DeviceSpec],
    cost_fn: CostFn,
    gap_s: float = 2e-6,
    seed: int | str | None = 0,
    compose: str = "replay",
) -> ReplayResult:
    """Predict the end-to-end latency of ``model`` on ``device`` using ``cost_fn``.

    ``cost_fn`` receives the unique tensor programs of the model's DFG and
    returns predicted latency (seconds) keyed by workload key; the cost model
    is therefore queried only once per unique TIR kernel, as in the paper.
    Instead of a callable, any :class:`repro.backends.CostModel` may be
    passed directly (adapted via :func:`cost_fn_from_model`).  ``compose``
    picks the composition mode (see :func:`compose_latencies`).
    """
    from repro.graph.zoo import build_model

    device = get_device(device) if isinstance(device, str) else device
    if not callable(cost_fn) and hasattr(cost_fn, "predict_programs"):
        from repro.backends import ensure_model_level

        ensure_model_level(cost_fn, ReplayError)
        cost_fn = cost_fn_from_model(cost_fn, device)
    graph = model if isinstance(model, ModelGraph) else build_model(model)
    dfg = build_dfg(graph, target_kind=device.taxonomy, seed=seed)
    unique = dfg.unique_programs()
    durations = cost_fn(list(unique.values()))
    missing = set(unique) - set(durations)
    if missing:
        raise ReplayError(f"cost function did not return predictions for {sorted(missing)[:3]}")
    return compose_latencies(dfg, durations, device, gap_s, mode=compose)


def measure_end_to_end(
    model: Union[str, ModelGraph],
    device: Union[str, DeviceSpec],
    gap_s: float = 2e-6,
    seed: int | str | None = 0,
    compose: str = "replay",
) -> ReplayResult:
    """Ground-truth end-to-end latency using the device simulator as profiler."""
    from repro.graph.zoo import build_model

    device = get_device(device) if isinstance(device, str) else device
    graph = model if isinstance(model, ModelGraph) else build_model(model)
    dfg = build_dfg(graph, target_kind=device.taxonomy, seed=seed)
    simulator = DeviceSimulator(device, seed=seed)
    durations = {key: simulator.measure(program) for key, program in dfg.unique_programs().items()}
    return compose_latencies(dfg, durations, device, gap_s, mode=compose)
