"""End-to-end replay: simulate a model's execution from per-program latencies."""

from repro.replay.replayer import ReplayResult, Replayer
from repro.replay.e2e import (
    COMPOSE_MODES,
    compose_latencies,
    cost_fn_from_model,
    measure_end_to_end,
    predict_end_to_end,
)

__all__ = [
    "COMPOSE_MODES",
    "Replayer",
    "ReplayResult",
    "compose_latencies",
    "cost_fn_from_model",
    "predict_end_to_end",
    "measure_end_to_end",
]
