"""End-to-end replay: simulate a model's execution from per-program latencies."""

from repro.replay.replayer import ReplayResult, Replayer
from repro.replay.e2e import measure_end_to_end, predict_end_to_end

__all__ = ["Replayer", "ReplayResult", "predict_end_to_end", "measure_end_to_end"]
