"""The replayer: topological simulation of a TIR data-flow graph (Algorithm 2).

Given a DFG whose nodes carry durations (predicted or measured), the replayer
maintains one priority queue per device slot, repeatedly dequeues the ready
node with the smallest ready time, advances that slot's clock and releases
the node's successors.  The iteration time is the largest device clock when
the queues drain.  Multiple slots model devices that execute several kernels
concurrently (e.g. the three GEMM engines of HL-100, or multiple CUDA
streams).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReplayError
from repro.graph.dfg import TIRDataFlowGraph


@dataclass
class ScheduledNode:
    """Replay outcome of one DFG node."""

    name: str
    start_s: float
    end_s: float
    device_slot: int


@dataclass
class ReplayResult:
    """Outcome of one replay."""

    iteration_time_s: float
    timeline: Dict[str, ScheduledNode] = field(default_factory=dict)
    durations: Dict[str, float] = field(default_factory=dict)

    @property
    def critical_path_bound_s(self) -> float:
        """Longest chain of scheduled intervals (a lower bound on iteration time)."""
        return max((node.end_s for node in self.timeline.values()), default=0.0)


class Replayer:
    """Simulates the execution order of a TIR DFG (Algorithm 2)."""

    def __init__(self, num_device_slots: int = 1, gap_s: float = 0.0):
        if num_device_slots <= 0:
            raise ReplayError("num_device_slots must be positive")
        self.num_device_slots = int(num_device_slots)
        self.gap_s = float(gap_s)

    def replay(self, dfg: TIRDataFlowGraph) -> ReplayResult:
        """Simulate ``dfg`` and return the iteration time and per-node timeline."""
        if len(dfg) == 0:
            raise ReplayError("cannot replay an empty DFG")

        successors = dfg.successors()
        indegree = {name: 0 for name in dfg.nodes}
        for src, dsts in successors.items():
            for dst in dsts:
                indegree[dst] += 1

        ready_time = {name: 0.0 for name in dfg.nodes}
        device_time = [0.0] * self.num_device_slots
        # Per-slot priority queues keyed by (readyTime, insertion order).
        queues: List[List[Tuple[float, int, str]]] = [[] for _ in range(self.num_device_slots)]
        counter = 0
        for name, node in dfg.nodes.items():
            if indegree[name] == 0:
                slot = node.device_slot % self.num_device_slots
                heapq.heappush(queues[slot], (0.0, counter, name))
                counter += 1

        timeline: Dict[str, ScheduledNode] = {}
        scheduled = 0
        total = len(dfg)
        nodes = dfg.nodes
        while scheduled < total:
            # select(D): the device slot with the smallest deviceTime among
            # those with a non-empty queue.
            candidates = [slot for slot in range(self.num_device_slots) if queues[slot]]
            if not candidates:
                raise ReplayError("replay deadlocked: no ready nodes but DFG not fully scheduled")
            slot = min(candidates, key=lambda s: device_time[s])
            _, _, name = heapq.heappop(queues[slot])
            node = nodes[name]

            start = max(device_time[slot], ready_time[name])
            end = start + node.duration_s
            device_time[slot] = end + (node.gap_s or self.gap_s)
            timeline[name] = ScheduledNode(name=name, start_s=start, end_s=end, device_slot=slot)
            scheduled += 1

            for succ in successors[name]:
                indegree[succ] -= 1
                ready_time[succ] = max(ready_time[succ], device_time[slot])
                if indegree[succ] == 0:
                    succ_slot = nodes[succ].device_slot % self.num_device_slots
                    heapq.heappush(queues[succ_slot], (ready_time[succ], counter, succ))
                    counter += 1

        iteration_time = max(device_time)
        durations = {node.task_key: node.duration_s for node in nodes.values()}
        return ReplayResult(iteration_time_s=float(iteration_time), timeline=timeline, durations=durations)
