"""Dataset splitting: train/valid/test plus hold-out models.

The paper uses an 8:1:1 random split for pre-training and a hold-out set of
three networks (ResNet-50, MobileNet-V2, BERT-tiny) for cross-model
evaluation; cross-device experiments pre-train on the source devices'
training split and evaluate on the target device's test split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.profiler.records import MeasureRecord
from repro.utils.rng import new_rng


@dataclass
class DatasetSplits:
    """Train / validation / test / hold-out record lists for one device."""

    train: List[MeasureRecord]
    valid: List[MeasureRecord]
    test: List[MeasureRecord]
    holdout: List[MeasureRecord] = field(default_factory=list)
    holdout_models: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.train:
            raise DatasetError("training split is empty")
        if not self.test:
            raise DatasetError("test split is empty")

    @property
    def sizes(self) -> Dict[str, int]:
        """Number of records per split."""
        return {
            "train": len(self.train),
            "valid": len(self.valid),
            "test": len(self.test),
            "holdout": len(self.holdout),
        }

    def holdout_by_model(self) -> Dict[str, List[MeasureRecord]]:
        """Hold-out records grouped by source model."""
        grouped: Dict[str, List[MeasureRecord]] = {}
        for record in self.holdout:
            grouped.setdefault(record.model or "unknown", []).append(record)
        return grouped


def split_dataset(
    records: Sequence[MeasureRecord],
    ratios: Tuple[float, float, float] = (0.8, 0.1, 0.1),
    holdout_models: Sequence[str] = (),
    seed: int | str | None = 0,
    group_by_task: bool = False,
) -> DatasetSplits:
    """Split records into train/valid/test, excluding hold-out models first.

    The default is the paper's protocol: a record-level random 8:1:1 split
    (generalization to unseen *models* is evaluated separately through the
    hold-out networks).  With ``group_by_task=True`` all schedules of the
    same task land in the same split instead, which measures the harder
    generalization to entirely unseen tensor programs.
    """
    if abs(sum(ratios) - 1.0) > 1e-6:
        raise DatasetError(f"split ratios must sum to 1, got {ratios}")
    rng = new_rng(seed)
    holdout_set = set(holdout_models)

    holdout = [r for r in records if (r.model or "unknown") in holdout_set]
    remaining = [r for r in records if (r.model or "unknown") not in holdout_set]
    if not remaining:
        raise DatasetError("no records left after removing hold-out models")

    if group_by_task:
        task_keys = sorted({r.task_key for r in remaining})
        permuted = [task_keys[i] for i in rng.permutation(len(task_keys))]
        n_train = max(1, int(round(ratios[0] * len(permuted))))
        n_valid = max(1, int(round(ratios[1] * len(permuted)))) if len(permuted) > 2 else 0
        train_keys = set(permuted[:n_train])
        valid_keys = set(permuted[n_train : n_train + n_valid])
        test_keys = set(permuted[n_train + n_valid :]) or {permuted[-1]}
        train = [r for r in remaining if r.task_key in train_keys]
        valid = [r for r in remaining if r.task_key in valid_keys]
        test = [r for r in remaining if r.task_key in test_keys]
    else:
        indices = rng.permutation(len(remaining))
        n_train = max(1, int(round(ratios[0] * len(remaining))))
        n_valid = int(round(ratios[1] * len(remaining)))
        train = [remaining[i] for i in indices[:n_train]]
        valid = [remaining[i] for i in indices[n_train : n_train + n_valid]]
        test = [remaining[i] for i in indices[n_train + n_valid :]]

    if not test:
        # Tiny datasets can end up with an empty test split; borrow from train.
        test = train[-max(1, len(train) // 10) :]

    return DatasetSplits(
        train=train,
        valid=valid,
        test=test,
        holdout=holdout,
        holdout_models=tuple(holdout_models),
    )
