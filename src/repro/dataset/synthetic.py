"""Synthetic pseudo-models: extra task diversity beyond the model zoo.

Tenset draws tasks from 120 networks.  The zoo implements the headline
architectures; this module generates additional pseudo-models (random CNN,
MLP, transformer and RNN variants with randomised shapes) so the synthetic
dataset exhibits a comparably broad distribution of operator shapes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.ops import (
    attention_context,
    attention_scores,
    batch_norm_inference,
    conv2d,
    dense,
    depthwise_conv2d,
    elementwise_binary,
    elementwise_unary,
    embedding_lookup,
    global_avg_pool2d,
    layer_norm,
    lstm_cell,
    pool2d,
    softmax,
)
from repro.tir.task import Task
from repro.utils.rng import new_rng, spawn_rng

_FAMILIES = ("cnn", "mlp", "transformer", "rnn")


def _pow2(rng: np.random.Generator, low: int, high: int) -> int:
    """Sample a power of two in [low, high]."""
    exponents = [e for e in range(1, 14) if low <= 2**e <= high]
    return int(2 ** rng.choice(exponents))


def _cnn_tasks(name: str, rng: np.random.Generator) -> List[Task]:
    tasks: List[Task] = []
    batch = int(rng.choice([1, 2, 4, 8]))
    resolution = int(rng.choice([28, 32, 56, 64]))
    channels = _pow2(rng, 16, 128)
    depth = int(rng.integers(4, 9))
    for layer in range(depth):
        kernel = int(rng.choice([1, 3, 5]))
        stride = int(rng.choice([1, 1, 2]))
        out_channels = min(_pow2(rng, 16, 256), 4 * channels)
        if rng.random() < 0.25:
            tasks.append(
                depthwise_conv2d(batch, channels, resolution, resolution, kernel=3,
                                 stride=stride, padding=1, model=name)
            )
        else:
            tasks.append(
                conv2d(batch, channels, out_channels, resolution, resolution, kernel=kernel,
                       stride=stride, padding=kernel // 2,
                       activation="relu" if rng.random() < 0.7 else None, model=name)
            )
            channels = out_channels
        if stride == 2:
            resolution = max(resolution // 2, 4)
        if rng.random() < 0.3:
            tasks.append(batch_norm_inference(batch, channels, resolution, resolution, model=name))
        if rng.random() < 0.2:
            tasks.append(pool2d(batch, channels, resolution, resolution, model=name))
            resolution = max(resolution // 2, 4)
        if rng.random() < 0.2:
            tasks.append(
                elementwise_binary((batch, channels, resolution, resolution), "add", model=name)
            )
    tasks.append(global_avg_pool2d(batch, channels, resolution, resolution, model=name))
    tasks.append(dense(batch, channels, int(rng.choice([10, 100, 1000])), model=name))
    return tasks


def _mlp_tasks(name: str, rng: np.random.Generator) -> List[Task]:
    tasks: List[Task] = []
    batch = int(rng.choice([1, 8, 32, 64, 128]))
    width = _pow2(rng, 128, 4096)
    depth = int(rng.integers(3, 7))
    in_features = _pow2(rng, 64, 2048)
    for layer in range(depth):
        activation = str(rng.choice(["relu", "gelu", "tanh"])) if layer < depth - 1 else None
        tasks.append(dense(batch, in_features, width, activation=activation, model=name))
        in_features = width
        if rng.random() < 0.3:
            tasks.append(elementwise_unary((batch, width), "sigmoid", model=name))
    return tasks


def _transformer_tasks(name: str, rng: np.random.Generator) -> List[Task]:
    tasks: List[Task] = []
    batch = int(rng.choice([1, 2, 4]))
    seq = int(rng.choice([64, 128, 256, 512]))
    hidden = _pow2(rng, 128, 1024)
    heads = int(rng.choice([2, 4, 8, 12]))
    head_dim = max(hidden // heads, 16)
    tokens = batch * seq
    tasks.append(embedding_lookup(tokens, int(rng.choice([10_000, 30_000, 50_000])), hidden, model=name))
    tasks.append(layer_norm(tokens, hidden, model=name))
    tasks.append(dense(tokens, hidden, 3 * hidden, model=name))
    tasks.append(attention_scores(batch * heads, seq, head_dim, model=name))
    tasks.append(softmax(batch * heads * seq, seq, model=name))
    tasks.append(attention_context(batch * heads, seq, head_dim, model=name))
    tasks.append(dense(tokens, hidden, hidden, model=name))
    ffn = int(rng.choice([2, 4])) * hidden
    tasks.append(dense(tokens, hidden, ffn, activation="gelu", model=name))
    tasks.append(dense(tokens, ffn, hidden, model=name))
    tasks.append(elementwise_binary((tokens, hidden), "add", model=name))
    return tasks


def _rnn_tasks(name: str, rng: np.random.Generator) -> List[Task]:
    tasks: List[Task] = []
    batch = int(rng.choice([1, 4, 16, 32]))
    hidden = _pow2(rng, 64, 512)
    vocab = int(rng.choice([5_000, 10_000, 30_000]))
    tasks.append(embedding_lookup(batch * 8, vocab, hidden, model=name))
    for _ in range(int(rng.integers(1, 4))):
        tasks.append(lstm_cell(batch, hidden, hidden, model=name))
    tasks.append(dense(batch, hidden, vocab, model=name))
    return tasks


_FAMILY_BUILDERS = {
    "cnn": _cnn_tasks,
    "mlp": _mlp_tasks,
    "transformer": _transformer_tasks,
    "rnn": _rnn_tasks,
}


def synthetic_model_tasks(
    num_models: int,
    seed: int | str | None = 0,
    families: Optional[List[str]] = None,
) -> Dict[str, List[Task]]:
    """Generate ``num_models`` pseudo-models and return their tasks by model name.

    Model names encode the family (``"synthetic_cnn_3"``), so cross-model
    experiments can hold out whole families if desired.
    """
    rng = new_rng(seed)
    families = families or list(_FAMILIES)
    result: Dict[str, List[Task]] = {}
    for index in range(num_models):
        family = families[index % len(families)]
        name = f"synthetic_{family}_{index}"
        model_rng = spawn_rng(rng, "synthetic-model", name)
        result[name] = _FAMILY_BUILDERS[family](name, model_rng)
    return result
