"""Generation of the Tenset-like multi-device dataset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.dataset.synthetic import synthetic_model_tasks
from repro.devices.spec import DeviceSpec, get_device
from repro.graph.partition import tasks_by_model
from repro.graph.zoo import list_models
from repro.profiler.profiler import Profiler
from repro.profiler.records import MeasureRecord
from repro.tir.task import Task
from repro.utils.rng import new_rng, spawn_rng


@dataclass(frozen=True)
class DatasetConfig:
    """Knobs controlling the size and composition of the synthetic dataset.

    The defaults are the "small" scale used by the test suite; benchmark
    drivers scale them up or down via :mod:`repro.core.scale`.
    """

    devices: Tuple[str, ...] = ("t4", "k80", "epyc-7452")
    zoo_models: Tuple[str, ...] = ("resnet50", "mobilenet_v2", "bert_tiny")
    num_synthetic_models: int = 4
    schedules_per_task: int = 6
    batch_size: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.schedules_per_task <= 0:
            raise DatasetError("schedules_per_task must be positive")
        unknown = set(self.zoo_models) - set(list_models())
        if unknown:
            raise DatasetError(f"unknown zoo models in config: {sorted(unknown)}")


class TensetDataset:
    """A collection of measured records grouped by device.

    The same tasks (and the same sampled schedules) are measured on every
    device, mirroring Tenset's protocol and enabling cross-device learning
    where source and target devices share tensor programs.
    """

    def __init__(self, records_by_device: Mapping[str, Sequence[MeasureRecord]],
                 tasks_by_model_name: Mapping[str, Sequence[Task]]):
        self._records: Dict[str, List[MeasureRecord]] = {
            device: list(records) for device, records in records_by_device.items()
        }
        self._tasks_by_model: Dict[str, List[Task]] = {
            model: list(tasks) for model, tasks in tasks_by_model_name.items()
        }
        for device, records in self._records.items():
            if not records:
                raise DatasetError(f"device {device!r} has no records")

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def devices(self) -> List[str]:
        """Devices present in the dataset."""
        return list(self._records)

    @property
    def models(self) -> List[str]:
        """Model (domain) names present in the dataset."""
        return list(self._tasks_by_model)

    def records(self, device: str) -> List[MeasureRecord]:
        """All records measured on ``device``."""
        try:
            return list(self._records[device])
        except KeyError as exc:
            raise DatasetError(
                f"device {device!r} not in dataset (has {self.devices})"
            ) from exc

    def all_records(self) -> List[MeasureRecord]:
        """All records across devices."""
        result: List[MeasureRecord] = []
        for records in self._records.values():
            result.extend(records)
        return result

    def records_by_model(self, device: str) -> Dict[str, List[MeasureRecord]]:
        """Records on ``device`` grouped by source model."""
        grouped: Dict[str, List[MeasureRecord]] = {}
        for record in self.records(device):
            grouped.setdefault(record.model or "unknown", []).append(record)
        return grouped

    def tasks_of_model(self, model: str) -> List[Task]:
        """Unique tasks contributed by ``model``."""
        try:
            return list(self._tasks_by_model[model])
        except KeyError as exc:
            raise DatasetError(f"model {model!r} not in dataset (has {self.models})") from exc

    def tasks(self) -> List[Task]:
        """All unique tasks in the dataset."""
        seen: Dict[str, Task] = {}
        for tasks in self._tasks_by_model.values():
            for task in tasks:
                seen.setdefault(task.workload_key, task)
        return list(seen.values())

    def num_records(self, device: Optional[str] = None) -> int:
        """Number of records on one device or in total."""
        if device is not None:
            return len(self._records.get(device, []))
        return sum(len(records) for records in self._records.values())

    def latencies(self, device: str) -> np.ndarray:
        """Latency labels (seconds) of all records on ``device``."""
        return np.asarray([record.latency_s for record in self.records(device)], dtype=np.float64)

    def summary(self) -> Dict[str, object]:
        """Compact dataset statistics (used by the Table 2 benchmark)."""
        return {
            "devices": {device: len(records) for device, records in self._records.items()},
            "models": {model: len(tasks) for model, tasks in self._tasks_by_model.items()},
            "num_tasks": len(self.tasks()),
            "num_records": self.num_records(),
        }

    def __repr__(self) -> str:
        return (
            f"TensetDataset(devices={len(self._records)}, models={len(self._tasks_by_model)}, "
            f"records={self.num_records()})"
        )


def _collect_tasks(config: DatasetConfig) -> Dict[str, List[Task]]:
    by_model: Dict[str, List[Task]] = {}
    if config.zoo_models:
        by_model.update(tasks_by_model(list(config.zoo_models), batch_size=config.batch_size))
    if config.num_synthetic_models > 0:
        synthetic = synthetic_model_tasks(config.num_synthetic_models, seed=config.seed)
        # Deduplicate synthetic tasks within each pseudo-model.
        for model, tasks in synthetic.items():
            unique: Dict[str, Task] = {}
            for task in tasks:
                unique.setdefault(task.workload_key, task)
            by_model[model] = list(unique.values())
    if not by_model:
        raise DatasetError("dataset config selects no models at all")
    return by_model


def generate_dataset(config: Optional[DatasetConfig] = None) -> TensetDataset:
    """Generate the synthetic Tenset-like dataset described by ``config``.

    For every task the same ``schedules_per_task`` random schedules are
    measured on every configured device (schedules are sampled per device
    taxonomy so GPU-style and CPU-style annotations both appear).
    """
    if config is None:
        config = DatasetConfig()
    rng = new_rng(config.seed)
    tasks_by_model_name = _collect_tasks(config)

    records_by_device: Dict[str, List[MeasureRecord]] = {}
    for device_name in config.devices:
        device: DeviceSpec = get_device(device_name)
        profiler = Profiler(device, seed=config.seed)
        device_records: List[MeasureRecord] = []
        for model, tasks in tasks_by_model_name.items():
            for task in tasks:
                # The schedule RNG depends only on the task (not the device),
                # so every device measures the same set of tensor programs.
                task_rng = spawn_rng(new_rng(config.seed), "schedules", task.workload_key)
                device_records.extend(
                    profiler.profile_task(task, num_schedules=config.schedules_per_task, rng=task_rng)
                )
        records_by_device[device.name] = device_records
    return TensetDataset(records_by_device, tasks_by_model_name)
