"""Tenset-like dataset substrate: generation, splitting and grouping.

The real Tenset contains ~50M measured records of tensor programs on a fleet
of devices.  This package generates a structurally equivalent (but much
smaller) dataset on the simulated devices: tasks extracted from the model zoo
plus synthetic pseudo-models, several random schedules per task, and one
simulated measurement per (program, device) pair.
"""

from repro.dataset.tenset import DatasetConfig, TensetDataset, generate_dataset
from repro.dataset.splits import DatasetSplits, split_dataset
from repro.dataset.synthetic import synthetic_model_tasks

__all__ = [
    "DatasetConfig",
    "TensetDataset",
    "generate_dataset",
    "DatasetSplits",
    "split_dataset",
    "synthetic_model_tasks",
]
