"""The Habitat baseline: per-operator MLPs plus roofline wave-scaling.

Habitat predicts an operator's latency on a target GPU by (1) scaling a
measured latency from a source GPU with a roofline model (ratio of compute
throughput or memory bandwidth, depending on which side of the ridge point
the kernel sits), and (2) for the handful of "important" operator types,
refining with a small per-operator-type MLP over operator-level features.
It supports GPUs only and does not see the tensor-program structure, so
distinct schedules of the same operator collapse onto the same features --
the generalisation weakness the paper points out.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.base import BaselineCostModel
from repro.devices.spec import GPU, DeviceSpec, get_device
from repro.errors import TrainingError
from repro.nn.losses import mse_loss
from repro.nn.mlp import MLP
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.profiler.records import MeasureRecord
from repro.utils.rng import new_rng

# Operator families Habitat builds dedicated MLPs for (conv2d, lstm, bmm, linear).
_MLP_OPS = ("conv2d", "lstm_cell", "batch_matmul", "dense")


def _op_features(record: MeasureRecord) -> np.ndarray:
    """Operator-level features: shape parameters, no schedule information."""
    task = record.program.task
    params = sorted(task.params.items())
    values = [np.log1p(float(v)) for _, v in params][:8]
    values += [0.0] * (8 - len(values))
    values.append(np.log1p(task.naive_flops()))
    values.append(np.log1p(task.spatial_extent))
    values.append(np.log1p(task.reduce_extent))
    return np.asarray(values, dtype=np.float64)


def roofline_scale(latency_s: float, flops: float, bytes_moved: float,
                   source: DeviceSpec, target: DeviceSpec) -> float:
    """Scale a latency between devices with the roofline model.

    Compute-bound kernels scale with peak FLOPS, memory-bound kernels with
    memory bandwidth (Habitat's "wave scaling" simplification).
    """
    intensity = flops / max(bytes_moved, 1.0)
    if intensity >= source.ridge_intensity:
        ratio = source.peak_gflops / target.peak_gflops
    else:
        ratio = source.memory_bandwidth_gbps / target.memory_bandwidth_gbps
    return latency_s * ratio


class HabitatCostModel(BaselineCostModel):
    """Habitat-style predictor: roofline scaling + per-op MLP refinement."""

    name = "habitat"

    def __init__(self, target_device: str, source_device: Optional[str] = None,
                 epochs: int = 40, seed: int = 0):
        super().__init__()
        self.target = get_device(target_device)
        if self.target.taxonomy != GPU:
            raise TrainingError("Habitat only supports GPU target devices")
        self.source: Optional[DeviceSpec] = get_device(source_device) if source_device else None
        self.epochs = int(epochs)
        self._rng = new_rng(("habitat", seed))
        self._mlps: Dict[str, MLP] = {}
        self._source_latency: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def _fit(self, records: Sequence[MeasureRecord]) -> None:
        gpu_records = [r for r in records if get_device(r.device).taxonomy == GPU]
        if not gpu_records:
            raise TrainingError("Habitat needs GPU source measurements")
        if self.source is None:
            self.source = get_device(gpu_records[0].device)

        # Remember the mean measured latency per workload on the source GPU
        # (the quantity Habitat scales to the target GPU).
        sums: Dict[str, List[float]] = {}
        for record in gpu_records:
            if record.device == self.source.name:
                sums.setdefault(record.task_key, []).append(record.latency_s)
        self._source_latency = {key: float(np.mean(vals)) for key, vals in sums.items()}

        # Per-op-type MLPs trained to predict log-latency on the source GPU.
        by_op: Dict[str, List[MeasureRecord]] = {}
        for record in gpu_records:
            if record.op_type in _MLP_OPS:
                by_op.setdefault(record.op_type, []).append(record)
        for op_type, op_records in by_op.items():
            mlp = MLP(11, [32, 32], 1, activation="relu", rng=self._rng)
            optimizer = Adam(mlp.parameters(), lr=3e-3)
            x = Tensor(np.stack([_op_features(r) for r in op_records]))
            y = Tensor(np.log(np.asarray([[r.latency_s] for r in op_records])))
            for _ in range(self.epochs):
                optimizer.zero_grad()
                loss = mse_loss(mlp(x), y)
                loss.backward()
                optimizer.step()
            self._mlps[op_type] = mlp

    def _predict(self, records: Sequence[MeasureRecord]) -> np.ndarray:
        assert self.source is not None
        out = np.empty(len(records), dtype=np.float64)
        for index, record in enumerate(records):
            stats = record.program.stats
            base = self._source_latency.get(record.task_key)
            if base is None and record.op_type in self._mlps:
                with no_grad():
                    base = float(
                        np.exp(self._mlps[record.op_type](Tensor(_op_features(record).reshape(1, -1))).item())
                    )
            if base is None:
                # Fall back to a pure roofline estimate on the source device.
                base = max(
                    stats.total_flops / (self.source.peak_gflops * 1e9 * 0.5),
                    stats.total_bytes / (self.source.bytes_per_second * 0.5),
                ) + self.source.launch_overhead_us * 1e-6
            out[index] = roofline_scale(
                base, stats.total_flops, stats.total_bytes, self.source, self.target
            )
        return out
