"""The TLP baseline: schedule-primitive features with per-device heads.

TLP avoids feature engineering on the tensor program itself and instead
embeds the *schedule primitive sequence*; a shared backbone feeds one
prediction head per device, and the model is trained to rank/score the
*relative* cost of candidates of the same task.  Because it never sees
absolute magnitudes, converting its scores to absolute latency requires a
per-dataset calibration constant -- which is why the paper reports large
errors for TLP on absolute-time prediction while it remains useful for
ranking.  This implementation reproduces exactly that behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.base import BaselineCostModel
from repro.baselines.features import schedule_primitive_features
from repro.errors import TrainingError
from repro.nn.layers import Linear
from repro.nn.losses import mse_loss
from repro.nn.mlp import MLP
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.profiler.records import MeasureRecord
from repro.utils.rng import new_rng


class _TLPNetwork(Module):
    """Shared backbone + one linear head per device."""

    def __init__(self, in_features: int, hidden: int, devices: Sequence[str], rng=None):
        super().__init__()
        self.backbone = MLP(in_features, [hidden, hidden], hidden, activation="relu", rng=rng)
        self.heads = {device: Linear(hidden, 1, rng=rng) for device in devices}
        # Expose head parameters for the optimizer (dict values are not
        # discovered automatically by Module's attribute scan).
        self.head_modules = list(self.heads.values())

    def forward(self, x: Tensor, device: str) -> Tensor:  # noqa: D102
        hidden = self.backbone(x)
        head = self.heads.get(device)
        if head is None:
            # Unseen device: average the existing heads (TLP's cross-device
            # transfer would fine-tune a new head; without target data the
            # average is the neutral choice).
            outputs = [h(hidden) for h in self.heads.values()]
            total = outputs[0]
            for other in outputs[1:]:
                total = total + other
            return total * (1.0 / len(outputs))
        return head(hidden)


class TLPCostModel(BaselineCostModel):
    """Schedule-primitive-based relative-cost predictor (TLP)."""

    name = "tlp"

    def __init__(self, hidden: int = 32, epochs: int = 60, learning_rate: float = 3e-3, seed: int = 0):
        super().__init__()
        self.hidden = int(hidden)
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self._rng = new_rng(("tlp", seed))
        self.model: Optional[_TLPNetwork] = None
        self._calibration_s = 1e-4  # global score -> seconds conversion

    # ------------------------------------------------------------------
    def _relative_targets(self, records: Sequence[MeasureRecord]) -> np.ndarray:
        """Per-task relative cost: latency divided by the task's best latency."""
        best: Dict[str, float] = {}
        for record in records:
            best[record.task_key] = min(best.get(record.task_key, np.inf), record.latency_s)
        return np.asarray([record.latency_s / best[record.task_key] for record in records])

    def _fit(self, records: Sequence[MeasureRecord]) -> None:
        devices = sorted({record.device for record in records})
        features = np.stack([schedule_primitive_features(r) for r in records])
        targets = np.log(self._relative_targets(records))
        self.model = _TLPNetwork(features.shape[1], self.hidden, devices, rng=self._rng)
        params = self.model.backbone.parameters()
        for head in self.model.head_modules:
            params.extend(head.parameters())
        optimizer = Adam(params, lr=self.learning_rate)

        by_device: Dict[str, np.ndarray] = {
            device: np.flatnonzero(np.asarray([r.device == device for r in records]))
            for device in devices
        }
        for _ in range(self.epochs):
            for device, indices in by_device.items():
                if indices.size == 0:
                    continue
                batch = self._rng.choice(indices, size=min(indices.size, 128), replace=False)
                optimizer.zero_grad()
                pred = self.model(Tensor(features[batch]), device).reshape(-1)
                loss = mse_loss(pred, Tensor(targets[batch]))
                loss.backward()
                optimizer.step()
                self._samples_processed += len(batch)

        # A single global calibration constant from score space to seconds --
        # the best an absolute-time consumer of TLP can do without re-labeling.
        self._calibration_s = float(np.mean([record.latency_s for record in records]))

    def _predict(self, records: Sequence[MeasureRecord]) -> np.ndarray:
        if self.model is None:
            raise TrainingError("TLP predict called before fit")
        features = np.stack([schedule_primitive_features(r) for r in records])
        out = np.empty(len(records), dtype=np.float64)
        with no_grad():
            for index, record in enumerate(records):
                score = float(self.model(Tensor(features[index].reshape(1, -1)), record.device).item())
                out[index] = np.exp(score) * self._calibration_s
        return out

    def predict_relative(self, records: Sequence[MeasureRecord]) -> np.ndarray:
        """Relative cost scores (what TLP is actually designed to produce)."""
        if self.model is None:
            raise TrainingError("TLP predict called before fit")
        features = np.stack([schedule_primitive_features(r) for r in records])
        out = np.empty(len(records), dtype=np.float64)
        with no_grad():
            for index, record in enumerate(records):
                out[index] = np.exp(
                    float(self.model(Tensor(features[index].reshape(1, -1)), record.device).item())
                )
        return out
