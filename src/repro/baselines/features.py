"""Flattened per-program feature vectors used by the non-AST baselines.

XGBoost, Habitat and TLP do not consume Compact ASTs; they use hand-crafted
aggregate features: program-level statistics (FLOPs, bytes, loop structure),
schedule-primitive counts and device specifications.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.devices.spec import get_device
from repro.profiler.records import MeasureRecord
from repro.tir.program import TensorProgram

# Stable operator-type vocabulary for one-hot features (unknown types map to
# the last bucket).
OP_TYPE_VOCAB = (
    "conv2d",
    "depthwise_conv2d",
    "dense",
    "batch_matmul",
    "pool2d",
    "global_avg_pool2d",
    "batch_norm",
    "layer_norm",
    "softmax",
    "attention_scores",
    "attention_context",
    "lstm_cell",
    "reduce",
    "embedding_lookup",
)


def _log1p(value: float) -> float:
    return float(np.log1p(max(value, 0.0)))


def flat_feature_vector(
    program: TensorProgram,
    device: str | None = None,
    include_device: bool = True,
) -> np.ndarray:
    """One flat feature vector for a tensor program (plus optional device)."""
    stats = program.stats
    schedule = program.schedule
    primitive_counts = schedule.primitive_counts()
    annotation_counts = schedule.annotation_counts()
    mean_factor, max_factor = schedule.split_factor_stats()

    op_onehot = [0.0] * (len(OP_TYPE_VOCAB) + 1)
    try:
        op_onehot[OP_TYPE_VOCAB.index(program.task.op_type)] = 1.0
    except ValueError:
        op_onehot[-1] = 1.0

    features: List[float] = [
        _log1p(stats.total_flops),
        _log1p(stats.total_bytes_read),
        _log1p(stats.total_bytes_written),
        _log1p(stats.arithmetic_intensity),
        float(stats.num_leaves),
        float(stats.num_ast_nodes),
        float(stats.max_loop_depth),
        _log1p(stats.parallel_extent),
        _log1p(stats.vectorized_extent),
        _log1p(stats.unrolled_extent),
        float(stats.num_cache_stages),
        float(stats.num_intrinsic_calls),
        _log1p(program.task.spatial_extent),
        _log1p(program.task.reduce_extent),
        float(len(program.task.epilogues)),
        float(primitive_counts["split"]),
        float(primitive_counts["fuse"]),
        float(primitive_counts["reorder"]),
        float(primitive_counts["annotate"]),
        float(primitive_counts["cache"]),
        float(annotation_counts["parallel"]),
        float(annotation_counts["vectorize"]),
        float(annotation_counts["unroll"]),
        float(mean_factor),
        float(max_factor),
    ]
    features.extend(op_onehot)
    if include_device and device is not None:
        features.extend(get_device(device).feature_vector().tolist())
    return np.asarray(features, dtype=np.float64)


def flat_features(
    records: Sequence[MeasureRecord],
    include_device: bool = True,
) -> np.ndarray:
    """Stack flat feature vectors for a list of records."""
    return np.stack(
        [
            flat_feature_vector(record.program, record.device, include_device=include_device)
            for record in records
        ],
        axis=0,
    )


def schedule_primitive_features(record: MeasureRecord) -> np.ndarray:
    """TLP-style features: schedule primitives + workload size, no program AST."""
    program = record.program
    schedule = program.schedule
    primitive_counts = schedule.primitive_counts()
    annotation_counts = schedule.annotation_counts()
    mean_factor, max_factor = schedule.split_factor_stats()
    return np.asarray(
        [
            float(len(schedule)),
            float(primitive_counts["split"]),
            float(primitive_counts["fuse"]),
            float(primitive_counts["reorder"]),
            float(primitive_counts["annotate"]),
            float(primitive_counts["cache"]),
            float(annotation_counts["parallel"]),
            float(annotation_counts["vectorize"]),
            float(annotation_counts["unroll"]),
            float(mean_factor),
            float(max_factor),
            _log1p(program.task.spatial_extent),
            _log1p(program.task.reduce_extent),
            float(len(program.task.epilogues)),
        ],
        dtype=np.float64,
    )
