"""Baseline cost models the paper compares against.

* :mod:`repro.baselines.xgboost` -- gradient-boosted regression trees on
  flattened program features (AutoTVM/Ansor's cost model family).
* :mod:`repro.baselines.tiramisu` -- a recursive LSTM over the raw
  (irregular) AST, trained with a MAPE objective, as in Tiramisu.
* :mod:`repro.baselines.habitat` -- per-operator-type MLPs plus roofline
  wave-scaling between GPUs (GPU-only, like Habitat).
* :mod:`repro.baselines.tlp` -- schedule-primitive features with a shared
  backbone and per-device heads predicting *relative* cost, as in TLP.
"""

from repro.baselines.base import BaselineCostModel
from repro.baselines.features import flat_feature_vector, flat_features
from repro.baselines.xgboost import XGBoostCostModel
from repro.baselines.tiramisu import TiramisuCostModel
from repro.baselines.habitat import HabitatCostModel
from repro.baselines.tlp import TLPCostModel
from repro.baselines.registry import (
    BASELINE_ALIASES,
    BASELINE_CAPABILITIES,
    RUNNABLE_BASELINES,
    baseline_capabilities,
    canonical_baseline_name,
    make_baseline,
)

__all__ = [
    "BaselineCostModel",
    "flat_feature_vector",
    "flat_features",
    "XGBoostCostModel",
    "TiramisuCostModel",
    "HabitatCostModel",
    "TLPCostModel",
    "BASELINE_ALIASES",
    "BASELINE_CAPABILITIES",
    "RUNNABLE_BASELINES",
    "baseline_capabilities",
    "canonical_baseline_name",
    "make_baseline",
]
