"""The Tiramisu baseline: a recursive LSTM over the raw (irregular) AST.

Tiramisu's cost model embeds each computation node, then recursively folds
children into their parent loop node with an LSTM, finally regressing from
the root embedding.  Because the recursion follows the AST structure, only
programs with identical AST shapes can share a batch; with the irregular ASTs
of a Tenset-like dataset this forces tiny effective batches and slow
training -- exactly the weakness the paper highlights, which the training
throughput comparison (Fig. 6) reproduces.

The model is trained with a MAPE objective on the latency in milliseconds
(Tiramisu's default is relative-speedup MAPE; absolute-latency MAPE is the
closest equivalent for this dataset).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import BaselineCostModel
from repro.features.compact_ast import extract_compact_ast
from repro.nn.layers import Linear
from repro.nn.lstm import LSTM
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, concatenate, no_grad
from repro.profiler.records import MeasureRecord
from repro.tir.ast import ASTNode, build_ast
from repro.utils.rng import new_rng


class _RecursiveASTModel(Module):
    """Recursive LSTM aggregation over AST nodes."""

    def __init__(self, leaf_dim: int, hidden: int = 32, rng=None):
        super().__init__()
        self.leaf_embed = Linear(leaf_dim, hidden, rng=rng)
        self.loop_embed = Linear(2, hidden, rng=rng)
        self.child_lstm = LSTM(hidden, hidden, rng=rng)
        self.combine = Linear(2 * hidden, hidden, rng=rng)
        self.regressor = Linear(hidden, 1, rng=rng)
        self.hidden = hidden

    def embed_node(self, node: ASTNode, leaf_vectors: List[np.ndarray], cursor: List[int]) -> Tensor:
        """Recursively embed one AST node (depth-first, leaves consume vectors)."""
        if node.is_leaf:
            vector = leaf_vectors[cursor[0]]
            cursor[0] += 1
            return self.leaf_embed(Tensor(vector.reshape(1, -1))).tanh()
        loop_features = Tensor(np.asarray([[np.log1p(node.extent), float(len(node.children))]]))
        own = self.loop_embed(loop_features).tanh()
        if not node.children:
            return own
        child_embeddings = [self.embed_node(child, leaf_vectors, cursor) for child in node.children]
        folded, _ = self.child_lstm(child_embeddings)
        return self.combine(concatenate([own, folded], axis=-1)).tanh()

    def forward(self, root: ASTNode, leaf_vectors: List[np.ndarray]) -> Tensor:  # noqa: D102
        cursor = [0]
        embedding = self.embed_node(root, leaf_vectors, cursor)
        return self.regressor(embedding).reshape(-1)


class TiramisuCostModel(BaselineCostModel):
    """Recursive-LSTM latency predictor in the style of Tiramisu."""

    name = "tiramisu"

    def __init__(self, hidden: int = 32, epochs: int = 3, learning_rate: float = 1e-3,
                 max_train_samples: int = 400, seed: int = 0):
        super().__init__()
        self.hidden = int(hidden)
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.max_train_samples = int(max_train_samples)
        self._rng = new_rng(("tiramisu", seed))
        self.model: Optional[_RecursiveASTModel] = None
        self._scale = 1e3  # model latencies in milliseconds

    # ------------------------------------------------------------------
    def _prepare(self, record: MeasureRecord) -> Tuple[ASTNode, List[np.ndarray]]:
        compact = extract_compact_ast(record.program)
        root = build_ast(record.program)
        vectors = [compact.computation_vectors[i] for i in range(compact.num_leaves)]
        return root, vectors

    def _fit(self, records: Sequence[MeasureRecord]) -> None:
        leaf_dim = extract_compact_ast(records[0].program).computation_vectors.shape[1]
        self.model = _RecursiveASTModel(leaf_dim, hidden=self.hidden, rng=self._rng)
        optimizer = Adam(self.model.parameters(), lr=self.learning_rate)

        # Sub-sample the training set: the per-sample recursion is the whole
        # point of the throughput comparison, and it is genuinely slow.
        records = list(records)
        if len(records) > self.max_train_samples:
            idx = self._rng.choice(len(records), size=self.max_train_samples, replace=False)
            records = [records[i] for i in idx]
        prepared = [self._prepare(record) for record in records]
        targets = [record.latency_s * self._scale for record in records]

        for _ in range(self.epochs):
            order = self._rng.permutation(len(prepared))
            for index in order:
                root, vectors = prepared[index]
                target = targets[index]
                optimizer.zero_grad()
                pred = self.model(root, vectors)
                # MAPE objective, Tiramisu's default.
                loss = ((pred - target).abs() / (abs(target) + 1e-9)).mean()
                loss.backward()
                optimizer.clip_grad_norm(5.0)
                optimizer.step()
                self._samples_processed += 1

    def _predict(self, records: Sequence[MeasureRecord]) -> np.ndarray:
        assert self.model is not None
        out = np.empty(len(records), dtype=np.float64)
        with no_grad():
            for index, record in enumerate(records):
                root, vectors = self._prepare(record)
                out[index] = float(self.model(root, vectors).item()) / self._scale
        return out
