"""Baseline registry and the Table 1 capability matrix."""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.base import BaselineCostModel
from repro.baselines.habitat import HabitatCostModel
from repro.baselines.tiramisu import TiramisuCostModel
from repro.baselines.tlp import TLPCostModel
from repro.baselines.xgboost import XGBoostCostModel
from repro.errors import TrainingError

# Table 1 of the paper: which capabilities each predictor family offers.
# Keys: absolute_time, model_level, op_level, cross_device.
BASELINE_CAPABILITIES: Dict[str, Dict[str, bool]] = {
    "autotvm_xgboost": {
        "absolute_time": False,
        "model_level": True,
        "op_level": True,
        "cross_device": False,
    },
    "tiramisu": {
        "absolute_time": False,
        "model_level": False,
        "op_level": True,
        "cross_device": False,
    },
    "kaufman_tpu": {
        "absolute_time": True,
        "model_level": True,
        "op_level": True,
        "cross_device": False,
    },
    "metatune": {
        "absolute_time": True,
        "model_level": False,  # CNNs only
        "op_level": False,  # Conv and MatMul only
        "cross_device": False,
    },
    "habitat": {
        "absolute_time": True,
        "model_level": True,
        "op_level": True,
        "cross_device": False,  # GPUs only
    },
    "nnlqp": {
        "absolute_time": True,
        "model_level": True,
        "op_level": False,
        "cross_device": True,
    },
    "tlp": {
        "absolute_time": False,
        "model_level": True,
        "op_level": True,
        "cross_device": True,
    },
    "cdmpp": {
        "absolute_time": True,
        "model_level": True,
        "op_level": True,
        "cross_device": True,
    },
}


def make_baseline(name: str, **kwargs) -> BaselineCostModel:
    """Instantiate a runnable baseline cost model by name."""
    name = name.lower()
    if name == "xgboost":
        return XGBoostCostModel(**kwargs)
    if name == "tiramisu":
        return TiramisuCostModel(**kwargs)
    if name == "habitat":
        return HabitatCostModel(**kwargs)
    if name == "tlp":
        return TLPCostModel(**kwargs)
    raise TrainingError(
        f"unknown baseline {name!r}; runnable baselines: xgboost, tiramisu, habitat, tlp"
    )
