"""Baseline registry, canonical naming and the Table 1 capability matrix.

One canonical name table serves every consumer: :func:`make_baseline`, the
Table 1 capability matrix and the backend registry of :mod:`repro.backends`
all resolve method names through :func:`canonical_baseline_name`, so
``"xgboost"``, ``"autotvm_xgboost"`` and ``"autotvm-xgboost"`` are the same
method everywhere (the paper's Table 1 spells it ``autotvm_xgboost``; the
runnable implementation registers as ``xgboost``).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.baselines.base import BaselineCostModel
from repro.baselines.habitat import HabitatCostModel
from repro.baselines.tiramisu import TiramisuCostModel
from repro.baselines.tlp import TLPCostModel
from repro.baselines.xgboost import XGBoostCostModel
from repro.errors import TrainingError

# Canonical method name -> accepted aliases.  Canonical names are the ones
# the backend registry and `make_baseline` construct; the Table 1 spelling of
# the XGBoost family ("autotvm_xgboost") is an alias of the runnable
# "xgboost" implementation.
BASELINE_ALIASES: Dict[str, Tuple[str, ...]] = {
    "cdmpp": (),
    "xgboost": ("autotvm_xgboost", "autotvm", "ansor_xgboost"),
    "tiramisu": (),
    "habitat": (),
    "tlp": (),
    "kaufman_tpu": ("tpu_learned_cost_model",),
    "metatune": (),
    "nnlqp": (),
}

_ALIAS_TO_CANONICAL: Dict[str, str] = {
    alias: canonical for canonical, aliases in BASELINE_ALIASES.items() for alias in aliases
}

# Canonical name -> key of its Table 1 capability row (only where they differ).
_TABLE1_KEY: Dict[str, str] = {"xgboost": "autotvm_xgboost"}

# Methods with a runnable implementation behind make_baseline.
RUNNABLE_BASELINES: Tuple[str, ...] = ("xgboost", "tiramisu", "habitat", "tlp")

# Table 1 of the paper: which capabilities each predictor family offers.
# Keys: absolute_time, model_level, op_level, cross_device.  Rows are keyed
# by the paper's spelling; look them up by any alias through
# :func:`baseline_capabilities`.
BASELINE_CAPABILITIES: Dict[str, Dict[str, bool]] = {
    "autotvm_xgboost": {
        "absolute_time": False,
        "model_level": True,
        "op_level": True,
        "cross_device": False,
    },
    "tiramisu": {
        "absolute_time": False,
        "model_level": False,
        "op_level": True,
        "cross_device": False,
    },
    "kaufman_tpu": {
        "absolute_time": True,
        "model_level": True,
        "op_level": True,
        "cross_device": False,
    },
    "metatune": {
        "absolute_time": True,
        "model_level": False,  # CNNs only
        "op_level": False,  # Conv and MatMul only
        "cross_device": False,
    },
    "habitat": {
        "absolute_time": True,
        "model_level": True,
        "op_level": True,
        "cross_device": False,  # GPUs only
    },
    "nnlqp": {
        "absolute_time": True,
        "model_level": True,
        "op_level": False,
        "cross_device": True,
    },
    "tlp": {
        "absolute_time": False,
        "model_level": True,
        "op_level": True,
        "cross_device": True,
    },
    "cdmpp": {
        "absolute_time": True,
        "model_level": True,
        "op_level": True,
        "cross_device": True,
    },
}


def canonical_baseline_name(name: str) -> str:
    """Resolve a method name or alias to its canonical spelling.

    Case-insensitive; hyphens and spaces normalise to underscores.  Raises
    :class:`TrainingError` for names outside the Table 1 method families.
    """
    key = str(name).strip().lower().replace("-", "_").replace(" ", "_")
    key = _ALIAS_TO_CANONICAL.get(key, key)
    if key not in BASELINE_ALIASES:
        known = ", ".join(sorted(BASELINE_ALIASES))
        raise TrainingError(f"unknown cost-model name {name!r}; known methods: {known}")
    return key


def baseline_capabilities(name: str) -> Dict[str, bool]:
    """The Table 1 capability row of a method, accepting any alias."""
    canonical = canonical_baseline_name(name)
    return dict(BASELINE_CAPABILITIES[_TABLE1_KEY.get(canonical, canonical)])


_BASELINE_CLASSES = {
    "xgboost": XGBoostCostModel,
    "tiramisu": TiramisuCostModel,
    "habitat": HabitatCostModel,
    "tlp": TLPCostModel,
}


def make_baseline(name: str, **kwargs) -> BaselineCostModel:
    """Instantiate a runnable baseline cost model by (canonical or alias) name."""
    canonical = canonical_baseline_name(name)
    cls = _BASELINE_CLASSES.get(canonical)
    if cls is None:
        hint = (
            "; use repro.backends.make_backend('cdmpp') for the CDMPP predictor"
            if canonical == "cdmpp"
            else ""
        )
        raise TrainingError(
            f"{name!r} is not a runnable baseline (runnable: "
            f"{', '.join(RUNNABLE_BASELINES)}){hint}"
        )
    return cls(**kwargs)
