"""Common interface of all baseline cost models."""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.metrics import error_report
from repro.errors import TrainingError
from repro.profiler.records import MeasureRecord


class BaselineCostModel:
    """A latency predictor trained on measured records.

    Subclasses implement :meth:`_fit` and :meth:`_predict`; the base class
    tracks training throughput (samples/second) so the Fig. 6 efficiency
    comparison treats every method identically.
    """

    name = "baseline"

    def __init__(self) -> None:
        self._fitted = False
        self.train_seconds = 0.0
        self.throughput_samples_per_s = 0.0
        # Number of training samples *consumed* (records x passes over them);
        # subclasses set this in _fit so throughput is comparable to the
        # CDMPP trainer, which counts samples seen across epochs.
        self._samples_processed: int = 0

    # -- subclass hooks -------------------------------------------------
    def _fit(self, records: Sequence[MeasureRecord]) -> None:
        raise NotImplementedError

    def _predict(self, records: Sequence[MeasureRecord]) -> np.ndarray:
        raise NotImplementedError

    # -- public API -------------------------------------------------------
    def fit(self, records: Sequence[MeasureRecord]) -> "BaselineCostModel":
        """Train on measured records."""
        records = list(records)
        if not records:
            raise TrainingError(f"{self.name}: cannot fit on an empty record list")
        start = time.perf_counter()
        self._samples_processed = 0
        self._fit(records)
        self.train_seconds = time.perf_counter() - start
        processed = self._samples_processed or len(records)
        self.throughput_samples_per_s = processed / max(self.train_seconds, 1e-9)
        self._fitted = True
        return self

    def predict(self, records: Sequence[MeasureRecord]) -> np.ndarray:
        """Predicted latency in seconds for each record's program."""
        if not self._fitted:
            raise TrainingError(f"{self.name}: predict called before fit")
        records = list(records)
        if not records:
            return np.zeros(0)
        return np.maximum(self._predict(records), 1e-12)

    def evaluate(self, records: Sequence[MeasureRecord]) -> Dict[str, float]:
        """MAPE / RMSE / threshold accuracy against the records' measured latency."""
        records = list(records)
        predictions = self.predict(records)
        targets = np.asarray([record.latency_s for record in records])
        return error_report(predictions, targets)
