"""The XGBoost baseline: gradient-boosted trees on flattened program features.

AutoTVM and Ansor use XGBoost over hand-crafted per-program feature vectors.
The baseline here regresses the log-latency (the standard trick for
long-tailed targets in tree ensembles) from the flat features of
:mod:`repro.baselines.features`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.base import BaselineCostModel
from repro.baselines.features import flat_features
from repro.baselines.trees import GradientBoostedTrees
from repro.profiler.records import MeasureRecord


class XGBoostCostModel(BaselineCostModel):
    """Gradient-boosted-tree latency predictor (the AutoTVM/Ansor family)."""

    name = "xgboost"

    def __init__(
        self,
        n_estimators: int = 60,
        max_depth: int = 6,
        learning_rate: float = 0.1,
        include_device: bool = True,
        seed: int = 0,
    ):
        super().__init__()
        self.include_device = bool(include_device)
        self.model = GradientBoostedTrees(
            n_estimators=n_estimators,
            max_depth=max_depth,
            learning_rate=learning_rate,
            seed=seed,
        )

    def _fit(self, records: Sequence[MeasureRecord]) -> None:
        x = flat_features(records, include_device=self.include_device)
        y = np.log(np.asarray([record.latency_s for record in records]))
        self.model.fit(x, y)
        # Each boosting round is one pass over the training set.
        self._samples_processed = len(records) * self.model.n_estimators

    def _predict(self, records: Sequence[MeasureRecord]) -> np.ndarray:
        x = flat_features(records, include_device=self.include_device)
        return np.exp(self.model.predict(x))
