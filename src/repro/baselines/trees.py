"""Regression trees and gradient boosting, implemented from scratch.

This is the substrate of the XGBoost baseline: depth-limited CART regression
trees fitted to (negative gradients of) a squared-error objective, combined
by gradient boosting with shrinkage.  The implementation uses exact greedy
splits over quantile-reduced thresholds, which is plenty for the dataset
sizes of the synthetic substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import TrainingError


@dataclass
class _TreeNode:
    """One node of a regression tree (leaf when ``feature`` is None)."""

    value: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class RegressionTree:
    """A CART regression tree with squared-error splits."""

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_split: int = 8,
        min_samples_leaf: int = 4,
        max_thresholds: int = 32,
    ):
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_thresholds = int(max_thresholds)
        self.root: Optional[_TreeNode] = None

    # ------------------------------------------------------------------
    def _best_split(self, x: np.ndarray, y: np.ndarray):
        """Vectorised exact split search using sorted prefix sums per feature.

        For each feature the samples are sorted once; every split point's SSE
        reduction is then computed from cumulative sums, so the scan over
        thresholds is a single vectorised expression.
        """
        best_gain, best_feature, best_threshold = 1e-12, None, 0.0
        n, d = x.shape
        y_sum, y_sq_sum = float(y.sum()), float((y**2).sum())
        parent_sse = y_sq_sum - y_sum**2 / n
        min_leaf = self.min_samples_leaf
        for feature in range(d):
            column = x[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_x = column[order]
            sorted_y = y[order]
            # Candidate split positions: boundaries between distinct values
            # that leave at least min_leaf samples on each side.
            cum_sum = np.cumsum(sorted_y)
            cum_sq = np.cumsum(sorted_y**2)
            counts = np.arange(1, n + 1, dtype=np.float64)
            valid = (counts[:-1] >= min_leaf) & (counts[:-1] <= n - min_leaf)
            valid &= sorted_x[:-1] < sorted_x[1:]
            if not np.any(valid):
                continue
            left_sse = cum_sq[:-1] - cum_sum[:-1] ** 2 / counts[:-1]
            right_counts = n - counts[:-1]
            right_sum = y_sum - cum_sum[:-1]
            right_sq = y_sq_sum - cum_sq[:-1]
            right_sse = right_sq - right_sum**2 / np.maximum(right_counts, 1.0)
            gains = np.where(valid, parent_sse - (left_sse + right_sse), -np.inf)
            position = int(np.argmax(gains))
            if gains[position] > best_gain:
                best_gain = float(gains[position])
                best_feature = feature
                best_threshold = float((sorted_x[position] + sorted_x[position + 1]) / 2.0)
        return best_feature, best_threshold

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(value=float(y.mean()))
        if depth >= self.max_depth or y.size < self.min_samples_split or np.allclose(y, y[0]):
            return node
        feature, threshold = self._best_split(x, y)
        if feature is None:
            return node
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionTree":
        """Fit the tree to features ``x`` and targets ``y``."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if x.shape[0] != y.shape[0] or x.shape[0] == 0:
            raise TrainingError(f"invalid tree training data shapes {x.shape} / {y.shape}")
        self.root = self._build(x, y, depth=0)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict targets for ``x``."""
        if self.root is None:
            raise TrainingError("RegressionTree.predict called before fit")
        x = np.asarray(x, dtype=np.float64)
        out = np.empty(x.shape[0], dtype=np.float64)
        for index, row in enumerate(x):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[index] = node.value
        return out


class GradientBoostedTrees:
    """Gradient boosting with squared-error loss and shrinkage."""

    def __init__(
        self,
        n_estimators: int = 60,
        learning_rate: float = 0.1,
        max_depth: int = 6,
        subsample: float = 0.9,
        min_samples_leaf: int = 4,
        seed: int = 0,
    ):
        if n_estimators <= 0:
            raise TrainingError("n_estimators must be positive")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.subsample = float(subsample)
        self.min_samples_leaf = int(min_samples_leaf)
        self._rng = np.random.default_rng(seed)
        self.base_prediction = 0.0
        self.trees: List[RegressionTree] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        """Fit the ensemble."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        self.base_prediction = float(y.mean())
        current = np.full_like(y, self.base_prediction)
        self.trees = []
        n = x.shape[0]
        for _ in range(self.n_estimators):
            residual = y - current
            if self.subsample < 1.0:
                size = max(int(self.subsample * n), 1)
                idx = self._rng.choice(n, size=size, replace=False)
            else:
                idx = np.arange(n)
            tree = RegressionTree(max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf)
            tree.fit(x[idx], residual[idx])
            update = tree.predict(x)
            current = current + self.learning_rate * update
            self.trees.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict with the full ensemble."""
        if not self.trees:
            raise TrainingError("GradientBoostedTrees.predict called before fit")
        x = np.asarray(x, dtype=np.float64)
        out = np.full(x.shape[0], self.base_prediction, dtype=np.float64)
        for tree in self.trees:
            out += self.learning_rate * tree.predict(x)
        return out
