"""DNN models represented as graphs of operator nodes.

A :class:`ModelGraph` is the frontend-level view of a network: each node is
one (possibly fused) operator, carries the TIR :class:`~repro.tir.task.Task`
it lowers to, and lists its data dependencies.  The replayer turns this graph
into a TIR-based data-flow graph; the dataset generator extracts the tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.tir.task import Task
from repro.utils.topo import topological_order


@dataclass(frozen=True)
class OpNode:
    """One operator instance in a DNN model graph."""

    name: str
    task: Task
    inputs: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", tuple(self.inputs))


class ModelGraph:
    """A DNN model: a named, acyclic graph of operator nodes."""

    def __init__(self, name: str, batch_size: int = 1):
        if batch_size <= 0:
            raise ModelError(f"batch size must be positive, got {batch_size}")
        self.name = name
        self.batch_size = int(batch_size)
        self._nodes: Dict[str, OpNode] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, name: str, task: Task, inputs: Sequence[str] = ()) -> str:
        """Add an operator node and return its name (for chaining)."""
        if name in self._nodes:
            raise ModelError(f"duplicate node name {name!r} in model {self.name!r}")
        for dep in inputs:
            if dep not in self._nodes:
                raise ModelError(
                    f"node {name!r} depends on unknown node {dep!r} (add order matters)"
                )
        self._nodes[name] = OpNode(name=name, task=task, inputs=tuple(inputs))
        return name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Dict[str, OpNode]:
        """All nodes keyed by name (insertion ordered)."""
        return dict(self._nodes)

    def node(self, name: str) -> OpNode:
        """Look up one node."""
        try:
            return self._nodes[name]
        except KeyError as exc:
            raise ModelError(f"model {self.name!r} has no node {name!r}") from exc

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def successors(self) -> Dict[str, List[str]]:
        """Adjacency map node -> nodes that consume its output."""
        succ: Dict[str, List[str]] = {name: [] for name in self._nodes}
        for node in self._nodes.values():
            for dep in node.inputs:
                succ[dep].append(node.name)
        return succ

    def topo_order(self) -> List[str]:
        """Node names in topological (executable) order."""
        return list(topological_order(self._nodes.keys(), self.successors()))

    def tasks(self) -> List[Task]:
        """The task of every node, in insertion order (duplicates included)."""
        return [node.task for node in self._nodes.values()]

    def unique_tasks(self) -> Dict[str, Task]:
        """Deduplicated tasks keyed by workload key.

        Multiple nodes frequently share a workload (e.g. the repeated blocks
        of ResNet); the cost model only needs one prediction per workload.
        """
        unique: Dict[str, Task] = {}
        for node in self._nodes.values():
            unique.setdefault(node.task.workload_key, node.task)
        return unique

    def op_type_histogram(self) -> Dict[str, int]:
        """Count nodes per operator family (used in dataset statistics)."""
        histogram: Dict[str, int] = {}
        for node in self._nodes.values():
            histogram[node.task.op_type] = histogram.get(node.task.op_type, 0) + 1
        return histogram

    def total_naive_flops(self) -> float:
        """Sum of unscheduled FLOPs over all nodes (model 'size')."""
        return float(sum(node.task.naive_flops() for node in self._nodes.values()))

    def __repr__(self) -> str:
        return (
            f"ModelGraph({self.name!r}, batch={self.batch_size}, nodes={len(self)}, "
            f"unique_tasks={len(self.unique_tasks())})"
        )
