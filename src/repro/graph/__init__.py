"""DNN model graphs, the model zoo, task partitioning and TIR data-flow graphs."""

from repro.graph.model import ModelGraph, OpNode
from repro.graph.zoo import MODEL_BUILDERS, build_model, list_models
from repro.graph.partition import extract_tasks, extract_unique_tasks, partition_into_programs
from repro.graph.dfg import DFGNode, TIRDataFlowGraph, build_dfg

__all__ = [
    "OpNode",
    "ModelGraph",
    "MODEL_BUILDERS",
    "build_model",
    "list_models",
    "extract_tasks",
    "extract_unique_tasks",
    "partition_into_programs",
    "DFGNode",
    "TIRDataFlowGraph",
    "build_dfg",
]
