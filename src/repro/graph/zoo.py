"""The model zoo: builders for the DNN models used in the paper's evaluation.

Every builder returns a :class:`~repro.graph.model.ModelGraph` whose nodes
carry TIR tasks tagged with the model name (the cross-model domain label).
The networks follow the published architectures at full operator count, with
spatial sizes chosen to keep the synthetic substrate laptop-sized.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ModelError
from repro.graph.model import ModelGraph
from repro.ops import (
    attention_context,
    attention_scores,
    batch_norm_inference,
    conv2d,
    dense,
    depthwise_conv2d,
    elementwise_binary,
    elementwise_unary,
    embedding_lookup,
    global_avg_pool2d,
    layer_norm,
    lstm_cell,
    pool2d,
    softmax,
)

# Input resolution used by the CNN builders.  224 is the ImageNet default;
# the dataset generator may build models at smaller resolutions to scale the
# experiments down, so it is a parameter everywhere.
DEFAULT_RESOLUTION = 64


# ---------------------------------------------------------------------------
# Convolutional networks
# ---------------------------------------------------------------------------
def resnet50(batch_size: int = 1, resolution: int = DEFAULT_RESOLUTION) -> ModelGraph:
    """ResNet-50: stem + 4 stages of bottleneck blocks [3, 4, 6, 3] + head."""
    name = "resnet50"
    graph = ModelGraph(name, batch_size)
    res = resolution // 2
    prev = graph.add(
        "stem.conv",
        conv2d(batch_size, 3, 64, resolution, resolution, kernel=7, stride=2, padding=3, model=name),
    )
    prev = graph.add("stem.pool", pool2d(batch_size, 64, res, res, kernel=3, stride=2, padding=1, model=name), [prev])
    res = res // 2

    stage_blocks = [3, 4, 6, 3]
    stage_channels = [(64, 256), (128, 512), (256, 1024), (512, 2048)]
    in_ch = 64
    for stage, (blocks, (mid_ch, out_ch)) in enumerate(zip(stage_blocks, stage_channels)):
        for block in range(blocks):
            stride = 2 if (block == 0 and stage > 0) else 1
            prefix = f"layer{stage + 1}.{block}"
            block_in = prev
            if stride == 2:
                res = res // 2
            c1 = graph.add(
                f"{prefix}.conv1",
                conv2d(batch_size, in_ch, mid_ch, res * stride, res * stride, kernel=1, stride=stride,
                       padding=0, model=name),
                [block_in],
            )
            c2 = graph.add(
                f"{prefix}.conv2",
                conv2d(batch_size, mid_ch, mid_ch, res, res, kernel=3, stride=1, padding=1, model=name),
                [c1],
            )
            c3 = graph.add(
                f"{prefix}.conv3",
                conv2d(batch_size, mid_ch, out_ch, res, res, kernel=1, stride=1, padding=0,
                       activation=None, model=name),
                [c2],
            )
            if block == 0:
                shortcut = graph.add(
                    f"{prefix}.downsample",
                    conv2d(batch_size, in_ch, out_ch, res * stride, res * stride, kernel=1,
                           stride=stride, padding=0, activation=None, model=name),
                    [block_in],
                )
            else:
                shortcut = block_in
            prev = graph.add(
                f"{prefix}.add",
                elementwise_binary((batch_size, out_ch, res, res), "add", model=name),
                [c3, shortcut],
            )
            prev = graph.add(
                f"{prefix}.relu",
                elementwise_unary((batch_size, out_ch, res, res), "relu", model=name),
                [prev],
            )
            in_ch = out_ch
    prev = graph.add("head.gap", global_avg_pool2d(batch_size, in_ch, res, res, model=name), [prev])
    graph.add("head.fc", dense(batch_size, in_ch, 1000, model=name), [prev])
    return graph


def mobilenet_v2(batch_size: int = 1, resolution: int = DEFAULT_RESOLUTION) -> ModelGraph:
    """MobileNet-V2: inverted residual blocks with depthwise convolutions."""
    name = "mobilenet_v2"
    graph = ModelGraph(name, batch_size)
    res = resolution // 2
    prev = graph.add(
        "stem.conv",
        conv2d(batch_size, 3, 32, resolution, resolution, kernel=3, stride=2, padding=1, model=name),
    )
    in_ch = 32
    # (expansion, out_channels, repeats, stride) per the MobileNet-V2 paper.
    settings = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ]
    for stage, (expand, out_ch, repeats, first_stride) in enumerate(settings):
        for rep in range(repeats):
            stride = first_stride if rep == 0 else 1
            prefix = f"block{stage}.{rep}"
            block_in = prev
            hidden = in_ch * expand
            if expand != 1:
                prev = graph.add(
                    f"{prefix}.expand",
                    conv2d(batch_size, in_ch, hidden, res, res, kernel=1, stride=1, padding=0, model=name),
                    [prev],
                )
            if stride == 2:
                res = max(res // 2, 1)
            prev = graph.add(
                f"{prefix}.depthwise",
                depthwise_conv2d(batch_size, hidden, res * stride, res * stride, kernel=3,
                                 stride=stride, padding=1, model=name),
                [prev],
            )
            prev = graph.add(
                f"{prefix}.project",
                conv2d(batch_size, hidden, out_ch, res, res, kernel=1, stride=1, padding=0,
                       activation=None, model=name),
                [prev],
            )
            if stride == 1 and in_ch == out_ch:
                prev = graph.add(
                    f"{prefix}.add",
                    elementwise_binary((batch_size, out_ch, res, res), "add", model=name),
                    [prev, block_in],
                )
            in_ch = out_ch
    prev = graph.add(
        "head.conv",
        conv2d(batch_size, in_ch, 1280, res, res, kernel=1, stride=1, padding=0, model=name),
        [prev],
    )
    prev = graph.add("head.gap", global_avg_pool2d(batch_size, 1280, res, res, model=name), [prev])
    graph.add("head.fc", dense(batch_size, 1280, 1000, model=name), [prev])
    return graph


def vgg16(batch_size: int = 1, resolution: int = DEFAULT_RESOLUTION) -> ModelGraph:
    """VGG-16: 13 convolutions, 5 max-pools and 3 dense layers."""
    name = "vgg16"
    graph = ModelGraph(name, batch_size)
    config = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)]
    res = resolution
    in_ch = 3
    prev: Optional[str] = None
    for stage, (channels, convs) in enumerate(config):
        for i in range(convs):
            node = graph.add(
                f"stage{stage}.conv{i}",
                conv2d(batch_size, in_ch, channels, res, res, kernel=3, stride=1, padding=1, model=name),
                [prev] if prev else [],
            )
            prev = node
            in_ch = channels
        prev = graph.add(
            f"stage{stage}.pool",
            pool2d(batch_size, channels, res, res, kernel=2, stride=2, model=name),
            [prev],
        )
        res = max(res // 2, 1)
    flat = in_ch * res * res
    prev = graph.add("fc1", dense(batch_size, flat, 4096, activation="relu", model=name), [prev])
    prev = graph.add("fc2", dense(batch_size, 4096, 4096, activation="relu", model=name), [prev])
    graph.add("fc3", dense(batch_size, 4096, 1000, model=name), [prev])
    return graph


def inception_v3(batch_size: int = 1, resolution: int = DEFAULT_RESOLUTION) -> ModelGraph:
    """Inception-V3 (reduced): stem + mixed blocks with parallel conv branches."""
    name = "inception_v3"
    graph = ModelGraph(name, batch_size)
    res = resolution // 2
    prev = graph.add(
        "stem.conv1",
        conv2d(batch_size, 3, 32, resolution, resolution, kernel=3, stride=2, padding=1, model=name),
    )
    prev = graph.add(
        "stem.conv2", conv2d(batch_size, 32, 64, res, res, kernel=3, stride=1, padding=1, model=name), [prev]
    )
    prev = graph.add(
        "stem.pool", pool2d(batch_size, 64, res, res, kernel=3, stride=2, padding=1, model=name), [prev]
    )
    res = res // 2
    in_ch = 64
    for block, channels in enumerate([128, 256, 288, 384]):
        prefix = f"mixed{block}"
        branch1 = graph.add(
            f"{prefix}.b1x1",
            conv2d(batch_size, in_ch, channels // 4, res, res, kernel=1, stride=1, padding=0, model=name),
            [prev],
        )
        branch3 = graph.add(
            f"{prefix}.b3x3a",
            conv2d(batch_size, in_ch, channels // 4, res, res, kernel=1, stride=1, padding=0, model=name),
            [prev],
        )
        branch3 = graph.add(
            f"{prefix}.b3x3b",
            conv2d(batch_size, channels // 4, channels // 2, res, res, kernel=3, stride=1, padding=1, model=name),
            [branch3],
        )
        branch5 = graph.add(
            f"{prefix}.b5x5a",
            conv2d(batch_size, in_ch, channels // 8, res, res, kernel=1, stride=1, padding=0, model=name),
            [prev],
        )
        branch5 = graph.add(
            f"{prefix}.b5x5b",
            conv2d(batch_size, channels // 8, channels // 4, res, res, kernel=5, stride=1, padding=2, model=name),
            [branch5],
        )
        prev = graph.add(
            f"{prefix}.concat_norm",
            batch_norm_inference(batch_size, channels, res, res, model=name),
            [branch1, branch3, branch5],
        )
        in_ch = channels
        if block == 1:
            prev = graph.add(
                f"{prefix}.pool", pool2d(batch_size, in_ch, res, res, kernel=3, stride=2, padding=1, model=name), [prev]
            )
            res = max(res // 2, 1)
    prev = graph.add("head.gap", global_avg_pool2d(batch_size, in_ch, res, res, model=name), [prev])
    graph.add("head.fc", dense(batch_size, in_ch, 1000, model=name), [prev])
    return graph


# ---------------------------------------------------------------------------
# Transformers and recurrent networks
# ---------------------------------------------------------------------------
def _transformer_encoder(
    graph: ModelGraph,
    name: str,
    batch_size: int,
    seq_len: int,
    hidden: int,
    heads: int,
    layers: int,
    ffn_mult: int = 4,
    vocab: int = 30_000,
) -> None:
    tokens = batch_size * seq_len
    prev = graph.add("embedding", embedding_lookup(tokens, vocab, hidden, model=name))
    for layer in range(layers):
        prefix = f"layer{layer}"
        ln1 = graph.add(f"{prefix}.ln1", layer_norm(tokens, hidden, model=name), [prev])
        qkv = graph.add(
            f"{prefix}.qkv", dense(tokens, hidden, 3 * hidden, model=name), [ln1]
        )
        scores = graph.add(
            f"{prefix}.scores",
            attention_scores(batch_size * heads, seq_len, hidden // heads, model=name),
            [qkv],
        )
        probs = graph.add(
            f"{prefix}.softmax", softmax(batch_size * heads * seq_len, seq_len, model=name), [scores]
        )
        context = graph.add(
            f"{prefix}.context",
            attention_context(batch_size * heads, seq_len, hidden // heads, model=name),
            [probs, qkv],
        )
        attn_out = graph.add(
            f"{prefix}.attn_out", dense(tokens, hidden, hidden, model=name), [context]
        )
        residual1 = graph.add(
            f"{prefix}.residual1",
            elementwise_binary((tokens, hidden), "add", model=name),
            [attn_out, prev],
        )
        ln2 = graph.add(f"{prefix}.ln2", layer_norm(tokens, hidden, model=name), [residual1])
        ffn1 = graph.add(
            f"{prefix}.ffn1",
            dense(tokens, hidden, ffn_mult * hidden, activation="gelu", model=name),
            [ln2],
        )
        ffn2 = graph.add(
            f"{prefix}.ffn2", dense(tokens, ffn_mult * hidden, hidden, model=name), [ffn1]
        )
        prev = graph.add(
            f"{prefix}.residual2",
            elementwise_binary((tokens, hidden), "add", model=name),
            [ffn2, residual1],
        )
    graph.add("pooler", dense(tokens, hidden, hidden, activation="tanh", model=name), [prev])


def bert_tiny(batch_size: int = 1, seq_len: int = 128) -> ModelGraph:
    """BERT-tiny: 2 layers, hidden 128, 2 heads."""
    graph = ModelGraph("bert_tiny", batch_size)
    _transformer_encoder(graph, "bert_tiny", batch_size, seq_len, hidden=128, heads=2, layers=2)
    return graph


def bert_base(batch_size: int = 1, seq_len: int = 128) -> ModelGraph:
    """BERT-base: 12 layers, hidden 768, 12 heads."""
    graph = ModelGraph("bert_base", batch_size)
    _transformer_encoder(graph, "bert_base", batch_size, seq_len, hidden=768, heads=12, layers=12)
    return graph


def gpt2_small(batch_size: int = 1, seq_len: int = 128) -> ModelGraph:
    """A GPT-2-small-like decoder (12 layers, hidden 768), reusing encoder ops."""
    graph = ModelGraph("gpt2_small", batch_size)
    _transformer_encoder(
        graph, "gpt2_small", batch_size, seq_len, hidden=768, heads=12, layers=12, vocab=50_000
    )
    return graph


def lstm_lm(batch_size: int = 8, seq_len: int = 16, hidden: int = 256, vocab: int = 10_000) -> ModelGraph:
    """A two-layer LSTM language model unrolled over ``seq_len`` steps."""
    name = "lstm_lm"
    graph = ModelGraph(name, batch_size)
    prev = graph.add("embedding", embedding_lookup(batch_size * seq_len, vocab, hidden, model=name))
    for layer in range(2):
        for step in range(seq_len):
            prev = graph.add(
                f"layer{layer}.step{step}",
                lstm_cell(batch_size, hidden, hidden, model=name),
                [prev],
            )
    graph.add("decoder", dense(batch_size * seq_len, hidden, vocab, model=name), [prev])
    return graph


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
MODEL_BUILDERS: Dict[str, Callable[..., ModelGraph]] = {
    "resnet50": resnet50,
    "mobilenet_v2": mobilenet_v2,
    "vgg16": vgg16,
    "inception_v3": inception_v3,
    "bert_tiny": bert_tiny,
    "bert_base": bert_base,
    "gpt2_small": gpt2_small,
    "lstm_lm": lstm_lm,
}


def list_models() -> List[str]:
    """Names of all models in the zoo."""
    return sorted(MODEL_BUILDERS)


def resolve_model_name(name: str) -> str:
    """Resolve a zoo model name, accepting any unique prefix (``resnet`` -> ``resnet50``)."""
    if name in MODEL_BUILDERS:
        return name
    matches = [candidate for candidate in list_models() if candidate.startswith(name)]
    if len(matches) == 1:
        return matches[0]
    if matches:
        raise ModelError(f"ambiguous model {name!r}; matches: {', '.join(matches)}")
    raise ModelError(f"unknown model {name!r}; available: {', '.join(list_models())}")


def build_model(name: str, batch_size: int = 1, **kwargs) -> ModelGraph:
    """Build a model from the zoo by name (unique prefixes accepted)."""
    builder = MODEL_BUILDERS[resolve_model_name(name)]
    return builder(batch_size=batch_size, **kwargs)
