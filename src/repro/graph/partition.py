"""Partitioning DNN models into auto-scheduler tasks and tensor programs.

TVM's auto-scheduler assigns one tuning task per (deduplicated) fused
subgraph.  Here a task is attached to every operator node already, so
partitioning amounts to collecting and deduplicating them -- but the helpers
below also support gathering tasks across many models, which is how the
Tenset-like dataset is assembled.

:func:`partition_into_programs` goes one step further, from tasks to lowered
*tensor programs*: it dissects a model into the TIR data-flow graph the
replayer and the graph-level serving tier (:mod:`repro.serving.fleet`)
consume, with one scheduled kernel per unique workload.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

from repro.graph.model import ModelGraph
from repro.graph.zoo import build_model
from repro.tir.task import Task

ModelLike = Union[str, ModelGraph]


def _as_graph(model: ModelLike, batch_size: int = 1) -> ModelGraph:
    if isinstance(model, ModelGraph):
        return model
    return build_model(model, batch_size=batch_size)


def partition_into_programs(
    model: ModelLike,
    target_kind: str = "gpu",
    batch_size: int = 1,
    seed: int | str | None = 0,
):
    """Partition a model into its TIR data-flow graph of tensor programs.

    Each operator node is lowered with one deterministic random schedule per
    unique workload (nodes sharing a workload share the kernel, as a compiled
    model does).  ``target_kind`` is the device taxonomy (``"gpu"``, ``"cpu"``
    or ``"accel"``) the schedules are sampled for.  Returns a
    :class:`repro.graph.dfg.TIRDataFlowGraph`; its ``unique_programs()`` are
    the per-kernel queries a cost model has to answer for the whole model.
    """
    from repro.graph.dfg import build_dfg

    return build_dfg(_as_graph(model, batch_size), target_kind=target_kind, seed=seed)


def extract_tasks(model: ModelLike, batch_size: int = 1) -> List[Task]:
    """All tasks of a model (one per node, duplicates included)."""
    from repro.graph.dfg import TIRDataFlowGraph

    if isinstance(model, TIRDataFlowGraph):
        return [node.program.task for node in model.nodes.values()]
    return _as_graph(model, batch_size).tasks()


def extract_unique_tasks(model: ModelLike, batch_size: int = 1) -> Dict[str, Task]:
    """Deduplicated tasks of a model keyed by workload key.

    Accepts a zoo name, a :class:`ModelGraph`, or an already-partitioned
    :class:`~repro.graph.dfg.TIRDataFlowGraph` (whose nodes carry their tasks
    — ``batch_size`` is ignored since the DFG was built at a fixed batch).
    The DFG path lets the schedule-search tier tune exactly the kernels a
    fleet serves without re-partitioning.
    """
    from repro.graph.dfg import TIRDataFlowGraph

    if isinstance(model, TIRDataFlowGraph):
        return {key: program.task for key, program in model.unique_programs().items()}
    return _as_graph(model, batch_size).unique_tasks()


def extract_tasks_from_models(
    models: Sequence[ModelLike],
    batch_size: int = 1,
) -> Dict[str, Task]:
    """Union of the unique tasks of several models.

    When two models share a workload (e.g. the same dense layer shape), the
    task of the first model wins -- matching Tenset, where each deduplicated
    workload appears once regardless of how many networks use it.
    """
    merged: Dict[str, Task] = {}
    for model in models:
        for key, task in extract_unique_tasks(model, batch_size).items():
            merged.setdefault(key, task)
    return merged


def tasks_by_model(
    models: Sequence[ModelLike],
    batch_size: int = 1,
) -> Dict[str, List[Task]]:
    """Unique tasks grouped by the model they came from."""
    grouped: Dict[str, List[Task]] = {}
    for model in models:
        graph = _as_graph(model, batch_size)
        grouped[graph.name] = list(graph.unique_tasks().values())
    return grouped
