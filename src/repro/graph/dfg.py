"""TIR-based data-flow graphs: the input of the end-to-end replayer.

A :class:`TIRDataFlowGraph` has one node per tensor program (one per operator
node of the source model) and edges for data dependencies.  Each node carries
the latency assigned to it -- either measured on the simulator (ground truth)
or predicted by a cost model -- plus an optional gap modelling framework
overhead between kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ReplayError
from repro.graph.model import ModelGraph
from repro.tir.lower import lower
from repro.tir.program import TensorProgram
from repro.tir.schedule import Schedule, random_schedule
from repro.utils.rng import new_rng, spawn_rng
from repro.utils.topo import topological_order


@dataclass
class DFGNode:
    """One tensor program instance in the data-flow graph."""

    name: str
    program: TensorProgram
    inputs: List[str] = field(default_factory=list)
    duration_s: float = 0.0
    gap_s: float = 0.0
    device_slot: int = 0

    @property
    def task_key(self) -> str:
        """Workload key of the node's task."""
        return self.program.task.workload_key


class TIRDataFlowGraph:
    """A DAG of tensor programs with per-node durations."""

    def __init__(self, name: str):
        self.name = name
        self._nodes: Dict[str, DFGNode] = {}

    def add_node(self, node: DFGNode) -> None:
        """Insert a node; dependencies must already be present."""
        if node.name in self._nodes:
            raise ReplayError(f"duplicate DFG node {node.name!r}")
        for dep in node.inputs:
            if dep not in self._nodes:
                raise ReplayError(f"DFG node {node.name!r} depends on unknown node {dep!r}")
        self._nodes[node.name] = node

    @property
    def nodes(self) -> Dict[str, DFGNode]:
        """All nodes keyed by name."""
        return dict(self._nodes)

    def node(self, name: str) -> DFGNode:
        """Look up one node."""
        try:
            return self._nodes[name]
        except KeyError as exc:
            raise ReplayError(f"DFG {self.name!r} has no node {name!r}") from exc

    def __len__(self) -> int:
        return len(self._nodes)

    def successors(self) -> Dict[str, List[str]]:
        """Adjacency map node -> consumers."""
        succ: Dict[str, List[str]] = {name: [] for name in self._nodes}
        for node in self._nodes.values():
            for dep in node.inputs:
                succ[dep].append(node.name)
        return succ

    def topo_order(self) -> List[str]:
        """Node names in topological order."""
        return list(topological_order(self._nodes.keys(), self.successors()))

    def unique_programs(self) -> Dict[str, TensorProgram]:
        """Deduplicated tensor programs keyed by workload key.

        The replayer queries the cost model once per unique program and
        shares the prediction across all nodes with the same workload.
        """
        unique: Dict[str, TensorProgram] = {}
        for node in self._nodes.values():
            unique.setdefault(node.task_key, node.program)
        return unique

    def assign_durations(self, durations: Dict[str, float], gap_s: float = 0.0) -> None:
        """Assign per-node durations from a mapping of workload key -> seconds."""
        missing = [n.name for n in self._nodes.values() if n.task_key not in durations]
        if missing:
            raise ReplayError(f"missing durations for nodes {missing[:5]} (and possibly more)")
        for node in self._nodes.values():
            node.duration_s = float(durations[node.task_key])
            node.gap_s = float(gap_s)

    def total_duration(self) -> float:
        """Sum of node durations (serial lower bound, ignores gaps)."""
        return float(sum(node.duration_s for node in self._nodes.values()))


def build_dfg(
    model: ModelGraph,
    schedule_chooser: Optional[Callable[[object, np.random.Generator], Schedule]] = None,
    target_kind: str = "gpu",
    seed: int | str | None = 0,
) -> TIRDataFlowGraph:
    """Build the TIR data-flow graph of a model.

    Each operator node is lowered with a schedule chosen by
    ``schedule_chooser`` (default: one random schedule per unique workload,
    mirroring the paper's "randomly sample a schedule for each task" protocol
    in the end-to-end experiments).  Nodes sharing a workload share the same
    schedule, as a compiled model reuses one kernel per workload.
    """
    rng = new_rng(seed)
    dfg = TIRDataFlowGraph(model.name)
    schedule_cache: Dict[str, Schedule] = {}
    program_cache: Dict[str, TensorProgram] = {}

    for name in model.topo_order():
        op_node = model.node(name)
        key = op_node.task.workload_key
        if key not in program_cache:
            task_rng = spawn_rng(rng, "dfg", key)
            if schedule_chooser is not None:
                schedule = schedule_chooser(op_node.task, task_rng)
            else:
                schedule = random_schedule(op_node.task, task_rng, target_kind=target_kind)
            schedule_cache[key] = schedule
            program_cache[key] = lower(op_node.task, schedule)
        dfg.add_node(
            DFGNode(name=name, program=program_cache[key], inputs=list(op_node.inputs))
        )
    return dfg
