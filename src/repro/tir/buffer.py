"""Buffers: named, typed, shaped memory regions referenced by tensor programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import TIRError

_DTYPE_BYTES = {
    "float16": 2,
    "bfloat16": 2,
    "float32": 4,
    "float64": 8,
    "int8": 1,
    "int32": 4,
    "int64": 8,
}

_VALID_SCOPES = ("global", "shared", "local")


@dataclass(frozen=True)
class Buffer:
    """A memory buffer accessed by a tensor program.

    Attributes:
        name: Unique (within a program) buffer name, e.g. ``"input"``.
        shape: Static shape.  All extents must be positive.
        dtype: Element type; determines bytes-per-element.
        scope: Memory scope (``global`` DRAM, ``shared`` on-chip, ``local``
            registers).  Cache stages introduce shared/local buffers.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str = "float32"
    scope: str = "global"

    def __post_init__(self) -> None:
        if not self.name:
            raise TIRError("buffer name must be non-empty")
        if self.dtype not in _DTYPE_BYTES:
            raise TIRError(f"unsupported dtype {self.dtype!r}")
        if self.scope not in _VALID_SCOPES:
            raise TIRError(f"unsupported scope {self.scope!r}")
        shape = tuple(int(s) for s in self.shape)
        if any(s <= 0 for s in shape):
            raise TIRError(f"buffer {self.name!r} has non-positive extent in {shape}")
        object.__setattr__(self, "shape", shape)

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        """Total number of elements."""
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    @property
    def dtype_bytes(self) -> int:
        """Bytes per element."""
        return _DTYPE_BYTES[self.dtype]

    @property
    def size_bytes(self) -> int:
        """Total footprint in bytes."""
        return self.num_elements * self.dtype_bytes

    def with_scope(self, scope: str) -> "Buffer":
        """Return a copy of this buffer in a different memory scope."""
        return Buffer(name=f"{self.name}.{scope}", shape=self.shape, dtype=self.dtype, scope=scope)

    def __repr__(self) -> str:
        dims = "x".join(str(s) for s in self.shape)
        return f"Buffer({self.name}: {self.dtype}[{dims}] @{self.scope})"
