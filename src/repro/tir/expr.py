"""Expression nodes of the miniature TIR.

Expressions appear on the right-hand side of compute statements.  The cost
model never evaluates them numerically; it only needs structural information
(arithmetic operation counts, intrinsic usage, buffer loads), so the node set
is intentionally small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from repro.errors import TIRError
from repro.tir.buffer import Buffer

# Cost (in scalar FLOPs) of one application of each intrinsic.  The values
# follow the common convention used by analytical GPU models: transcendental
# functions are an order of magnitude more expensive than a fused multiply-add.
INTRINSIC_FLOPS: Dict[str, float] = {
    "exp": 8.0,
    "log": 8.0,
    "sqrt": 4.0,
    "rsqrt": 5.0,
    "tanh": 10.0,
    "sigmoid": 10.0,
    "erf": 12.0,
    "max": 1.0,
    "min": 1.0,
    "abs": 1.0,
    "floor": 1.0,
    "pow": 12.0,
}

_BINARY_OPS = ("+", "-", "*", "/", "%", "max", "min")


class Expr:
    """Base class for all expression nodes."""

    def flops(self) -> float:
        """Scalar floating-point operations performed by one evaluation."""
        raise NotImplementedError

    def loads(self) -> List["BufferLoad"]:
        """All buffer loads contained in this expression (with duplicates)."""
        raise NotImplementedError

    def free_vars(self) -> Set[str]:
        """Names of loop variables referenced by this expression."""
        raise NotImplementedError

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal over the expression tree."""
        yield self
        for child in self._children():
            yield from child.walk()

    def _children(self) -> Tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Var(Expr):
    """A loop (iteration) variable, referenced by name."""

    name: str

    def flops(self) -> float:
        return 0.0

    def loads(self) -> List["BufferLoad"]:
        return []

    def free_vars(self) -> Set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntImm(Expr):
    """An integer immediate."""

    value: int

    def flops(self) -> float:
        return 0.0

    def loads(self) -> List["BufferLoad"]:
        return []

    def free_vars(self) -> Set[str]:
        return set()

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class FloatImm(Expr):
    """A floating-point immediate."""

    value: float

    def flops(self) -> float:
        return 0.0

    def loads(self) -> List["BufferLoad"]:
        return []

    def free_vars(self) -> Set[str]:
        return set()

    def __repr__(self) -> str:
        return f"{self.value:g}"


@dataclass(frozen=True)
class BinaryOp(Expr):
    """A binary arithmetic operation (one FLOP per evaluation)."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINARY_OPS:
            raise TIRError(f"unsupported binary op {self.op!r}")

    def flops(self) -> float:
        return 1.0 + self.lhs.flops() + self.rhs.flops()

    def loads(self) -> List["BufferLoad"]:
        return self.lhs.loads() + self.rhs.loads()

    def free_vars(self) -> Set[str]:
        return self.lhs.free_vars() | self.rhs.free_vars()

    def _children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


@dataclass(frozen=True)
class Call(Expr):
    """An intrinsic call such as ``exp(x)`` or ``max(x, 0)``."""

    func: str
    args: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.func not in INTRINSIC_FLOPS:
            raise TIRError(f"unsupported intrinsic {self.func!r}")
        object.__setattr__(self, "args", tuple(self.args))

    def flops(self) -> float:
        return INTRINSIC_FLOPS[self.func] + sum(arg.flops() for arg in self.args)

    def loads(self) -> List["BufferLoad"]:
        result: List[BufferLoad] = []
        for arg in self.args:
            result.extend(arg.loads())
        return result

    def free_vars(self) -> Set[str]:
        names: Set[str] = set()
        for arg in self.args:
            names |= arg.free_vars()
        return names

    def _children(self) -> Tuple[Expr, ...]:
        return self.args

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class BufferLoad(Expr):
    """A read of one element from a buffer, indexed by loop variables."""

    buffer: Buffer
    indices: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "indices", tuple(self.indices))

    def flops(self) -> float:
        return sum(index.flops() for index in self.indices)

    def loads(self) -> List["BufferLoad"]:
        result: List[BufferLoad] = [self]
        for index in self.indices:
            result.extend(index.loads())
        return result

    def free_vars(self) -> Set[str]:
        names: Set[str] = set()
        for index in self.indices:
            names |= index.free_vars()
        return names

    def _children(self) -> Tuple[Expr, ...]:
        return self.indices

    def __repr__(self) -> str:
        idx = ", ".join(repr(i) for i in self.indices)
        return f"{self.buffer.name}[{idx}]"


def make_const(value: float) -> Expr:
    """Create an immediate of the appropriate type."""
    if float(value).is_integer():
        return IntImm(int(value))
    return FloatImm(float(value))


def add(lhs: Expr, rhs: Expr) -> Expr:
    """Convenience constructor for ``lhs + rhs``."""
    return BinaryOp("+", lhs, rhs)


def mul(lhs: Expr, rhs: Expr) -> Expr:
    """Convenience constructor for ``lhs * rhs``."""
    return BinaryOp("*", lhs, rhs)
