"""Lowering a (task, schedule) pair into a concrete tensor program.

Lowering materialises the task's iteration space as a loop nest, applies the
schedule's split/fuse/reorder/annotate/cache steps, and emits compute
statements (AST leaves): an optional reduction initialiser, the anchor
statement wrapped in the reduction loops, the fused epilogue statements, and
one copy statement per cache stage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ScheduleError
from repro.tir.buffer import Buffer
from repro.tir.expr import BinaryOp, BufferLoad, Call, Expr, FloatImm, Var
from repro.tir.schedule import (
    AnnotateStep,
    CacheStep,
    FuseStep,
    ReorderStep,
    Schedule,
    SplitStep,
)
from repro.tir.stmt import ComputeStmt, ForLoop, LoopKind, SeqStmt, Stmt
from repro.tir.task import REDUCE, SPATIAL, StatementSpec, Task

_ANNOTATION_TO_KIND = {
    "parallel": LoopKind.PARALLEL,
    "vectorize": LoopKind.VECTORIZED,
    "unroll": LoopKind.UNROLLED,
}


@dataclass
class _Axis:
    """A loop axis during lowering (mutable working representation)."""

    name: str
    extent: int
    kind: str  # spatial | reduce
    annotation: LoopKind = LoopKind.SERIAL


def statement_value_expr(spec: StatementSpec) -> Expr:
    """Build the right-hand-side expression of a statement spec.

    All reads are multiplied together (the dominant pattern of contraction
    style operators); intrinsics are applied on top.  Statements without
    reads produce a constant.
    """
    loads: List[Expr] = [
        BufferLoad(read.buffer, tuple(Var(v) for v in read.index_vars)) for read in spec.reads
    ]
    if not loads:
        value: Expr = FloatImm(float(spec.init_value))
    else:
        value = loads[0]
        for load in loads[1:]:
            value = BinaryOp("*", value, load)
    for intrinsic in spec.intrinsics:
        if intrinsic in ("max", "min"):
            value = Call(intrinsic, (value, FloatImm(0.0)))
        else:
            value = Call(intrinsic, (value,))
    return value


def statement_value_flops(spec: StatementSpec) -> float:
    """FLOPs of one execution of the statement's value expression."""
    return statement_value_expr(spec).flops()


def _apply_fuse(axes: List[_Axis], step: FuseStep) -> List[_Axis]:
    names = [axis.name for axis in axes]
    try:
        positions = [names.index(loop) for loop in step.loops]
    except ValueError as exc:
        raise ScheduleError(f"fuse references unknown loop: {exc}") from exc
    positions.sort()
    kinds = {axes[p].kind for p in positions}
    if len(kinds) != 1:
        raise ScheduleError("cannot fuse spatial and reduction loops together")
    extent = 1
    for p in positions:
        extent *= axes[p].extent
    fused = _Axis(
        name="@".join(axes[p].name for p in positions),
        extent=extent,
        kind=axes[positions[0]].kind,
    )
    result = [axis for i, axis in enumerate(axes) if i not in positions]
    result.insert(positions[0], fused)
    return result


def _apply_split(axes: List[_Axis], step: SplitStep) -> List[_Axis]:
    names = [axis.name for axis in axes]
    if step.loop not in names:
        raise ScheduleError(f"split references unknown loop {step.loop!r}")
    index = names.index(step.loop)
    axis = axes[index]
    inner_product = 1
    for factor in step.factors:
        inner_product *= factor
    outer_extent = max(1, math.ceil(axis.extent / inner_product))
    new_axes = [_Axis(f"{axis.name}.0", outer_extent, axis.kind)]
    for level, factor in enumerate(step.factors, start=1):
        new_axes.append(_Axis(f"{axis.name}.{level}", int(factor), axis.kind))
    return axes[:index] + new_axes + axes[index + 1 :]


def _apply_reorder(axes: List[_Axis], step: ReorderStep) -> List[_Axis]:
    by_name = {axis.name: axis for axis in axes}
    ordered = [by_name[name] for name in step.order if name in by_name]
    rest = [axis for axis in axes if axis.name not in set(step.order)]
    return ordered + rest


def _apply_annotate(axes: List[_Axis], step: AnnotateStep) -> None:
    for axis in axes:
        if axis.name == step.loop:
            axis.annotation = _ANNOTATION_TO_KIND[step.annotation]
            return
    # Annotations that refer to loops removed by later fusion or that never
    # existed are dropped, mirroring the leniency of auto-generated schedules.


def _nest(axes: Sequence[_Axis], body: Stmt) -> Stmt:
    """Wrap ``body`` in the loops of ``axes`` (first axis is outermost)."""
    result = body
    for axis in reversed(list(axes)):
        result = ForLoop(Var(axis.name), axis.extent, axis.annotation, result)
    return result


def _cache_statements(task: Task, cache_steps: Sequence[CacheStep]) -> List[ComputeStmt]:
    stmts: List[ComputeStmt] = []
    reads_by_buffer = {read.buffer.name: read for read in task.body.reads}
    for step in cache_steps:
        read = reads_by_buffer.get(step.buffer)
        if read is None:
            raise ScheduleError(f"cache step references unknown input buffer {step.buffer!r}")
        cached = read.buffer.with_scope(step.scope)
        index_exprs = tuple(Var(v) for v in read.index_vars)
        stmts.append(
            ComputeStmt(
                buffer=cached,
                indices=index_exprs,
                value=BufferLoad(read.buffer, index_exprs),
                label=f"cache_read.{read.buffer.name}",
            )
        )
    return stmts


def lower(task: Task, schedule: Optional[Schedule] = None) -> "TensorProgram":
    """Lower ``task`` with ``schedule`` into a :class:`TensorProgram`.

    When ``schedule`` is ``None`` the task's default (untiled, serial) loop
    nest is produced.
    """
    from repro.tir.program import TensorProgram  # local import to avoid a cycle

    schedule = schedule or Schedule()
    axes: List[_Axis] = [_Axis(iv.name, iv.extent, iv.kind) for iv in task.iter_vars]
    cache_steps: List[CacheStep] = []

    for step in schedule.steps:
        if isinstance(step, FuseStep):
            axes = _apply_fuse(axes, step)
        elif isinstance(step, SplitStep):
            axes = _apply_split(axes, step)
        elif isinstance(step, ReorderStep):
            axes = _apply_reorder(axes, step)
        elif isinstance(step, AnnotateStep):
            _apply_annotate(axes, step)
        elif isinstance(step, CacheStep):
            cache_steps.append(step)
        else:
            raise ScheduleError(f"unknown schedule step {step!r}")

    spatial_axes = [axis for axis in axes if axis.kind == SPATIAL]
    reduce_axes = [axis for axis in axes if axis.kind == REDUCE]

    # Innermost body: init + reduction nest around the anchor + epilogues.
    inner_stmts: List[Stmt] = []
    anchor_indices = tuple(Var(v) for v in task.body.output_vars)
    if task.body.reduction:
        inner_stmts.append(
            ComputeStmt(
                buffer=task.body.output,
                indices=anchor_indices,
                value=FloatImm(float(task.body.init_value)),
                is_init=True,
                label=f"{task.body.name}.init",
            )
        )
    anchor = ComputeStmt(
        buffer=task.body.output,
        indices=anchor_indices,
        value=statement_value_expr(task.body),
        is_reduction=task.body.reduction,
        label=task.body.name,
    )
    if task.body.reduction and reduce_axes:
        inner_stmts.append(_nest(reduce_axes, anchor))
    else:
        inner_stmts.append(anchor)
    for epilogue in task.epilogues:
        inner_stmts.append(
            ComputeStmt(
                buffer=epilogue.output,
                indices=tuple(Var(v) for v in epilogue.output_vars),
                value=statement_value_expr(epilogue),
                label=epilogue.name,
            )
        )
    inner_body: Stmt = inner_stmts[0] if len(inner_stmts) == 1 else SeqStmt(inner_stmts)

    cache_stmts = _cache_statements(task, cache_steps)
    if spatial_axes:
        if cache_stmts:
            # Cache copies execute once per iteration of the outermost spatial
            # loop and are reused by the inner loops, modelling data staging.
            outer, rest = spatial_axes[0], spatial_axes[1:]
            body_below_outer: Stmt = _nest(rest, inner_body) if rest else inner_body
            outer_body = SeqStmt([*cache_stmts, body_below_outer])
            root: Stmt = ForLoop(Var(outer.name), outer.extent, outer.annotation, outer_body)
        else:
            root = _nest(spatial_axes, inner_body)
    else:
        stmts = [*cache_stmts, inner_body] if cache_stmts else [inner_body]
        root = stmts[0] if len(stmts) == 1 else SeqStmt(stmts)

    return TensorProgram(task=task, schedule=schedule, root=root)
