"""Concrete tensor programs and their structural statistics.

A :class:`TensorProgram` is the result of lowering a (task, schedule) pair.
It is the object the profiler measures (on the simulated device) and the
feature extractor consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Tuple

from repro.tir.schedule import Schedule
from repro.tir.stmt import ComputeStmt, ForLoop, LoopKind, SeqStmt, Stmt
from repro.tir.task import Task


@dataclass(frozen=True)
class LoopContext:
    """Information about one loop enclosing a leaf statement."""

    name: str
    extent: int
    kind: LoopKind


@dataclass(frozen=True)
class LeafRecord:
    """A compute statement together with its enclosing loop context.

    This is the unit from which the Compact AST's computation vectors are
    extracted: every leaf knows its statement, the loops wrapping it (from
    outermost to innermost) and how many times it executes.
    """

    stmt: ComputeStmt
    loops: Tuple[LoopContext, ...]

    @property
    def trip_count(self) -> int:
        """Number of times the statement executes."""
        count = 1
        for loop in self.loops:
            count *= loop.extent
        return count

    @property
    def loop_depth(self) -> int:
        """Number of enclosing loops."""
        return len(self.loops)

    def extent_of(self, kind: LoopKind) -> int:
        """Product of extents of enclosing loops with the given annotation."""
        total = 1
        for loop in self.loops:
            if loop.kind is kind:
                total *= loop.extent
        return total

    @property
    def total_flops(self) -> float:
        """FLOPs contributed by this leaf over all its executions."""
        return self.stmt.flops * self.trip_count

    @property
    def total_bytes_read(self) -> float:
        """Bytes read by this leaf over all its executions (no reuse model)."""
        return self.stmt.bytes_read * self.trip_count

    @property
    def total_bytes_written(self) -> float:
        """Bytes written by this leaf over all its executions."""
        return self.stmt.bytes_written * self.trip_count


@dataclass(frozen=True)
class ProgramStats:
    """Aggregate structural statistics of a tensor program."""

    total_flops: float
    total_bytes_read: float
    total_bytes_written: float
    num_leaves: int
    num_ast_nodes: int
    max_loop_depth: int
    parallel_extent: int
    vectorized_extent: int
    unrolled_extent: int
    num_cache_stages: int
    num_intrinsic_calls: int

    @property
    def total_bytes(self) -> float:
        """Total memory traffic in bytes."""
        return self.total_bytes_read + self.total_bytes_written

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of memory traffic."""
        return self.total_flops / max(self.total_bytes, 1.0)


@dataclass
class TensorProgram:
    """A lowered tensor program: task + schedule + concrete loop-nest IR."""

    task: Task
    schedule: Schedule
    root: Stmt

    @cached_property
    def leaf_records(self) -> Tuple[LeafRecord, ...]:
        """All compute statements with their enclosing loop context, in order."""
        records: List[LeafRecord] = []

        def visit(stmt: Stmt, loops: Tuple[LoopContext, ...]) -> None:
            if isinstance(stmt, ForLoop):
                context = LoopContext(stmt.var.name, stmt.extent, stmt.kind)
                visit(stmt.body, loops + (context,))
            elif isinstance(stmt, SeqStmt):
                for child in stmt.stmts:
                    visit(child, loops)
            elif isinstance(stmt, ComputeStmt):
                records.append(LeafRecord(stmt, loops))

        visit(self.root, ())
        return tuple(records)

    @cached_property
    def stats(self) -> ProgramStats:
        """Aggregate structural statistics (FLOPs, bytes, loop structure...)."""
        total_flops = 0.0
        bytes_read = 0.0
        bytes_written = 0.0
        max_depth = 0
        parallel_extent = 1
        vectorized_extent = 1
        unrolled_extent = 1
        cache_stages = 0
        intrinsic_calls = 0

        seen_loops: Dict[str, LoopContext] = {}
        for record in self.leaf_records:
            total_flops += record.total_flops
            bytes_read += record.total_bytes_read
            bytes_written += record.total_bytes_written
            max_depth = max(max_depth, record.loop_depth)
            if record.stmt.label.startswith("cache_read"):
                cache_stages += 1
            intrinsic_calls += sum(
                1 for node in record.stmt.value.walk() if node.__class__.__name__ == "Call"
            )
            for loop in record.loops:
                seen_loops.setdefault(loop.name, loop)

        for loop in seen_loops.values():
            if loop.kind is LoopKind.PARALLEL:
                parallel_extent *= loop.extent
            elif loop.kind is LoopKind.VECTORIZED:
                vectorized_extent *= loop.extent
            elif loop.kind is LoopKind.UNROLLED:
                unrolled_extent *= loop.extent

        num_nodes = len(seen_loops) + len(self.leaf_records)
        return ProgramStats(
            total_flops=total_flops,
            total_bytes_read=bytes_read,
            total_bytes_written=bytes_written,
            num_leaves=len(self.leaf_records),
            num_ast_nodes=num_nodes,
            max_loop_depth=max_depth,
            parallel_extent=parallel_extent,
            vectorized_extent=vectorized_extent,
            unrolled_extent=unrolled_extent,
            num_cache_stages=cache_stages,
            num_intrinsic_calls=intrinsic_calls,
        )

    @property
    def num_leaves(self) -> int:
        """Number of AST leaves (compute statements)."""
        return len(self.leaf_records)

    def describe(self) -> str:
        """Human-readable pseudo-code of the program."""
        from repro.tir.stmt import format_stmt

        header = f"# task: {self.task.op_type}  model: {self.task.model}\n"
        return header + format_stmt(self.root)

    def __repr__(self) -> str:
        return (
            f"TensorProgram({self.task.op_type}, leaves={self.num_leaves}, "
            f"flops={self.stats.total_flops:.3g})"
        )
