"""Tiramisu-style ASTs of tensor programs and their pre-order serialization.

The AST has two node types (Fig. 1 of the paper): non-leaf nodes for loop
variables and leaf nodes for computation statements.  The Compact AST keeps
only the leaves and records their positions via the pre-order traversal with
a ``-1`` marker appended after each leaf.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.tir.program import TensorProgram
from repro.tir.stmt import ComputeStmt, ForLoop, SeqStmt, Stmt

LEAF_MARKER = -1


@dataclass
class ASTNode:
    """One node of the Tiramisu-style AST."""

    kind: str  # "loop" | "compute"
    label: str
    extent: int = 0
    children: List["ASTNode"] = field(default_factory=list)
    stmt: Optional[ComputeStmt] = None

    @property
    def is_leaf(self) -> bool:
        """Leaves are computation statements."""
        return self.kind == "compute"

    def num_nodes(self) -> int:
        """Total node count of the subtree rooted here."""
        return 1 + sum(child.num_nodes() for child in self.children)

    def num_leaves(self) -> int:
        """Leaf count of the subtree rooted here."""
        if self.is_leaf:
            return 1
        return sum(child.num_leaves() for child in self.children)

    def depth(self) -> int:
        """Height of the subtree rooted here."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)


def _build(stmt: Stmt) -> List[ASTNode]:
    if isinstance(stmt, ForLoop):
        node = ASTNode(kind="loop", label=stmt.var.name, extent=stmt.extent)
        node.children = _build(stmt.body)
        return [node]
    if isinstance(stmt, SeqStmt):
        nodes: List[ASTNode] = []
        for child in stmt.stmts:
            nodes.extend(_build(child))
        return nodes
    if isinstance(stmt, ComputeStmt):
        return [ASTNode(kind="compute", label=stmt.label, stmt=stmt)]
    raise TypeError(f"unexpected statement type {type(stmt).__name__}")


def build_ast(program: TensorProgram) -> ASTNode:
    """Build the Tiramisu-style AST of ``program``.

    A synthetic root node is added so programs whose outermost level is a
    statement sequence still form a single tree.
    """
    children = _build(program.root)
    if len(children) == 1 and children[0].kind == "loop":
        return children[0]
    root = ASTNode(kind="loop", label="root", extent=1)
    root.children = children
    return root


def preorder_serialize(root: ASTNode) -> Tuple[List[int], List[int]]:
    """Serialize the AST by pre-order traversal.

    Returns ``(sequence, leaf_positions)`` where ``sequence`` assigns each
    node its pre-order index and appends :data:`LEAF_MARKER` after every leaf
    (Fig. 1(d) of the paper), and ``leaf_positions`` lists the pre-order
    index of each leaf in traversal order -- this is the *ordering vector*
    used by the positional encoding.
    """
    sequence: List[int] = []
    leaf_positions: List[int] = []
    counter = 0

    def visit(node: ASTNode) -> None:
        nonlocal counter
        index = counter
        counter += 1
        sequence.append(index)
        if node.is_leaf:
            leaf_positions.append(index)
            sequence.append(LEAF_MARKER)
        for child in node.children:
            visit(child)

    visit(root)
    return sequence, leaf_positions


def ast_summary(program: TensorProgram) -> dict:
    """Node/leaf/depth statistics of a program's AST (Fig. 2 analysis)."""
    root = build_ast(program)
    return {
        "num_nodes": root.num_nodes(),
        "num_leaves": root.num_leaves(),
        "depth": root.depth(),
    }
