"""Schedule primitives and random schedule sampling (Ansor-style).

A :class:`Schedule` is an ordered list of primitive steps applied to a task's
iteration space during lowering: loop splitting (tiling), fusion, reordering,
annotation (parallel/vectorize/unroll) and cache-stage insertion.  The
schedule is what makes two programs of the same task differ in latency, so
the dataset samples many random schedules per task, exactly like Tenset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ScheduleError
from repro.tir.task import REDUCE, SPATIAL, Task

ANNOTATIONS = ("parallel", "vectorize", "unroll")
_TILE_FACTORS = (2, 3, 4, 8, 16, 32)


@dataclass(frozen=True)
class SplitStep:
    """Split loop ``loop`` into an outer loop and ``len(factors)`` inner loops."""

    loop: str
    factors: Tuple[int, ...]

    def __post_init__(self) -> None:
        factors = tuple(int(f) for f in self.factors)
        if not factors or any(f <= 0 for f in factors):
            raise ScheduleError(f"invalid split factors {self.factors} for loop {self.loop!r}")
        object.__setattr__(self, "factors", factors)


@dataclass(frozen=True)
class FuseStep:
    """Fuse consecutive loops of the same kind into a single loop."""

    loops: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.loops) < 2:
            raise ScheduleError("fuse requires at least two loops")
        object.__setattr__(self, "loops", tuple(self.loops))


@dataclass(frozen=True)
class ReorderStep:
    """Reorder loops; loops not mentioned keep their relative order at the end."""

    order: Tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "order", tuple(self.order))


@dataclass(frozen=True)
class AnnotateStep:
    """Annotate a loop with parallel / vectorize / unroll."""

    loop: str
    annotation: str

    def __post_init__(self) -> None:
        if self.annotation not in ANNOTATIONS:
            raise ScheduleError(f"unknown annotation {self.annotation!r}")


@dataclass(frozen=True)
class CacheStep:
    """Stage an input buffer into faster memory (adds a copy statement/leaf)."""

    buffer: str
    scope: str = "shared"

    def __post_init__(self) -> None:
        if self.scope not in ("shared", "local"):
            raise ScheduleError(f"cache scope must be shared/local, got {self.scope!r}")


ScheduleStep = object  # union of the dataclasses above; kept loose for simplicity


@dataclass
class Schedule:
    """An ordered list of schedule steps."""

    steps: List[ScheduleStep] = field(default_factory=list)

    def add(self, step: ScheduleStep) -> "Schedule":
        """Append a step and return ``self`` (fluent style)."""
        self.steps.append(step)
        return self

    def split(self, loop: str, factors: Sequence[int]) -> "Schedule":
        """Append a :class:`SplitStep`."""
        return self.add(SplitStep(loop, tuple(factors)))

    def fuse(self, loops: Sequence[str]) -> "Schedule":
        """Append a :class:`FuseStep`."""
        return self.add(FuseStep(tuple(loops)))

    def reorder(self, order: Sequence[str]) -> "Schedule":
        """Append a :class:`ReorderStep`."""
        return self.add(ReorderStep(tuple(order)))

    def annotate(self, loop: str, annotation: str) -> "Schedule":
        """Append an :class:`AnnotateStep`."""
        return self.add(AnnotateStep(loop, annotation))

    def cache(self, buffer: str, scope: str = "shared") -> "Schedule":
        """Append a :class:`CacheStep`."""
        return self.add(CacheStep(buffer, scope))

    # ------------------------------------------------------------------
    # Introspection used by baselines (TLP consumes schedule primitives only)
    # ------------------------------------------------------------------
    def primitive_counts(self) -> Dict[str, int]:
        """Count steps by primitive type."""
        counts = {"split": 0, "fuse": 0, "reorder": 0, "annotate": 0, "cache": 0}
        for step in self.steps:
            if isinstance(step, SplitStep):
                counts["split"] += 1
            elif isinstance(step, FuseStep):
                counts["fuse"] += 1
            elif isinstance(step, ReorderStep):
                counts["reorder"] += 1
            elif isinstance(step, AnnotateStep):
                counts["annotate"] += 1
            elif isinstance(step, CacheStep):
                counts["cache"] += 1
        return counts

    def annotation_counts(self) -> Dict[str, int]:
        """Count annotation steps by annotation kind."""
        counts = {name: 0 for name in ANNOTATIONS}
        for step in self.steps:
            if isinstance(step, AnnotateStep):
                counts[step.annotation] += 1
        return counts

    def split_factor_stats(self) -> Tuple[float, float]:
        """Return (mean, max) of all split factors (0, 0 when no splits)."""
        factors = [f for step in self.steps if isinstance(step, SplitStep) for f in step.factors]
        if not factors:
            return 0.0, 0.0
        return float(np.mean(factors)), float(np.max(factors))

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        return f"Schedule({len(self.steps)} steps)"


# ----------------------------------------------------------------------
# JSON-friendly (de)serialization, used to persist search results
# ----------------------------------------------------------------------
_STEP_KINDS = {
    "split": SplitStep,
    "fuse": FuseStep,
    "reorder": ReorderStep,
    "annotate": AnnotateStep,
    "cache": CacheStep,
}


def step_to_dict(step: ScheduleStep) -> Dict:
    """One schedule step as a plain JSON-serializable dict."""
    if isinstance(step, SplitStep):
        return {"kind": "split", "loop": step.loop, "factors": list(step.factors)}
    if isinstance(step, FuseStep):
        return {"kind": "fuse", "loops": list(step.loops)}
    if isinstance(step, ReorderStep):
        return {"kind": "reorder", "order": list(step.order)}
    if isinstance(step, AnnotateStep):
        return {"kind": "annotate", "loop": step.loop, "annotation": step.annotation}
    if isinstance(step, CacheStep):
        return {"kind": "cache", "buffer": step.buffer, "scope": step.scope}
    raise ScheduleError(f"cannot serialize unknown schedule step {step!r}")


def step_from_dict(payload: Dict) -> ScheduleStep:
    """Rebuild one schedule step from :func:`step_to_dict` output."""
    kind = payload.get("kind")
    if kind == "split":
        return SplitStep(payload["loop"], tuple(payload["factors"]))
    if kind == "fuse":
        return FuseStep(tuple(payload["loops"]))
    if kind == "reorder":
        return ReorderStep(tuple(payload["order"]))
    if kind == "annotate":
        return AnnotateStep(payload["loop"], payload["annotation"])
    if kind == "cache":
        return CacheStep(payload["buffer"], payload.get("scope", "shared"))
    raise ScheduleError(
        f"cannot deserialize schedule step of kind {kind!r} "
        f"(expected one of {sorted(_STEP_KINDS)})"
    )


def schedule_to_dict(schedule: Schedule) -> Dict:
    """A schedule as a JSON-serializable dict (see :func:`schedule_from_dict`).

    The round-trip is exact: rebuilding yields a schedule that compares equal
    step by step (the steps are frozen dataclasses with value equality), so a
    persisted search result replays to the *same* lowered program.
    """
    return {"steps": [step_to_dict(step) for step in schedule.steps]}


def schedule_from_dict(payload: Dict) -> Schedule:
    """Rebuild a schedule from :func:`schedule_to_dict` output."""
    steps = payload.get("steps")
    if not isinstance(steps, list):
        raise ScheduleError("schedule payload needs a 'steps' list")
    return Schedule([step_from_dict(step) for step in steps])


def _sample_factors(rng: np.random.Generator, extent: int, max_levels: int = 2) -> Tuple[int, ...]:
    """Sample tiling factors that are plausible for a loop of size ``extent``."""
    levels = int(rng.integers(1, max_levels + 1))
    factors: List[int] = []
    remaining = max(extent, 1)
    for _ in range(levels):
        candidates = [f for f in _TILE_FACTORS if f <= max(remaining, 2)]
        if not candidates:
            break
        factor = int(rng.choice(candidates))
        factors.append(factor)
        remaining = max(remaining // factor, 1)
    return tuple(factors) if factors else (2,)


def random_schedule(
    task: Task,
    rng: np.random.Generator,
    target_kind: str = "gpu",
    max_tiled_loops: int = 3,
) -> Schedule:
    """Sample a random but plausible schedule for ``task``.

    The sampling space mirrors Ansor's sketch+annotation search space at a
    coarse granularity: multi-level tiling of the largest spatial loops,
    optional reduction splitting, parallel/vectorize/unroll annotations whose
    placement depends on the target kind, and optional cache stages.
    """
    schedule = Schedule()
    spatial = sorted(task.spatial_vars, key=lambda iv: -iv.extent)
    reduce_axes = sorted(task.reduce_vars, key=lambda iv: -iv.extent)

    # Multi-level tiling of the largest spatial loops.
    tiled: List[str] = []
    num_tiled = int(rng.integers(1, max(2, min(max_tiled_loops, len(spatial)) + 1))) if spatial else 0
    for iv in spatial[:num_tiled]:
        if iv.extent < 2:
            continue
        schedule.split(iv.name, _sample_factors(rng, iv.extent))
        tiled.append(iv.name)

    # Optionally split the largest reduction loop (reduction tiling).
    if reduce_axes and reduce_axes[0].extent >= 4 and rng.random() < 0.6:
        schedule.split(reduce_axes[0].name, _sample_factors(rng, reduce_axes[0].extent, max_levels=1))

    # Optionally fuse the two outermost spatial loops (common for parallelism).
    if len(spatial) >= 2 and not tiled and rng.random() < 0.3:
        schedule.fuse((spatial[0].name, spatial[1].name))

    # Annotations: placement differs by device kind, matching common practice.
    if spatial:
        outer = f"{tiled[0]}.0" if tiled else spatial[0].name
        inner = f"{tiled[-1]}.1" if tiled else spatial[-1].name
        if target_kind in ("gpu", "accel"):
            schedule.annotate(outer, "parallel")
            if rng.random() < 0.8:
                schedule.annotate(inner, "vectorize")
            if rng.random() < 0.4:
                schedule.annotate(inner, "unroll")
        else:  # cpu
            if rng.random() < 0.9:
                schedule.annotate(outer, "parallel")
            if rng.random() < 0.7:
                schedule.annotate(inner, "vectorize")
            if rng.random() < 0.5:
                schedule.annotate(inner, "unroll")

    # Cache stages for the inputs of the anchor statement.
    for read in task.body.reads:
        if read.buffer.scope != "global":
            continue
        if rng.random() < (0.4 if target_kind == "gpu" else 0.15):
            scope = "shared" if target_kind == "gpu" else "local"
            schedule.cache(read.buffer.name, scope)

    # Occasionally reorder the spatial loops.
    if len(spatial) >= 2 and rng.random() < 0.25:
        names = [iv.name for iv in spatial]
        perm = list(rng.permutation(len(names)))
        schedule.reorder(tuple(names[i] for i in perm))

    return schedule
