"""Task templates: the declarative description of one computational subgraph.

A *task* corresponds to one TVM auto-scheduler task -- a computational
subgraph (e.g. a fused Conv2d+ReLU) together with its iteration space.  The
auto-tuner samples many schedules per task; lowering a (task, schedule) pair
yields a concrete :class:`~repro.tir.program.TensorProgram`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import TIRError
from repro.tir.buffer import Buffer
from repro.utils.rng import stable_hash

SPATIAL = "spatial"
REDUCE = "reduce"


@dataclass(frozen=True)
class IterVar:
    """One axis of a task's iteration space."""

    name: str
    extent: int
    kind: str = SPATIAL

    def __post_init__(self) -> None:
        if self.kind not in (SPATIAL, REDUCE):
            raise TIRError(f"iter var kind must be spatial/reduce, got {self.kind!r}")
        if int(self.extent) <= 0:
            raise TIRError(f"iter var {self.name!r} has non-positive extent {self.extent}")
        object.__setattr__(self, "extent", int(self.extent))


@dataclass(frozen=True)
class ReadSpec:
    """A read of one input buffer performed by a statement.

    ``index_vars`` lists the iteration variables that appear in the access
    index; ``pattern`` summarises the access pattern (contiguous accesses hit
    caches and coalesce, strided/gather accesses do not), which the device
    simulator uses to derive effective memory bandwidth.
    """

    buffer: Buffer
    index_vars: Tuple[str, ...]
    pattern: str = "contiguous"

    def __post_init__(self) -> None:
        if self.pattern not in ("contiguous", "strided", "gather"):
            raise TIRError(f"unknown access pattern {self.pattern!r}")
        object.__setattr__(self, "index_vars", tuple(self.index_vars))


@dataclass(frozen=True)
class StatementSpec:
    """Declarative description of one compute statement.

    Attributes:
        name: Statement label (shows up in ASTs/features), e.g. ``"conv2d"``.
        output: Destination buffer.
        output_vars: Spatial iteration variables indexing the output.
        reads: Input buffer reads.
        intrinsics: Intrinsic functions applied to the combined value
            (e.g. ``("exp",)`` for softmax, ``("max",)`` for ReLU).
        reduction: Whether the statement accumulates over the task's
            reduction axes.
        init_value: Initial value for the accumulator (only for reductions).
    """

    name: str
    output: Buffer
    output_vars: Tuple[str, ...]
    reads: Tuple[ReadSpec, ...] = ()
    intrinsics: Tuple[str, ...] = ()
    reduction: bool = False
    init_value: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "output_vars", tuple(self.output_vars))
        object.__setattr__(self, "reads", tuple(self.reads))
        object.__setattr__(self, "intrinsics", tuple(self.intrinsics))


@dataclass(frozen=True)
class Task:
    """A schedulable computational subgraph.

    Attributes:
        op_type: Operator family (``"conv2d"``, ``"dense"``, ``"softmax"``...).
        params: Operator parameters (shapes, strides, ...), used only for
            bookkeeping and baseline features.
        iter_vars: The iteration space (spatial + reduction axes).
        body: The anchor statement (carries the bulk of the FLOPs).
        epilogues: Follow-up statements over the spatial axes only
            (bias add, ReLU, residual add, ...); fusion adds epilogues.
        model: Name of the DNN model this task was extracted from (domain
            label for cross-model experiments); ``None`` for synthetic tasks.
    """

    op_type: str
    params: Mapping[str, int]
    iter_vars: Tuple[IterVar, ...]
    body: StatementSpec
    epilogues: Tuple[StatementSpec, ...] = ()
    model: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "iter_vars", tuple(self.iter_vars))
        object.__setattr__(self, "epilogues", tuple(self.epilogues))
        object.__setattr__(self, "params", dict(self.params))
        names = [iv.name for iv in self.iter_vars]
        if len(names) != len(set(names)):
            raise TIRError(f"duplicate iteration variable names in {names}")
        known = set(names)
        spatial_names = {iv.name for iv in self.iter_vars if iv.kind == SPATIAL}
        for stmt in (self.body, *self.epilogues):
            missing = set(stmt.output_vars) - known
            if missing:
                raise TIRError(
                    f"statement {stmt.name!r} indexes unknown iteration vars {sorted(missing)}"
                )
            # Lowering shares one spatial loop nest across all statements, so a
            # statement's output must span exactly the spatial axes; otherwise
            # its trip count (and therefore FLOPs/bytes) would be inflated.
            if set(stmt.output_vars) != spatial_names:
                raise TIRError(
                    f"statement {stmt.name!r} must be indexed by all spatial axes "
                    f"{sorted(spatial_names)}, got {sorted(stmt.output_vars)}"
                )

    # ------------------------------------------------------------------
    # Iteration-space helpers
    # ------------------------------------------------------------------
    @property
    def spatial_vars(self) -> Tuple[IterVar, ...]:
        """Spatial axes, in declaration order."""
        return tuple(iv for iv in self.iter_vars if iv.kind == SPATIAL)

    @property
    def reduce_vars(self) -> Tuple[IterVar, ...]:
        """Reduction axes, in declaration order."""
        return tuple(iv for iv in self.iter_vars if iv.kind == REDUCE)

    @property
    def spatial_extent(self) -> int:
        """Product of spatial axis extents (number of output points)."""
        total = 1
        for iv in self.spatial_vars:
            total *= iv.extent
        return total

    @property
    def reduce_extent(self) -> int:
        """Product of reduction axis extents."""
        total = 1
        for iv in self.reduce_vars:
            total *= iv.extent
        return total

    @property
    def workload_key(self) -> str:
        """Stable identifier of the task (operator type + parameters + model)."""
        key = stable_hash(self.op_type, sorted(self.params.items()), self.model, bits=48)
        return f"{self.op_type}-{key:012x}"

    @property
    def input_buffers(self) -> Tuple[Buffer, ...]:
        """All distinct global input buffers read by the task."""
        seen: Dict[str, Buffer] = {}
        for stmt in (self.body, *self.epilogues):
            for read in stmt.reads:
                if read.buffer.scope == "global":
                    seen.setdefault(read.buffer.name, read.buffer)
        return tuple(seen.values())

    @property
    def output_buffer(self) -> Buffer:
        """The buffer written by the last statement of the task."""
        if self.epilogues:
            return self.epilogues[-1].output
        return self.body.output

    def naive_flops(self) -> float:
        """FLOP count of the unscheduled task (used by analytical baselines)."""
        from repro.tir.lower import statement_value_flops  # local import to avoid cycle

        flops = self.spatial_extent * self.reduce_extent * (
            statement_value_flops(self.body) + (1.0 if self.body.reduction else 0.0)
        )
        for epi in self.epilogues:
            flops += self.spatial_extent * statement_value_flops(epi)
        return float(flops)

    def __repr__(self) -> str:
        space = "x".join(f"{iv.name}:{iv.extent}" for iv in self.iter_vars)
        return f"Task({self.op_type}, [{space}], model={self.model})"
