"""A miniature tensor-program IR (TIR) substrate.

The real CDMPP consumes TVM TIR produced by Ansor.  This package provides the
pieces of that stack the cost model actually depends on:

* :mod:`repro.tir.expr` / :mod:`repro.tir.stmt` -- expression and statement
  nodes (loop nests, compute statements, buffer accesses).
* :mod:`repro.tir.task` -- declarative task templates (one per computational
  subgraph), the unit on which schedules are sampled.
* :mod:`repro.tir.schedule` -- Ansor-style schedule primitives (split,
  reorder, fuse, annotate, cache) and random schedule sampling.
* :mod:`repro.tir.lower` -- lowering a (task, schedule) pair to a concrete
  :class:`~repro.tir.program.TensorProgram`.
* :mod:`repro.tir.ast` -- Tiramisu-style ASTs and pre-order serialization,
  the input of Compact-AST feature extraction.
"""

from repro.tir.buffer import Buffer
from repro.tir.expr import (
    BinaryOp,
    BufferLoad,
    Call,
    Expr,
    FloatImm,
    IntImm,
    Var,
)
from repro.tir.stmt import ComputeStmt, ForLoop, LoopKind, SeqStmt, Stmt
from repro.tir.task import IterVar, ReadSpec, StatementSpec, Task
from repro.tir.schedule import (
    AnnotateStep,
    CacheStep,
    FuseStep,
    ReorderStep,
    Schedule,
    SplitStep,
    random_schedule,
)
from repro.tir.lower import lower
from repro.tir.program import LeafRecord, ProgramStats, TensorProgram
from repro.tir.ast import ASTNode, build_ast, preorder_serialize

__all__ = [
    "Buffer",
    "Expr",
    "Var",
    "IntImm",
    "FloatImm",
    "BinaryOp",
    "Call",
    "BufferLoad",
    "Stmt",
    "ForLoop",
    "SeqStmt",
    "ComputeStmt",
    "LoopKind",
    "IterVar",
    "ReadSpec",
    "StatementSpec",
    "Task",
    "Schedule",
    "SplitStep",
    "ReorderStep",
    "FuseStep",
    "AnnotateStep",
    "CacheStep",
    "random_schedule",
    "lower",
    "TensorProgram",
    "ProgramStats",
    "LeafRecord",
    "ASTNode",
    "build_ast",
    "preorder_serialize",
]
