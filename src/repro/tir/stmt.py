"""Statement nodes of the miniature TIR: loop nests and compute statements."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.errors import TIRError
from repro.tir.buffer import Buffer
from repro.tir.expr import Expr, Var


class LoopKind(enum.Enum):
    """Annotation of a loop produced by schedule primitives."""

    SERIAL = "serial"
    PARALLEL = "parallel"
    VECTORIZED = "vectorized"
    UNROLLED = "unrolled"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Stmt:
    """Base class for statements."""

    def walk(self) -> Iterator["Stmt"]:
        """Pre-order traversal over the statement tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> Tuple["Stmt", ...]:
        """Direct child statements."""
        return ()


@dataclass
class ComputeStmt(Stmt):
    """A leaf statement: store the value of ``value`` into ``buffer[indices]``.

    Attributes:
        buffer: Destination buffer.
        indices: Index expressions (usually plain loop variables).
        value: Right-hand-side expression.
        is_reduction: True when the statement accumulates into its output
            (``C[i, j] += ...``) over the enclosing reduction loops.
        is_init: True for reduction-initialisation statements (``C[i, j] = 0``).
        label: Human-readable statement label used in ASTs and features
            (e.g. ``"conv2d.update"`` or ``"relu"``).
    """

    buffer: Buffer
    indices: Tuple[Expr, ...]
    value: Expr
    is_reduction: bool = False
    is_init: bool = False
    label: str = "compute"

    def __post_init__(self) -> None:
        self.indices = tuple(self.indices)
        if self.is_init and self.is_reduction:
            raise TIRError("a statement cannot be both init and reduction update")

    @property
    def flops(self) -> float:
        """FLOPs performed by one execution of the statement."""
        base = self.value.flops()
        if self.is_reduction:
            base += 1.0  # the accumulate add
        return base

    @property
    def num_loads(self) -> int:
        """Number of buffer loads per execution."""
        return len(self.value.loads())

    @property
    def bytes_read(self) -> float:
        """Bytes read from memory per execution."""
        return float(sum(load.buffer.dtype_bytes for load in self.value.loads()))

    @property
    def bytes_written(self) -> float:
        """Bytes written to memory per execution."""
        return float(self.buffer.dtype_bytes)

    def __repr__(self) -> str:
        idx = ", ".join(repr(i) for i in self.indices)
        op = "+=" if self.is_reduction else "="
        return f"{self.buffer.name}[{idx}] {op} {self.value!r}"


@dataclass
class ForLoop(Stmt):
    """A counted loop with a static extent and a schedule annotation."""

    var: Var
    extent: int
    kind: LoopKind
    body: Stmt

    def __post_init__(self) -> None:
        self.extent = int(self.extent)
        if self.extent <= 0:
            raise TIRError(f"loop {self.var.name!r} has non-positive extent {self.extent}")

    def children(self) -> Tuple[Stmt, ...]:
        return (self.body,)

    def __repr__(self) -> str:
        return f"for {self.var.name} in range({self.extent})  # {self.kind.value}"


@dataclass
class SeqStmt(Stmt):
    """A sequence of statements executed in order."""

    stmts: List[Stmt] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.stmts:
            raise TIRError("SeqStmt must contain at least one statement")

    def children(self) -> Tuple[Stmt, ...]:
        return tuple(self.stmts)

    def __repr__(self) -> str:
        return f"seq[{len(self.stmts)}]"


def iter_compute_stmts(stmt: Stmt) -> Iterator[ComputeStmt]:
    """Yield every compute statement (AST leaf) under ``stmt`` in order."""
    for node in stmt.walk():
        if isinstance(node, ComputeStmt):
            yield node


def format_stmt(stmt: Stmt, indent: int = 0) -> str:
    """Pretty-print a statement tree as pseudo-code (used for debugging/docs)."""
    pad = "  " * indent
    if isinstance(stmt, ForLoop):
        header = f"{pad}for {stmt.var.name} in range({stmt.extent}):"
        if stmt.kind is not LoopKind.SERIAL:
            header += f"  # {stmt.kind.value}"
        return header + "\n" + format_stmt(stmt.body, indent + 1)
    if isinstance(stmt, SeqStmt):
        return "\n".join(format_stmt(child, indent) for child in stmt.stmts)
    return f"{pad}{stmt!r}"
