"""Device substrate: device specifications (Table 2) and the latency oracle.

The paper profiles tensor programs on real accelerators; offline we replace
the hardware with :class:`repro.devices.simulator.DeviceSimulator`, an
analytical latency model whose per-device coefficients come from the specs in
Table 2 of the paper.  The simulator is the *ground truth generator* -- every
"measurement" in the synthetic Tenset dataset comes from it.
"""

from repro.devices.spec import (
    DEVICE_REGISTRY,
    DeviceSpec,
    all_device_names,
    get_device,
    list_devices,
)
from repro.devices.simulator import DeviceSimulator, simulate_latency

__all__ = [
    "DeviceSpec",
    "DEVICE_REGISTRY",
    "get_device",
    "list_devices",
    "all_device_names",
    "DeviceSimulator",
    "simulate_latency",
]
