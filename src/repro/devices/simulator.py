"""Analytical device simulator: the ground-truth latency oracle.

The simulator plays the role of real hardware in this reproduction.  It maps
a lowered :class:`~repro.tir.program.TensorProgram` and a
:class:`~repro.devices.spec.DeviceSpec` to a latency in seconds using an
extended roofline model:

* compute time = FLOPs / (peak * utilisation), where utilisation depends on
  how well the schedule exposes parallelism (parallel extent vs. cores),
  vectorisation (vector extent vs. SIMD width), unrolling, the operator's
  contraction-friendliness (GEMM engines / tensor cores), and a tail effect
  for kernels too small to fill the device;
* memory time = effective bytes / bandwidth, where effective traffic
  interpolates between the unique data footprint (perfect reuse) and the raw
  per-iteration traffic (no reuse) based on tiling, cache staging and the
  device's cache capacity, with penalties for strided/gather access;
* the two overlap imperfectly and a fixed launch overhead is added;
* multiplicative log-normal noise models measurement jitter.

The functional form is intentionally *richer* than the features the learned
cost model consumes (it includes interactions and device-specific saturation
curves), so learning the mapping is a non-trivial regression problem, while
remaining deterministic given a seed -- which is what lets the benchmark
suite compare predictors on identical ground truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.devices.spec import ACCEL, CPU, GPU, DeviceSpec
from repro.tir.program import TensorProgram
from repro.tir.stmt import LoopKind
from repro.utils.rng import new_rng, stable_hash

# Operator families that map onto GEMM/convolution engines well.
_CONTRACTION_OPS = {
    "conv2d",
    "dense",
    "batch_matmul",
    "attention_scores",
    "attention_context",
    "lstm_cell",
}

# Relative per-op efficiency tweaks per taxonomy.  These encode the kind of
# device idiosyncrasies (e.g. depthwise conv is notoriously inefficient on
# GPUs, CPUs handle gathers comparatively well) that make cross-device
# prediction non-trivial.
_OP_TAXONOMY_EFFICIENCY: Dict[str, Dict[str, float]] = {
    GPU: {"depthwise_conv2d": 0.45, "embedding_lookup": 0.55, "reduce": 0.7},
    CPU: {"conv2d": 0.8, "depthwise_conv2d": 0.75, "embedding_lookup": 0.85, "softmax": 0.8},
    ACCEL: {
        "conv2d": 1.0,
        "dense": 1.0,
        "batch_matmul": 1.0,
        "depthwise_conv2d": 0.35,
        "embedding_lookup": 0.25,
        "softmax": 0.5,
        "layer_norm": 0.5,
        "reduce": 0.4,
    },
}


@dataclass(frozen=True)
class LatencyBreakdown:
    """Detailed output of one simulation (useful for tests and debugging)."""

    latency_s: float
    compute_time_s: float
    memory_time_s: float
    launch_overhead_s: float
    compute_utilization: float
    effective_bytes: float
    noise_factor: float

    @property
    def bound(self) -> str:
        """Whether the kernel is compute- or memory-bound."""
        return "compute" if self.compute_time_s >= self.memory_time_s else "memory"


class DeviceSimulator:
    """Latency oracle for one device.

    Noise is deterministic per (device, program) pair: repeated measurements
    of the same program vary slightly (like real profiling), but regenerating
    the dataset with the same seed reproduces it exactly.
    """

    def __init__(self, device: DeviceSpec, seed: int | str | None = 0, noise_sigma: float = 0.04):
        self.device = device
        self.noise_sigma = float(noise_sigma)
        self._seed = stable_hash("device-sim", device.name, seed)

    # ------------------------------------------------------------------
    # Utilisation model
    # ------------------------------------------------------------------
    def _compute_utilization(self, program: TensorProgram) -> float:
        device = self.device
        stats = program.stats

        # Parallelism: how much of the device the schedule can occupy.
        parallel = max(stats.parallel_extent, 1)
        occupancy = min(1.0, parallel / device.cores)
        # Devices with many cores are harder to fill; GPUs need far more
        # parallel work than SMs to hide latency.
        if device.taxonomy == GPU:
            occupancy = occupancy ** 0.6
            wave_quantization = math.ceil(parallel / device.cores) / max(parallel / device.cores, 1e-9)
            occupancy /= min(wave_quantization, 2.0)
        elif device.taxonomy == CPU:
            occupancy = occupancy ** 0.8
        else:  # accelerator: coarse-grained engines
            occupancy = min(1.0, parallel / max(device.gemm_engines * 4, 1)) ** 0.5

        # Vectorisation: fraction of the SIMD/warp width actually used.
        vector = max(stats.vectorized_extent, 1)
        vec_eff = 0.35 + 0.65 * min(1.0, vector / device.vector_width)

        # Unrolling gives a small ILP bonus that saturates quickly.
        unroll_bonus = 1.0 + 0.08 * math.log2(min(max(stats.unrolled_extent, 1), 64))

        # Operator efficiency: contraction-heavy ops reach the GEMM units.
        op_type = program.task.op_type
        if op_type in _CONTRACTION_OPS:
            op_eff = self.device.gemm_efficiency
        else:
            op_eff = 0.5
        op_eff *= _OP_TAXONOMY_EFFICIENCY.get(device.taxonomy, {}).get(op_type, 1.0)

        # Tail effect: kernels with too little work can never reach peak.
        work_per_core = stats.total_flops / max(device.cores, 1)
        tail = 1.0 - math.exp(-work_per_core / 2e4)
        tail = max(tail, 0.02)

        utilization = occupancy * vec_eff * unroll_bonus * op_eff * tail
        return float(min(max(utilization, 1e-3), 1.0))

    # ------------------------------------------------------------------
    # Memory model
    # ------------------------------------------------------------------
    def _effective_bytes(self, program: TensorProgram) -> float:
        device = self.device
        stats = program.stats
        task = program.task

        raw_traffic = stats.total_bytes
        footprint = float(
            sum(buf.size_bytes for buf in task.input_buffers) + task.output_buffer.size_bytes
        )
        footprint = min(footprint, raw_traffic) if raw_traffic > 0 else footprint

        # Reuse quality: tiling (smaller innermost tiles fit in cache), cache
        # staging and large last-level caches all push traffic toward the
        # footprint; untiled reduction-heavy programs stay near raw traffic.
        reuse = 0.25
        mean_factor, max_factor = program.schedule.split_factor_stats()
        if max_factor > 0:
            reuse += 0.2 * min(1.0, math.log2(max_factor + 1) / 5.0)
        reuse += 0.15 * min(stats.num_cache_stages, 3)
        cache_bytes = device.l2_mb * 1e6
        if footprint > 0:
            fit = min(1.0, cache_bytes / footprint)
            reuse += 0.3 * fit
        reuse = min(reuse, 0.95)

        effective = footprint + (raw_traffic - footprint) * (1.0 - reuse)

        # Access-pattern penalty: strided and gather reads waste bandwidth.
        penalty = 1.0
        for read in (*task.body.reads, *(r for e in task.epilogues for r in e.reads)):
            if read.pattern == "strided":
                penalty += 0.15
            elif read.pattern == "gather":
                penalty += 0.45 * (device.irregular_penalty - 1.0) + 0.3
        penalty = min(penalty, device.irregular_penalty + 1.0)
        return float(effective * penalty)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def breakdown(self, program: TensorProgram) -> LatencyBreakdown:
        """Simulate one measurement and return the detailed breakdown."""
        device = self.device
        stats = program.stats

        utilization = self._compute_utilization(program)
        compute_time = stats.total_flops / (device.peak_gflops * 1e9 * utilization)

        effective_bytes = self._effective_bytes(program)
        # Memory streams also need parallelism to reach peak bandwidth.
        bw_utilization = 0.35 + 0.65 * min(1.0, max(stats.parallel_extent, 1) / device.cores) ** 0.5
        memory_time = effective_bytes / (device.bytes_per_second * bw_utilization)

        launch = device.launch_overhead_us * 1e-6
        # Imperfect overlap of compute and memory pipelines.
        overlap = 0.25 if device.taxonomy == GPU else 0.45
        body_time = max(compute_time, memory_time) + overlap * min(compute_time, memory_time)

        # Stage-structure penalty: when the work is spread over many compute
        # statements (poor fusion), the kernel pays extra synchronisation and
        # pipeline-drain cost.  This depends on the per-leaf work distribution
        # (visible to Compact-AST features, invisible to program-level
        # aggregates), with the penalty weighted by how deep the secondary
        # statements sit relative to the anchor.
        leaf_flops = np.asarray([leaf.total_flops for leaf in program.leaf_records])
        if leaf_flops.size > 1 and leaf_flops.sum() > 0:
            spread = 1.0 - float(leaf_flops.max() / leaf_flops.sum())
            depths = np.asarray([leaf.loop_depth for leaf in program.leaf_records], dtype=float)
            depth_skew = float(depths.std() / max(depths.mean(), 1.0))
            stage_penalty = 1.0 + (0.8 if device.taxonomy == ACCEL else 0.5) * spread + 0.25 * depth_skew
        else:
            stage_penalty = 1.0
        body_time *= stage_penalty

        noise_rng = new_rng(stable_hash(self._seed, program.task.workload_key,
                                        len(program.schedule.steps),
                                        round(stats.total_flops), round(stats.total_bytes)))
        noise = float(np.exp(noise_rng.normal(0.0, self.noise_sigma)))

        latency = (launch + body_time) * noise
        return LatencyBreakdown(
            latency_s=float(latency),
            compute_time_s=float(compute_time),
            memory_time_s=float(memory_time),
            launch_overhead_s=float(launch),
            compute_utilization=utilization,
            effective_bytes=effective_bytes,
            noise_factor=noise,
        )

    def measure(self, program: TensorProgram) -> float:
        """Simulated latency of ``program`` in seconds."""
        return self.breakdown(program).latency_s


def simulate_latency(
    program: TensorProgram, device: DeviceSpec, seed: int | str | None = 0
) -> float:
    """Convenience wrapper: one-off latency simulation."""
    return DeviceSimulator(device, seed=seed).measure(program)
