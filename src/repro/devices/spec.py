"""Device specifications and the registry of evaluation devices (Table 2).

``DeviceSpec`` carries the hardware parameters the paper lists (clock, memory
size, memory bandwidth, core count) plus the extra parameters the analytical
simulator and the device-dependent feature extractor need (peak FLOPS, cache
sizes, vector width, kernel launch overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import DeviceError

GPU = "gpu"
CPU = "cpu"
ACCEL = "accel"

_TAXONOMIES = (GPU, CPU, ACCEL)


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware description of one device.

    Attributes:
        name: Canonical device name (``"t4"``, ``"epyc"``, ...).
        taxonomy: ``"gpu"``, ``"cpu"`` or ``"accel"``.
        clock_mhz: Core clock in MHz (Table 2).
        memory_gb: Device memory in GB (Table 2).
        memory_bandwidth_gbps: Peak memory bandwidth in GB/s (Table 2).
        cores: SM count (GPUs), physical cores (CPUs), or compute engines
            (accelerators) (Table 2).
        peak_fp32_tflops: Peak single-precision throughput in TFLOPS.
        l1_kb: Per-core L1 / shared-memory size in KB.
        l2_mb: Last-level cache size in MB.
        vector_width: SIMD width in fp32 lanes (warp size for GPUs).
        launch_overhead_us: Fixed kernel launch / dispatch overhead in µs.
        gemm_efficiency: Fraction of peak achievable on contraction-heavy
            kernels (models tensor cores / GEMM engines).
        irregular_penalty: Multiplier (>1) applied to gather/strided-heavy
            kernels, capturing poor coalescing or prefetching.
        gemm_engines: Number of dedicated GEMM/convolution engines; used by
            the replayer to split convolution nodes on HL-100-like devices.
    """

    name: str
    taxonomy: str
    clock_mhz: float
    memory_gb: float
    memory_bandwidth_gbps: float
    cores: int
    peak_fp32_tflops: float
    l1_kb: float = 64.0
    l2_mb: float = 4.0
    vector_width: int = 32
    launch_overhead_us: float = 5.0
    gemm_efficiency: float = 0.7
    irregular_penalty: float = 1.6
    gemm_engines: int = 1

    def __post_init__(self) -> None:
        if self.taxonomy not in _TAXONOMIES:
            raise DeviceError(f"unknown device taxonomy {self.taxonomy!r}")
        for field_name in ("clock_mhz", "memory_gb", "memory_bandwidth_gbps", "peak_fp32_tflops"):
            if getattr(self, field_name) <= 0:
                raise DeviceError(f"device {self.name!r}: {field_name} must be positive")
        if self.cores <= 0:
            raise DeviceError(f"device {self.name!r}: cores must be positive")

    @property
    def peak_gflops(self) -> float:
        """Peak throughput in GFLOPS."""
        return self.peak_fp32_tflops * 1000.0

    @property
    def bytes_per_second(self) -> float:
        """Peak memory bandwidth in bytes/second."""
        return self.memory_bandwidth_gbps * 1e9

    @property
    def ridge_intensity(self) -> float:
        """Roofline ridge point (FLOPs per byte)."""
        return (self.peak_gflops * 1e9) / self.bytes_per_second

    def feature_vector(self) -> np.ndarray:
        """Device-dependent features used by the cross-device predictor.

        Log-scaled where the underlying quantity spans orders of magnitude so
        the MLP consuming them sees a well-conditioned input.
        """
        taxonomy_onehot = [
            1.0 if self.taxonomy == t else 0.0 for t in _TAXONOMIES
        ]
        values = [
            np.log2(self.clock_mhz),
            np.log2(self.memory_gb + 1.0),
            np.log2(self.memory_bandwidth_gbps),
            np.log2(self.cores),
            np.log2(self.peak_gflops),
            np.log2(self.l1_kb),
            np.log2(self.l2_mb + 1.0),
            np.log2(self.vector_width),
            self.launch_overhead_us,
            self.gemm_efficiency,
            self.irregular_penalty,
            float(self.gemm_engines),
            np.log2(self.ridge_intensity + 1.0),
        ]
        return np.asarray(taxonomy_onehot + values, dtype=np.float64)

    @staticmethod
    def feature_dim() -> int:
        """Length of :meth:`feature_vector`."""
        return 16


# ---------------------------------------------------------------------------
# Registry: the devices of Table 2 (plus spec fields the table omits, filled
# with public datasheet numbers).
# ---------------------------------------------------------------------------
DEVICE_REGISTRY: Dict[str, DeviceSpec] = {
    spec.name: spec
    for spec in [
        DeviceSpec("t4", GPU, 1590, 16, 320, 40, 8.1, l1_kb=64, l2_mb=4, vector_width=32,
                   launch_overhead_us=5.0, gemm_efficiency=0.72, irregular_penalty=1.7),
        DeviceSpec("k80", GPU, 824, 12, 240.6, 26, 4.1, l1_kb=48, l2_mb=1.5, vector_width=32,
                   launch_overhead_us=8.0, gemm_efficiency=0.55, irregular_penalty=2.0),
        DeviceSpec("p100", GPU, 1329, 16, 732.2, 56, 9.3, l1_kb=64, l2_mb=4, vector_width=32,
                   launch_overhead_us=6.0, gemm_efficiency=0.65, irregular_penalty=1.8),
        DeviceSpec("v100", GPU, 1530, 32, 900, 80, 14.0, l1_kb=96, l2_mb=6, vector_width=32,
                   launch_overhead_us=4.5, gemm_efficiency=0.78, irregular_penalty=1.6),
        DeviceSpec("a100", GPU, 1410, 40, 1555, 108, 19.5, l1_kb=192, l2_mb=40, vector_width=32,
                   launch_overhead_us=4.0, gemm_efficiency=0.85, irregular_penalty=1.5),
        DeviceSpec("hl100", ACCEL, 1575, 8, 40, 11, 11.0, l1_kb=128, l2_mb=24, vector_width=64,
                   launch_overhead_us=12.0, gemm_efficiency=0.9, irregular_penalty=3.0,
                   gemm_engines=3),
        DeviceSpec("e5-2673", CPU, 2300, 2048, 57.2, 8, 0.9, l1_kb=32, l2_mb=25, vector_width=8,
                   launch_overhead_us=1.0, gemm_efficiency=0.6, irregular_penalty=1.4),
        DeviceSpec("epyc-7452", CPU, 2350, 2048, 152.6, 32, 2.4, l1_kb=32, l2_mb=128, vector_width=8,
                   launch_overhead_us=1.0, gemm_efficiency=0.62, irregular_penalty=1.35),
        DeviceSpec("graviton2", CPU, 2500, 32, 47.5, 64, 1.8, l1_kb=64, l2_mb=32, vector_width=4,
                   launch_overhead_us=1.2, gemm_efficiency=0.58, irregular_penalty=1.45),
    ]
}

# Dataset sizes per device reported in Table 2 (number of measured records).
# Only used for documentation and the Table 2 benchmark; the synthetic dataset
# is generated at a configurable, much smaller scale.
TABLE2_SAMPLE_COUNTS: Dict[str, int] = {
    "t4": 9_000_000,
    "k80": 9_000_000,
    "p100": 9_000_000,
    "v100": 2_000_000,
    "a100": 2_000_000,
    "hl100": 4_000,
    "e5-2673": 9_000_000,
    "epyc-7452": 9_000_000,
    "graviton2": 9_000_000,
}

_ALIASES = {
    "epyc": "epyc-7452",
    "intel": "e5-2673",
    "e5": "e5-2673",
    "hl-100": "hl100",
    "habana": "hl100",
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by canonical name or alias (case-insensitive)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return DEVICE_REGISTRY[key]
    except KeyError as exc:
        raise DeviceError(
            f"unknown device {name!r}; known devices: {', '.join(sorted(DEVICE_REGISTRY))}"
        ) from exc


def list_devices(taxonomy: str | None = None) -> List[DeviceSpec]:
    """All registered devices, optionally filtered by taxonomy."""
    devices = list(DEVICE_REGISTRY.values())
    if taxonomy is not None:
        if taxonomy not in _TAXONOMIES:
            raise DeviceError(f"unknown taxonomy {taxonomy!r}")
        devices = [d for d in devices if d.taxonomy == taxonomy]
    return devices


def all_device_names() -> Tuple[str, ...]:
    """Names of all registered devices."""
    return tuple(DEVICE_REGISTRY)
