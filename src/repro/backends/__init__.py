"""Backend-agnostic cost models: one protocol for CDMPP and every baseline.

This package is the seam between "which predictor" and "everything else".
:class:`CostModel` defines the protocol (train / predict / evaluate /
save / capabilities); :mod:`repro.backends.registry` maps string names to
implementations (``make_backend("cdmpp")``, ``make_backend("xgboost")``,
aliases included) and dispatches checkpoint loading on the ``backend``
metadata tag; :class:`CDMPPBackend` and :class:`BaselineBackend` adapt the
existing trainer and baselines onto the protocol.  The model registry,
the serving stack (:class:`repro.serving.PredictionService`,
:class:`repro.serving.FleetService`), the replayer and the CLI all consume
cost models exclusively through this interface.
"""

from repro.backends.base import (
    CostModel,
    TrainStats,
    as_cost_model,
    ensure_model_level,
    per_program_devices,
)
from repro.backends.baseline import BaselineBackend
from repro.backends.cdmpp import CDMPPBackend
from repro.backends.distilled import DistilledBackend
from repro.backends.registry import (
    LEGACY_BACKEND,
    available_backends,
    backend_of_checkpoint,
    load_backend,
    make_backend,
    register_backend,
    resolve_backend_name,
)

__all__ = [
    "BaselineBackend",
    "CDMPPBackend",
    "CostModel",
    "DistilledBackend",
    "LEGACY_BACKEND",
    "TrainStats",
    "as_cost_model",
    "available_backends",
    "backend_of_checkpoint",
    "ensure_model_level",
    "load_backend",
    "make_backend",
    "per_program_devices",
    "register_backend",
    "resolve_backend_name",
]
