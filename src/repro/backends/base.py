"""The ``CostModel`` protocol: one interface for CDMPP and every baseline.

Every latency predictor in this repository — the CDMPP transformer behind
:class:`repro.core.trainer.Trainer` and the XGBoost/TLP/Habitat/Tiramisu
baselines — implements the same surface:

* ``fit(records, valid=None)`` trains on measured records and returns
  :class:`TrainStats` (wall time, samples/second — the Fig. 6 efficiency
  comparison treats every method identically);
* ``predict_programs(programs, device)`` predicts latency in seconds per
  program, where ``device`` is one target or a per-program sequence;
* ``evaluate(records)`` reports MAPE/RMSE/threshold accuracy against the
  records' measured latency;
* ``save(path)`` persists to a backend-tagged ``.npz`` checkpoint that
  :func:`repro.backends.registry.load_backend` can restore — no pickle
  anywhere;
* ``capabilities`` exposes the method's Table 1 row, so callers can refuse
  model-level queries to op-only predictors instead of silently mis-serving.

The serving stack (:class:`repro.serving.PredictionService`,
:class:`repro.serving.FleetService`), the model registry and the CLI are all
written against this protocol; :func:`as_cost_model` adapts the legacy entry
points (``Trainer``, the ``CDMPP`` facade, ``BaselineCostModel``) onto it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Union

import numpy as np

from repro.core.metrics import error_report
from repro.devices.spec import DeviceSpec
from repro.errors import TrainingError
from repro.profiler.records import MeasureRecord
from repro.tir.program import TensorProgram

DeviceLike = Union[str, DeviceSpec, Sequence[Union[str, DeviceSpec]]]


@dataclass
class TrainStats:
    """Backend-agnostic outcome of one training run."""

    train_seconds: float = 0.0
    throughput_samples_per_s: float = 0.0
    samples_processed: int = 0
    best_valid_mape: float = float("inf")
    extra: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> Dict[str, float]:
        """Plain-dict view (for reports and checkpoint metadata)."""
        out = {
            "train_seconds": float(self.train_seconds),
            "throughput_samples_per_s": float(self.throughput_samples_per_s),
            "samples_processed": int(self.samples_processed),
        }
        if np.isfinite(self.best_valid_mape):
            out["best_valid_mape"] = float(self.best_valid_mape)
        out.update(self.extra)
        return out


def per_program_devices(
    programs: Sequence[TensorProgram], device: DeviceLike
) -> List[str]:
    """Normalise a device argument to one device name per program."""
    if isinstance(device, (str, DeviceSpec)):
        name = device if isinstance(device, str) else device.name
        return [name] * len(programs)
    devices = [d if isinstance(d, str) else d.name for d in device]
    if len(devices) != len(programs):
        raise TrainingError(
            f"got {len(devices)} devices for {len(programs)} programs; "
            "pass one device, or exactly one per program"
        )
    return devices


class CostModel:
    """Common protocol of every latency-prediction backend.

    Subclasses implement :meth:`fit`, :meth:`predict_programs`,
    :meth:`predict_records`, :meth:`save` and the ``capabilities`` /
    ``cache_signature`` properties; ``evaluate`` and bookkeeping are shared.
    Concrete backends register themselves in
    :mod:`repro.backends.registry` so checkpoints and the CLI can construct
    them by name.
    """

    #: Canonical backend-registry name (class attribute of each subclass).
    backend = "abstract"

    def __init__(self) -> None:
        self._train_stats: Optional[TrainStats] = None

    # -- training -------------------------------------------------------
    def fit(
        self,
        records: Sequence[MeasureRecord],
        valid: Optional[Sequence[MeasureRecord]] = None,
    ) -> TrainStats:
        """Train on measured records (optionally validating on ``valid``)."""
        raise NotImplementedError

    @property
    def fitted(self) -> bool:
        """Whether the model is ready to answer queries."""
        raise NotImplementedError

    @property
    def train_stats(self) -> TrainStats:
        """Statistics of the last :meth:`fit` call (raises before training)."""
        if self._train_stats is None:
            raise TrainingError(f"{self.backend}: train_stats requested before fit()")
        return self._train_stats

    # -- inference ------------------------------------------------------
    def predict_programs(
        self, programs: Sequence[TensorProgram], device: DeviceLike
    ) -> np.ndarray:
        """Predicted latency in seconds per program, in input order.

        ``device`` is a single target (applied to every program) or a
        sequence with exactly one device per program, so a cross-device
        backend can answer a mixed-device batch in one call.
        """
        raise NotImplementedError

    def predict_records(self, records: Sequence[MeasureRecord]) -> np.ndarray:
        """Predicted latency per record (each record carries its own device)."""
        records = list(records)
        if not records:
            return np.zeros(0, dtype=np.float64)
        return self.predict_programs(
            [record.program for record in records],
            [record.device for record in records],
        )

    def evaluate(self, records: Sequence[MeasureRecord]) -> Dict[str, float]:
        """MAPE/RMSE/threshold accuracy against the records' measured latency."""
        records = list(records)
        predictions = self.predict_records(records)
        targets = np.asarray([record.latency_s for record in records])
        return error_report(predictions, targets)

    # -- persistence ----------------------------------------------------
    def save(self, path, extra_meta: Optional[Dict] = None):
        """Persist to a backend-tagged ``.npz`` checkpoint; returns the path."""
        raise NotImplementedError

    # -- metadata -------------------------------------------------------
    @property
    def capabilities(self) -> Dict[str, bool]:
        """The method's Table 1 capability row."""
        from repro.baselines.registry import baseline_capabilities

        return baseline_capabilities(self.backend)

    @property
    def cache_signature(self) -> Hashable:
        """Hashable feature-space tag folded into serving cache keys.

        Two backends whose featurizations differ must report different
        signatures, so their cached predictions never alias; by default the
        backend name is enough.
        """
        return (self.backend,)

    def wraps(self, obj: Any) -> bool:
        """Whether ``obj`` is this model or the raw object it adapts.

        The serving layer uses this to keep devices that were handed the
        same underlying model in one batch group after a hot swap.
        """
        return obj is self

    def __repr__(self) -> str:
        return f"{type(self).__name__}(backend={self.backend!r}, fitted={self.fitted})"


def ensure_model_level(model: Any, error_cls=TrainingError, device: Optional[str] = None) -> None:
    """Refuse model-level queries to op-level-only backends (Table 1).

    The one gate shared by the serving tiers and the replayer, so no caller
    can silently compose whole-model numbers out of a backend whose Table 1
    row says op-level only (e.g. Tiramisu).
    """
    capabilities = getattr(model, "capabilities", None) or {}
    if not capabilities.get("model_level", True):
        where = f" serving device {device!r}" if device else ""
        raise error_cls(
            f"backend {getattr(model, 'backend', type(model).__name__)!r}{where} is "
            "op-level only (Table 1); it cannot answer model-level latency queries"
        )


def as_cost_model(model: Any) -> CostModel:
    """Adapt any supported model object onto the :class:`CostModel` protocol.

    Accepts a :class:`CostModel` (returned as-is), a fitted
    :class:`repro.core.trainer.Trainer`, the :class:`repro.core.api.CDMPP`
    facade, or a fitted :class:`repro.baselines.BaselineCostModel`.
    """
    if isinstance(model, CostModel):
        return model

    from repro.core.trainer import Trainer

    if isinstance(model, Trainer):
        from repro.backends.cdmpp import CDMPPBackend

        return CDMPPBackend(trainer=model)

    from repro.baselines.base import BaselineCostModel

    if isinstance(model, BaselineCostModel):
        from repro.backends.baseline import BaselineBackend

        return BaselineBackend(model.name, model=model)

    backend = getattr(model, "backend", None)  # the CDMPP facade (lazy import cycle)
    if isinstance(backend, CostModel):
        return backend

    raise TrainingError(
        f"cannot adapt {type(model).__name__} to the CostModel protocol "
        "(expected CostModel, Trainer, CDMPP or BaselineCostModel)"
    )
