"""The distilled fast-tier backend: a student MLP behind ``CostModel``.

``DistilledBackend`` wraps a :class:`~repro.core.distill.DistilledModel` —
a small MLP trained on CDMPP teacher outputs (see :func:`repro.core.distill.
distill`) — as a first-class backend: constructible through
``make_backend("distilled")``, savable/loadable through the registry, and
served by the fast tier of :class:`repro.serving.PredictionService`.  Its
``cache_signature`` folds in the teacher's weight fingerprint, so cached
fast-tier predictions can never outlive the teacher they approximate.

``fit(records)`` trains a fresh CDMPP teacher and distills it (this keeps
``compare --backends all`` meaningful); :meth:`distill_from` skips the
teacher training when a fitted teacher already exists — the path the CLI's
``--tier fast`` and the serving daemon use.
"""

from __future__ import annotations

import copy
import time
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.backends.base import CostModel, DeviceLike, TrainStats, per_program_devices
from repro.baselines.registry import baseline_capabilities
from repro.core.config import PredictorConfig, TrainingConfig
from repro.core.distill import DistilledModel, distill
from repro.core.metrics import error_report
from repro.errors import TrainingError
from repro.features.pipeline import FeatureSet, featurize_programs, featurize_records
from repro.profiler.records import MeasureRecord
from repro.tir.program import TensorProgram


def _trainer_of(teacher):
    """The underlying fitted ``Trainer`` of a teacher-like object."""
    from repro.core.trainer import Trainer

    if isinstance(teacher, Trainer):
        return teacher
    inner = getattr(teacher, "trainer", None)
    if inner is not None:
        return inner
    raise TrainingError(
        f"cannot distill from {type(teacher).__name__}: expected a Trainer, "
        "a CDMPPBackend or the CDMPP facade"
    )


class DistilledBackend(CostModel):
    """A distilled student of the CDMPP predictor as a protocol backend."""

    backend = "distilled"

    def __init__(
        self,
        predictor_config: Optional[PredictorConfig] = None,
        training_config: Optional[TrainingConfig] = None,
        student_hidden: Sequence[int] = (128, 128),
        distill_epochs: int = 200,
        distill_batch_size: int = 256,
        learning_rate: float = 3e-3,
        weight_decay: float = 1e-5,
        seed: int = 0,
        model: Optional[DistilledModel] = None,
    ):
        super().__init__()
        #: Teacher architecture/training used when :meth:`fit` has to train
        #: its own teacher (``distill_from`` ignores these).
        self.predictor_config = predictor_config
        self.training_config = training_config
        self.student_hidden = tuple(int(h) for h in student_hidden)
        self.distill_epochs = int(distill_epochs)
        self.distill_batch_size = int(distill_batch_size)
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)
        self.seed = int(seed)
        self.model = model
        #: Stats dict of the last distillation (wall time, final loss,
        #: student/teacher agreement MAPE on the distillation set).
        self.distill_stats: Optional[Dict[str, float]] = None

    # -- properties -----------------------------------------------------
    @property
    def fitted(self) -> bool:
        return self.model is not None

    @property
    def max_leaves(self) -> int:
        """Padded Compact-AST width the student featurizes to."""
        if self.model is not None:
            return self.model.max_leaves
        config = self.predictor_config or PredictorConfig()
        return config.max_leaves

    @property
    def capabilities(self) -> Dict[str, bool]:
        # The student inherits the teacher's Table 1 row: it answers the same
        # queries, only cheaper and less precisely.
        return baseline_capabilities("cdmpp")

    @property
    def cache_signature(self) -> Hashable:
        if self.model is None:
            return ("distilled", "unfitted")
        # The teacher fingerprint (not just the config) is part of the key: a
        # student of retrained weights answers differently for the same input.
        return (
            "distilled",
            self.model.teacher_lineage.get("fingerprint", "unknown"),
            self.model.max_leaves,
        )

    def clone(self) -> "DistilledBackend":
        """A detached copy owning its own student weights."""
        if self.model is None:
            raise TrainingError("DistilledBackend.clone requires a fitted backend")
        twin = DistilledBackend(
            predictor_config=self.predictor_config,
            training_config=self.training_config,
            student_hidden=self.student_hidden,
            distill_epochs=self.distill_epochs,
            distill_batch_size=self.distill_batch_size,
            learning_rate=self.learning_rate,
            weight_decay=self.weight_decay,
            seed=self.seed,
            model=copy.deepcopy(self.model),
        )
        twin.distill_stats = dict(self.distill_stats or {})
        return twin

    # -- training -------------------------------------------------------
    def fit(
        self,
        records: Sequence[MeasureRecord],
        valid: Optional[Sequence[MeasureRecord]] = None,
        epochs: Optional[int] = None,
    ) -> TrainStats:
        """Train a CDMPP teacher on ``records``, then distill it.

        ``epochs`` bounds the *teacher* epochs (the protocol meaning); the
        student always runs ``distill_epochs``.
        """
        from repro.backends.cdmpp import CDMPPBackend

        records = list(records)
        if not records:
            raise TrainingError("distilled: cannot fit on an empty record list")
        start = time.perf_counter()
        teacher = CDMPPBackend(
            predictor_config=self.predictor_config,
            training_config=self.training_config,
        )
        teacher_stats = teacher.fit(records, valid, epochs=epochs)
        train_fs = featurize_records(records, max_leaves=teacher.max_leaves)
        self._distill(teacher.trainer, train_fs)

        elapsed = time.perf_counter() - start
        best_valid_mape = float("inf")
        if valid:
            valid_fs = featurize_records(list(valid), max_leaves=train_fs.max_leaves)
            best_valid_mape = self.evaluate_features(valid_fs)["mape"]
        samples = len(records) * (self.distill_epochs + int(teacher_stats.extra.get("epochs", 0)))
        self._train_stats = TrainStats(
            train_seconds=elapsed,
            throughput_samples_per_s=samples / max(elapsed, 1e-9),
            samples_processed=samples,
            best_valid_mape=best_valid_mape,
            extra={
                "teacher_train_seconds": teacher_stats.train_seconds,
                "teacher_best_valid_mape": teacher_stats.best_valid_mape,
                **{k: float(v) for k, v in (self.distill_stats or {}).items()},
            },
        )
        return self._train_stats

    def _distill(self, trainer, features: FeatureSet) -> None:
        self.model, self.distill_stats = distill(
            trainer,
            features,
            hidden=self.student_hidden,
            epochs=self.distill_epochs,
            batch_size=self.distill_batch_size,
            learning_rate=self.learning_rate,
            weight_decay=self.weight_decay,
            seed=self.seed,
        )

    @classmethod
    def distill_from(cls, teacher, features: FeatureSet, **kwargs) -> "DistilledBackend":
        """Distill an already-fitted teacher over its training ``features``.

        ``teacher`` may be a ``Trainer``, a ``CDMPPBackend`` or the ``CDMPP``
        facade; ``kwargs`` are constructor options (``student_hidden``,
        ``distill_epochs``, ...).  This is the cheap path: no teacher
        training happens.
        """
        backend = cls(**kwargs)
        backend._distill(_trainer_of(teacher), features)
        return backend

    # -- inference ------------------------------------------------------
    def _require_fitted(self) -> DistilledModel:
        if self.model is None:
            raise TrainingError("distilled backend used before fit()/distill_from()")
        return self.model

    def predict_programs(
        self, programs: Sequence[TensorProgram], device: DeviceLike
    ) -> np.ndarray:
        model = self._require_fitted()
        programs = list(programs)
        if not programs:
            return np.zeros(0, dtype=np.float64)
        devices = per_program_devices(programs, device)
        features = featurize_programs(programs, devices, max_leaves=model.max_leaves)
        return model.predict(features)

    def predict_records(self, records: Sequence[MeasureRecord]) -> np.ndarray:
        model = self._require_fitted()
        records = list(records)
        if not records:
            return np.zeros(0, dtype=np.float64)
        return model.predict(featurize_records(records, max_leaves=model.max_leaves))

    # -- serving fast path ---------------------------------------------
    def featurize_rows(
        self, programs: Sequence[TensorProgram], devices: Sequence[str]
    ) -> List[FeatureSet]:
        """One single-row :class:`FeatureSet` per (program, device) query."""
        model = self._require_fitted()
        featurized = featurize_programs(
            list(programs), list(devices), max_leaves=model.max_leaves
        )
        return [featurized.subset([i]) for i in range(len(programs))]

    def predict_rows(
        self, rows: Sequence[FeatureSet], chunk_size: Optional[int] = None
    ) -> np.ndarray:
        """Predict a batch of cached feature rows in one vectorized call."""
        model = self._require_fitted()
        rows = list(rows)
        batch = rows[0] if len(rows) == 1 else FeatureSet.concatenate(rows)
        return model.predict(batch)

    # -- evaluation -----------------------------------------------------
    def evaluate_features(self, features: FeatureSet) -> Dict[str, float]:
        """Student prediction error against measured labels."""
        model = self._require_fitted()
        return error_report(model.predict(features), features.y)

    # -- persistence ----------------------------------------------------
    def save(self, path, extra_meta: Optional[Dict] = None):
        """Write the student (weights + representation stats) to ``path``.

        The archive mirrors the trainer checkpoint layout (``param::`` arrays
        plus a ``meta_json`` blob tagged ``backend: "distilled"``) so
        :func:`repro.backends.load_backend` and ``read_meta`` work on it.
        """
        import json
        from pathlib import Path

        model = self._require_fitted()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays: Dict[str, np.ndarray] = {}
        for name, param in model.student.named_parameters():
            arrays["param::" + name] = param.data
        arrays["rep_mean"] = model.rep_mean
        arrays["rep_std"] = model.rep_std
        meta = {
            "backend": "distilled",
            "student": {
                "in_features": model.rep_dim,
                "hidden": list(self.student_hidden),
                "activation": "relu",
            },
            "max_leaves": model.max_leaves,
            "feature_dim": model.feature_dim,
            "device_feature_dim": model.device_feature_dim,
            "teacher": dict(model.teacher_lineage),
            "distill_stats": dict(self.distill_stats or {}),
            "extra": dict(extra_meta or {}),
        }
        arrays["meta_json"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        return path

    @classmethod
    def load(cls, path) -> "DistilledBackend":
        """Restore a backend from a checkpoint written by :meth:`save`."""
        import json
        from pathlib import Path

        from repro.nn.mlp import MLP
        from repro.utils.rng import new_rng

        path = Path(path)
        if not path.exists():
            raise TrainingError(f"no saved model at {path}")
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(bytes(archive["meta_json"].tobytes()).decode("utf-8"))
            if meta.get("backend") != "distilled":
                raise TrainingError(
                    f"checkpoint {path} was written by backend "
                    f"{meta.get('backend')!r}, not 'distilled'"
                )
            student_meta = meta["student"]
            student = MLP(
                int(student_meta["in_features"]),
                [int(h) for h in student_meta["hidden"]],
                1,
                activation=str(student_meta["activation"]),
                rng=new_rng(("distilled-load", 0)),
            )
            student.load_state_dict(
                {
                    name[len("param::"):]: archive[name]
                    for name in archive.files
                    if name.startswith("param::")
                }
            )
            student.eval()
            model = DistilledModel(
                student=student,
                rep_mean=archive["rep_mean"],
                rep_std=archive["rep_std"],
                max_leaves=int(meta["max_leaves"]),
                feature_dim=int(meta["feature_dim"]),
                device_feature_dim=int(meta["device_feature_dim"]),
                teacher_lineage=dict(meta["teacher"]),
            )
        backend = cls(student_hidden=tuple(student_meta["hidden"]), model=model)
        backend.distill_stats = {
            k: float(v) for k, v in meta.get("distill_stats", {}).items()
        }
        return backend
