"""Baseline backends: XGBoost/TLP/Habitat/Tiramisu behind ``CostModel``.

``BaselineBackend`` adapts a :class:`repro.baselines.BaselineCostModel` onto
the protocol so baselines can be trained, registered, served and compared
exactly like CDMPP.  It also gives the runnable baselines what they never
had: **pickle-free persistence**.  Every checkpoint is a single ``.npz``
archive in the same layout the CDMPP trainer uses (``meta_json`` +
``param::``-prefixed weight arrays), with backend-specific state encoded as
plain JSON and NumPy arrays:

* **xgboost** — every regression tree is flattened pre-order into a
  ``[num_nodes, 5]`` array of ``(feature, threshold, value, left, right)``
  rows (``feature=-1`` marks leaves, child indices ``-1`` mark none);
* **tlp** — backbone + per-device-head weights via ``Module.state_dict``,
  plus the device list and the score→seconds calibration constant;
* **habitat** — one weight group per operator-family MLP, plus the source
  device and the per-workload source-latency table;
* **tiramisu** — recursive-LSTM weights via ``Module.state_dict`` plus the
  leaf dimension the embedding layer was built for.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends.base import CostModel, DeviceLike, TrainStats, per_program_devices
from repro.baselines.base import BaselineCostModel
from repro.baselines.habitat import HabitatCostModel
from repro.baselines.registry import RUNNABLE_BASELINES, canonical_baseline_name, make_baseline
from repro.baselines.tiramisu import TiramisuCostModel, _RecursiveASTModel
from repro.baselines.tlp import TLPCostModel, _TLPNetwork
from repro.baselines.trees import RegressionTree, _TreeNode
from repro.baselines.xgboost import XGBoostCostModel
from repro.devices.spec import get_device
from repro.errors import TrainingError
from repro.nn.mlp import MLP
from repro.profiler.records import MeasureRecord
from repro.tir.program import TensorProgram
from repro.utils.rng import new_rng

_PARAM_PREFIX = "param::"
_META_KEY = "meta_json"  # same key as repro.core.persistence, so read_meta works


# ----------------------------------------------------------------------
# Tree (de)serialization for the XGBoost backend
# ----------------------------------------------------------------------
def _flatten_tree(tree: RegressionTree) -> np.ndarray:
    """Pre-order ``[num_nodes, 5]`` encoding of one fitted regression tree."""
    rows: List[Tuple[float, float, float, float, float]] = []

    def visit(node: _TreeNode) -> int:
        index = len(rows)
        rows.append([-1.0, 0.0, node.value, -1.0, -1.0])
        if not node.is_leaf:
            rows[index][0] = float(node.feature)
            rows[index][1] = float(node.threshold)
            rows[index][3] = float(visit(node.left))
            rows[index][4] = float(visit(node.right))
        return index

    if tree.root is None:
        raise TrainingError("cannot serialize an unfitted regression tree")
    visit(tree.root)
    return np.asarray(rows, dtype=np.float64)


def _unflatten_tree(rows: np.ndarray, template: RegressionTree) -> RegressionTree:
    """Rebuild a regression tree from its :func:`_flatten_tree` encoding."""

    def build(index: int) -> _TreeNode:
        feature, threshold, value, left, right = rows[index]
        node = _TreeNode(value=float(value))
        if feature >= 0:
            node.feature = int(feature)
            node.threshold = float(threshold)
            node.left = build(int(left))
            node.right = build(int(right))
        return node

    template.root = build(0)
    return template


# ----------------------------------------------------------------------
# Per-baseline state codecs: model -> (arrays, json_state) and back
# ----------------------------------------------------------------------
def _export_xgboost(model: XGBoostCostModel) -> Tuple[Dict[str, np.ndarray], Dict]:
    flats = [_flatten_tree(tree) for tree in model.model.trees]
    offsets = np.cumsum([0] + [flat.shape[0] for flat in flats])
    arrays = {
        "trees_nodes": (
            np.concatenate(flats, axis=0) if flats else np.zeros((0, 5), dtype=np.float64)
        ),
        "tree_offsets": offsets.astype(np.int64),
    }
    state = {
        "base_prediction": model.model.base_prediction,
        "learning_rate": model.model.learning_rate,
        "max_depth": model.model.max_depth,
        "include_device": model.include_device,
    }
    return arrays, state


def _restore_xgboost(model: XGBoostCostModel, arrays: Dict[str, np.ndarray], state: Dict) -> None:
    model.include_device = bool(state["include_device"])
    ensemble = model.model
    ensemble.base_prediction = float(state["base_prediction"])
    ensemble.learning_rate = float(state["learning_rate"])
    nodes, offsets = arrays["trees_nodes"], arrays["tree_offsets"]
    ensemble.trees = [
        _unflatten_tree(
            nodes[offsets[i]: offsets[i + 1]],
            RegressionTree(max_depth=int(state["max_depth"])),
        )
        for i in range(len(offsets) - 1)
    ]
    ensemble.n_estimators = max(len(ensemble.trees), 1)


def _export_tlp(model: TLPCostModel) -> Tuple[Dict[str, np.ndarray], Dict]:
    if model.model is None:
        raise TrainingError("cannot serialize an unfitted TLP model")
    network = model.model
    in_features = network.backbone.layers[0].weight.data.shape[0]
    state = {
        "devices": sorted(network.heads),
        "in_features": int(in_features),
        "hidden": model.hidden,
        "calibration_s": model._calibration_s,
    }
    return dict(network.state_dict()), state


def _restore_tlp(model: TLPCostModel, arrays: Dict[str, np.ndarray], state: Dict) -> None:
    network = _TLPNetwork(
        int(state["in_features"]), int(state["hidden"]), list(state["devices"]),
        rng=new_rng(("tlp-restore", 0)),
    )
    network.load_state_dict(arrays)
    model.model = network
    model.hidden = int(state["hidden"])
    model._calibration_s = float(state["calibration_s"])


def _export_habitat(model: HabitatCostModel) -> Tuple[Dict[str, np.ndarray], Dict]:
    if model.source is None:
        raise TrainingError("cannot serialize an unfitted Habitat model")
    arrays: Dict[str, np.ndarray] = {}
    for op_type, mlp in model._mlps.items():
        for name, weights in mlp.state_dict().items():
            arrays[f"mlp::{op_type}::{name}"] = weights
    state = {
        "target_device": model.target.name,
        "source_device": model.source.name,
        "mlp_ops": sorted(model._mlps),
        "source_latency": dict(model._source_latency),
    }
    return arrays, state


def _restore_habitat(model: HabitatCostModel, arrays: Dict[str, np.ndarray], state: Dict) -> None:
    model.source = get_device(state["source_device"])
    model._source_latency = {key: float(value) for key, value in state["source_latency"].items()}
    model._mlps = {}
    for op_type in state["mlp_ops"]:
        prefix = f"mlp::{op_type}::"
        mlp = MLP(11, [32, 32], 1, activation="relu", rng=new_rng(("habitat-restore", op_type)))
        mlp.load_state_dict(
            {name[len(prefix):]: array for name, array in arrays.items() if name.startswith(prefix)}
        )
        model._mlps[op_type] = mlp


def _export_tiramisu(model: TiramisuCostModel) -> Tuple[Dict[str, np.ndarray], Dict]:
    if model.model is None:
        raise TrainingError("cannot serialize an unfitted Tiramisu model")
    leaf_dim = model.model.leaf_embed.weight.data.shape[0]
    state = {"leaf_dim": int(leaf_dim), "hidden": model.hidden, "scale": model._scale}
    return dict(model.model.state_dict()), state


def _restore_tiramisu(model: TiramisuCostModel, arrays: Dict[str, np.ndarray], state: Dict) -> None:
    network = _RecursiveASTModel(
        int(state["leaf_dim"]), hidden=int(state["hidden"]),
        rng=new_rng(("tiramisu-restore", 0)),
    )
    network.load_state_dict(arrays)
    model.model = network
    model.hidden = int(state["hidden"])
    model._scale = float(state["scale"])


_CODECS = {
    "xgboost": (_export_xgboost, _restore_xgboost),
    "tlp": (_export_tlp, _restore_tlp),
    "habitat": (_export_habitat, _restore_habitat),
    "tiramisu": (_export_tiramisu, _restore_tiramisu),
}


class BaselineBackend(CostModel):
    """A runnable baseline cost model behind the :class:`CostModel` protocol."""

    def __init__(self, name: str, model: Optional[BaselineCostModel] = None, **config):
        super().__init__()
        self.backend = canonical_baseline_name(name)
        if self.backend not in RUNNABLE_BASELINES:
            raise TrainingError(
                f"{name!r} has no runnable baseline implementation "
                f"(runnable: {', '.join(RUNNABLE_BASELINES)})"
            )
        self.config = dict(config)
        self.model = model if model is not None else make_baseline(self.backend, **config)
        if getattr(self.model, "_fitted", False):
            self._train_stats = self._stats_from_model()

    def _stats_from_model(self, best_valid_mape: float = float("inf")) -> TrainStats:
        return TrainStats(
            train_seconds=self.model.train_seconds,
            throughput_samples_per_s=self.model.throughput_samples_per_s,
            samples_processed=int(self.model._samples_processed or 0),
            best_valid_mape=best_valid_mape,
        )

    # -- protocol -------------------------------------------------------
    @property
    def fitted(self) -> bool:
        return bool(getattr(self.model, "_fitted", False))

    def wraps(self, obj) -> bool:
        return obj is self or obj is self.model

    def fit(
        self,
        records: Sequence[MeasureRecord],
        valid: Optional[Sequence[MeasureRecord]] = None,
    ) -> TrainStats:
        self.model.fit(list(records))
        best_valid_mape = float("inf")
        if valid:
            best_valid_mape = float(self.model.evaluate(list(valid))["mape"])
        self._train_stats = self._stats_from_model(best_valid_mape)
        return self._train_stats

    def predict_programs(
        self, programs: Sequence[TensorProgram], device: DeviceLike
    ) -> np.ndarray:
        programs = list(programs)
        if not programs:
            return np.zeros(0, dtype=np.float64)
        devices = per_program_devices(programs, device)
        # Baselines consume MeasureRecords; a query has no measurement yet,
        # so a positive placeholder latency satisfies the record invariant
        # (prediction paths never read it).
        records = [
            MeasureRecord(program=program, device=name, latency_s=1.0)
            for program, name in zip(programs, devices)
        ]
        return self.model.predict(records)

    def predict_records(self, records: Sequence[MeasureRecord]) -> np.ndarray:
        records = list(records)
        if not records:
            return np.zeros(0, dtype=np.float64)
        return self.model.predict(records)

    def evaluate(self, records: Sequence[MeasureRecord]) -> Dict[str, float]:
        return self.model.evaluate(list(records))

    # -- persistence ----------------------------------------------------
    def save(self, path, extra_meta: Optional[Dict] = None) -> Path:
        if not self.fitted:
            raise TrainingError(f"cannot save an unfitted {self.backend} backend")
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        export, _ = _CODECS[self.backend]
        state_arrays, state = export(self.model)
        arrays = {_PARAM_PREFIX + name: array for name, array in state_arrays.items()}
        config = _jsonable_config(self.config)
        if self.backend == "habitat":
            # The constructor requires the target device, which may have been
            # supplied via a pre-built model rather than through config.
            config["target_device"] = self.model.target.name
        meta = {
            "backend": self.backend,
            "config": config,
            "state": state,
            "train_stats": self.train_stats.summary() if self._train_stats else {},
            "extra": dict(extra_meta or {}),
        }
        arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        return path

    @classmethod
    def load(cls, path) -> "BaselineBackend":
        """Restore a baseline backend from a checkpoint written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise TrainingError(f"no saved model at {path}")
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
            name = meta.get("backend")
            if name not in _CODECS:
                raise TrainingError(
                    f"checkpoint {path} has backend tag {name!r}, which is not a "
                    f"runnable baseline (known: {', '.join(sorted(_CODECS))})"
                )
            backend = cls(name, **meta.get("config", {}))
            _, restore = _CODECS[name]
            arrays = {
                key[len(_PARAM_PREFIX):]: archive[key]
                for key in archive.files
                if key.startswith(_PARAM_PREFIX)
            }
            restore(backend.model, arrays, meta["state"])
        backend.model._fitted = True
        stats = meta.get("train_stats") or {}
        backend.model.train_seconds = float(stats.get("train_seconds", 0.0))
        backend.model.throughput_samples_per_s = float(
            stats.get("throughput_samples_per_s", 0.0)
        )
        backend.model._samples_processed = int(stats.get("samples_processed", 0))
        backend._train_stats = TrainStats(
            train_seconds=backend.model.train_seconds,
            throughput_samples_per_s=backend.model.throughput_samples_per_s,
            samples_processed=backend.model._samples_processed,
            best_valid_mape=float(stats.get("best_valid_mape", float("inf"))),
        )
        return backend


def _jsonable_config(config: Dict) -> Dict:
    """Constructor kwargs restricted to JSON-serializable values."""
    out = {}
    for key, value in config.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = str(value)
    return out
