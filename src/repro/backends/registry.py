"""String-keyed backend registry: construct and load any cost model by name.

The registry is the single place that knows which ``CostModel``
implementations exist.  Names resolve through the same canonical table as
:func:`repro.baselines.make_baseline` (so ``"autotvm_xgboost"`` is the
``"xgboost"`` backend), and checkpoints written by any backend carry a
``backend`` tag in their metadata that :func:`load_backend` dispatches on —
legacy untagged CDMPP trainer checkpoints load as ``"cdmpp"``.

>>> from repro.backends import make_backend
>>> model = make_backend("xgboost", n_estimators=20)   # doctest: +SKIP
>>> model.fit(train_records)                           # doctest: +SKIP
>>> model.save("model.npz")                            # doctest: +SKIP
>>> restored = load_backend("model.npz")               # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Tuple

from repro.backends.base import CostModel
from repro.baselines.registry import canonical_baseline_name
from repro.errors import TrainingError

#: Default backend assumed for checkpoints without a ``backend`` tag
#: (every trainer checkpoint written before the protocol existed).
LEGACY_BACKEND = "cdmpp"


@dataclass(frozen=True)
class BackendSpec:
    """One registered backend: how to construct it and how to load it."""

    name: str
    factory: Callable[..., CostModel]
    loader: Callable[[Path], CostModel]
    description: str = ""


_REGISTRY: Dict[str, BackendSpec] = {}


def _normalize_backend_name(name: str) -> str:
    """Lowercase a backend name, folding Table 1 aliases onto canonical names.

    Names outside the Table 1 method families pass through normalised but
    unchanged, so custom backends can register under any new name.
    """
    key = str(name).strip().lower().replace("-", "_").replace(" ", "_")
    try:
        return canonical_baseline_name(key)
    except TrainingError:
        return key


def register_backend(
    name: str,
    factory: Callable[..., CostModel],
    loader: Callable[[Path], CostModel],
    description: str = "",
) -> None:
    """Register a backend under its canonical name.

    ``factory(**config)`` must return an unfitted :class:`CostModel`;
    ``loader(path)`` must restore one from a checkpoint written by its
    ``save``.  Table 1 aliases fold onto their canonical name; any other
    name registers as-is, so custom backends are first-class.
    Re-registering a name replaces the previous entry (tests use this to
    install doubles).
    """
    canonical = _normalize_backend_name(name)
    _REGISTRY[canonical] = BackendSpec(
        name=canonical, factory=factory, loader=loader, description=description
    )


def available_backends() -> Tuple[str, ...]:
    """Canonical names of every constructible backend, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_backend_name(name: str) -> str:
    """Resolve a backend name or alias to its canonical registered name."""
    canonical = _normalize_backend_name(name)
    if canonical not in _REGISTRY:
        raise TrainingError(
            f"no backend registered under {name!r} (canonical: {canonical!r}); "
            f"available backends: {', '.join(available_backends())}"
        )
    return canonical


def make_backend(name: str, **config) -> CostModel:
    """Construct an unfitted cost model by backend name (aliases accepted)."""
    spec = _REGISTRY[resolve_backend_name(name)]
    return spec.factory(**config)


def backend_of_checkpoint(path) -> str:
    """The backend tag of a checkpoint (``"cdmpp"`` when untagged)."""
    from repro.core.persistence import read_meta

    meta = read_meta(path)
    return str(meta.get("backend") or meta.get("extra", {}).get("backend") or LEGACY_BACKEND)


def load_backend(path) -> CostModel:
    """Load any backend checkpoint, dispatching on its ``backend`` tag.

    Raises a clear error when the tag names a backend this installation does
    not know, instead of mis-parsing the archive.
    """
    name = backend_of_checkpoint(path)
    try:
        canonical = resolve_backend_name(name)
    except TrainingError as error:
        raise TrainingError(
            f"checkpoint {Path(path)} was written by backend {name!r}, which is not "
            f"registered here; available backends: {', '.join(available_backends())}"
        ) from error
    return _REGISTRY[canonical].loader(Path(path))


def _register_builtin_backends() -> None:
    from repro.backends.baseline import BaselineBackend
    from repro.backends.cdmpp import CDMPPBackend
    from repro.backends.distilled import DistilledBackend
    from repro.baselines.registry import RUNNABLE_BASELINES

    register_backend(
        "cdmpp",
        CDMPPBackend,
        CDMPPBackend.load,
        "the paper's cross-device/cross-model transformer predictor",
    )
    register_backend(
        "distilled",
        DistilledBackend,
        DistilledBackend.load,
        "fast-tier MLP student distilled from a CDMPP teacher",
    )
    descriptions = {
        "xgboost": "gradient-boosted trees on flat features (AutoTVM/Ansor family)",
        "tlp": "schedule-primitive features, per-device heads, relative cost",
        "habitat": "roofline wave-scaling plus per-operator MLPs (GPU only)",
        "tiramisu": "recursive LSTM over the raw AST",
    }
    for baseline in RUNNABLE_BASELINES:
        register_backend(
            baseline,
            (lambda name: lambda **config: BaselineBackend(name, **config))(baseline),
            BaselineBackend.load,
            descriptions.get(baseline, ""),
        )


_register_builtin_backends()
