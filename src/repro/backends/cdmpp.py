"""The CDMPP backend: the paper's transformer predictor behind ``CostModel``.

``CDMPPBackend`` owns featurization (records/programs -> Compact-AST
:class:`~repro.features.pipeline.FeatureSet`) and delegates training and
inference to the existing :class:`repro.core.trainer.Trainer`, so the
facade-level entry points (``CDMPP``, ``Trainer``) keep working unchanged
while every protocol consumer — the registry, the serving stack, the CLI's
``compare`` — sees the same surface as the baselines.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.backends.base import CostModel, DeviceLike, TrainStats, per_program_devices
from repro.core.config import PredictorConfig, TrainingConfig
from repro.core.trainer import Trainer, TrainingResult
from repro.errors import TrainingError
from repro.features.pipeline import FeatureSet, featurize_programs, featurize_records
from repro.profiler.records import MeasureRecord
from repro.tir.program import TensorProgram


class CDMPPBackend(CostModel):
    """The CDMPP cost model as a protocol backend."""

    backend = "cdmpp"

    def __init__(
        self,
        predictor_config: Optional[PredictorConfig] = None,
        training_config: Optional[TrainingConfig] = None,
        trainer: Optional[Trainer] = None,
    ):
        super().__init__()
        if trainer is not None:
            self.trainer = trainer
        else:
            self.trainer = Trainer(
                predictor_config=predictor_config or PredictorConfig(),
                config=training_config or TrainingConfig(),
            )
        #: Full epoch-by-epoch outcome of the last fit (protocol consumers
        #: use :attr:`train_stats`; the ``CDMPP`` facade returns this).
        self.last_training_result: Optional[TrainingResult] = None

    # -- properties -----------------------------------------------------
    @property
    def predictor_config(self) -> PredictorConfig:
        """Architecture of the wrapped predictor."""
        return self.trainer.predictor.config

    @property
    def max_leaves(self) -> int:
        """Padded Compact-AST width the predictor was built for."""
        return self.predictor_config.max_leaves

    @property
    def fitted(self) -> bool:
        return bool(getattr(self.trainer, "_fitted", False))

    @property
    def cache_signature(self) -> Hashable:
        # Padding width changes the featurization, so it is part of the key.
        return ("cdmpp", self.max_leaves)

    def wraps(self, obj) -> bool:
        if obj is self or obj is self.trainer:
            return True
        return getattr(obj, "trainer", None) is self.trainer  # the CDMPP facade

    def clone(self) -> "CDMPPBackend":
        """A detached copy of this fitted backend (see :meth:`Trainer.clone`).

        Fine-tuning the clone can never mutate this backend's weights, which
        is what keeps a served (possibly ``load_shared``) checkpoint intact
        while a new device is onboarded from it.
        """
        twin = CDMPPBackend(trainer=self.trainer.clone())
        twin._train_stats = self._train_stats
        twin.last_training_result = self.last_training_result
        return twin

    # -- training -------------------------------------------------------
    def fit(
        self,
        records: Sequence[MeasureRecord],
        valid: Optional[Sequence[MeasureRecord]] = None,
        epochs: Optional[int] = None,
    ) -> TrainStats:
        records = list(records)
        if not records:
            raise TrainingError("cdmpp: cannot fit on an empty record list")
        train_fs = featurize_records(records, max_leaves=self.max_leaves)
        valid_fs = (
            featurize_records(list(valid), max_leaves=train_fs.max_leaves) if valid else None
        )
        return self.fit_features(train_fs, valid_fs, epochs=epochs)

    def fit_features(
        self,
        train: FeatureSet,
        valid: Optional[FeatureSet] = None,
        epochs: Optional[int] = None,
    ) -> TrainStats:
        """Train directly from already-featurized data."""
        result = self.trainer.fit(train, valid, epochs=epochs)
        self.last_training_result = result
        self._train_stats = TrainStats(
            train_seconds=result.train_seconds,
            throughput_samples_per_s=result.throughput_samples_per_s,
            samples_processed=int(round(result.throughput_samples_per_s * result.train_seconds)),
            best_valid_mape=result.best_valid_mape,
            extra={"epochs": float(len(result.history))},
        )
        return self._train_stats

    # -- inference ------------------------------------------------------
    def predict_programs(
        self, programs: Sequence[TensorProgram], device: DeviceLike
    ) -> np.ndarray:
        programs = list(programs)
        if not programs:
            return np.zeros(0, dtype=np.float64)
        devices = per_program_devices(programs, device)
        features = featurize_programs(programs, devices, max_leaves=self.max_leaves)
        return self.trainer.predict(features)

    def predict_records(self, records: Sequence[MeasureRecord]) -> np.ndarray:
        records = list(records)
        if not records:
            return np.zeros(0, dtype=np.float64)
        features = featurize_records(records, max_leaves=self.max_leaves)
        return self.trainer.predict(features)

    # -- serving fast path ---------------------------------------------
    # The serving layer caches per-program feature rows; backends that
    # expose featurize_rows/predict_rows get that cache for free.
    def featurize_rows(
        self, programs: Sequence[TensorProgram], devices: Sequence[str]
    ) -> List[FeatureSet]:
        """One single-row :class:`FeatureSet` per (program, device) query."""
        featurized = featurize_programs(
            list(programs), list(devices), max_leaves=self.max_leaves
        )
        return [featurized.subset([i]) for i in range(len(programs))]

    def predict_rows(
        self, rows: Sequence[FeatureSet], chunk_size: Optional[int] = None
    ) -> np.ndarray:
        """Predict a batch of cached feature rows in one vectorized call."""
        rows = list(rows)
        batch = rows[0] if len(rows) == 1 else FeatureSet.concatenate(rows)
        return self.trainer.predict(batch, batch_size=chunk_size)

    # -- evaluation over features (facade passthrough) ------------------
    def evaluate_features(self, features: FeatureSet) -> Dict[str, float]:
        """Evaluate prediction error on an already-featurized split."""
        return self.trainer.evaluate(features)

    # -- persistence ----------------------------------------------------
    def save(self, path, extra_meta: Optional[Dict] = None):
        from repro.core.persistence import save_trainer

        return save_trainer(self.trainer, path, extra_meta=extra_meta)

    @classmethod
    def load(cls, path) -> "CDMPPBackend":
        """Restore from a checkpoint written by :meth:`save` (or ``save_trainer``)."""
        from repro.core.persistence import load_trainer

        return cls(trainer=load_trainer(path))
