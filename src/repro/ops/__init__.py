"""Operator library: builders that turn DNN operators into TIR tasks.

Each builder returns a :class:`repro.tir.task.Task` describing the iteration
space and statements of one computational subgraph, optionally with fused
epilogues (bias add, ReLU, residual add) the way TVM's Relay fusion produces
fused subgraphs.
"""

from repro.ops.conv import conv2d, depthwise_conv2d
from repro.ops.dense import batch_matmul, dense
from repro.ops.elementwise import elementwise_binary, elementwise_unary
from repro.ops.pooling import global_avg_pool2d, pool2d
from repro.ops.norm import batch_norm_inference, layer_norm, softmax
from repro.ops.attention import attention_scores, attention_context
from repro.ops.recurrent import lstm_cell
from repro.ops.reduce import reduce_op
from repro.ops.embedding import embedding_lookup
from repro.ops.registry import OP_BUILDERS, build_op

__all__ = [
    "conv2d",
    "depthwise_conv2d",
    "dense",
    "batch_matmul",
    "elementwise_unary",
    "elementwise_binary",
    "pool2d",
    "global_avg_pool2d",
    "batch_norm_inference",
    "layer_norm",
    "softmax",
    "attention_scores",
    "attention_context",
    "lstm_cell",
    "reduce_op",
    "embedding_lookup",
    "OP_BUILDERS",
    "build_op",
]
