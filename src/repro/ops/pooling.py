"""Pooling operator builders."""

from __future__ import annotations

from typing import Optional

from repro.errors import TIRError
from repro.tir.buffer import Buffer
from repro.tir.task import IterVar, ReadSpec, StatementSpec, Task
from repro.ops.common import conv_out_dim


def pool2d(
    batch: int,
    channels: int,
    height: int,
    width: int,
    kernel: int = 2,
    stride: int = 2,
    padding: int = 0,
    kind: str = "max",
    *,
    model: Optional[str] = None,
) -> Task:
    """2D max/average pooling in NCHW layout."""
    if kind not in ("max", "avg"):
        raise TIRError(f"unsupported pooling kind {kind!r}")
    out_h = conv_out_dim(height, kernel, stride, padding)
    out_w = conv_out_dim(width, kernel, stride, padding)
    data = Buffer("data", (batch, channels, height, width))
    out = Buffer(f"{kind}_pool", (batch, channels, out_h, out_w))

    iter_vars = (
        IterVar("n", batch),
        IterVar("c", channels),
        IterVar("oh", out_h),
        IterVar("ow", out_w),
        IterVar("kh", kernel, "reduce"),
        IterVar("kw", kernel, "reduce"),
    )
    body = StatementSpec(
        f"{kind}_pool2d",
        out,
        ("n", "c", "oh", "ow"),
        reads=(ReadSpec(data, ("n", "c", "oh", "ow"), pattern="strided"),),
        intrinsics=("max",) if kind == "max" else (),
        reduction=True,
    )
    params = {
        "batch": batch,
        "channels": channels,
        "height": height,
        "width": width,
        "kernel": kernel,
        "stride": stride,
        "kind_id": 0 if kind == "max" else 1,
    }
    return Task("pool2d", params, iter_vars, body, model=model)


def global_avg_pool2d(
    batch: int,
    channels: int,
    height: int,
    width: int,
    *,
    model: Optional[str] = None,
) -> Task:
    """Global average pooling collapsing the spatial dimensions."""
    data = Buffer("data", (batch, channels, height, width))
    out = Buffer("gap", (batch, channels))
    iter_vars = (
        IterVar("n", batch),
        IterVar("c", channels),
        IterVar("h", height, "reduce"),
        IterVar("w", width, "reduce"),
    )
    body = StatementSpec(
        "global_avg_pool",
        out,
        ("n", "c"),
        reads=(ReadSpec(data, ("n", "c", "h", "w")),),
        reduction=True,
    )
    params = {"batch": batch, "channels": channels, "height": height, "width": width}
    return Task("global_avg_pool2d", params, iter_vars, body, model=model)
