"""Dense (fully-connected) and batched matrix multiplication builders."""

from __future__ import annotations

from typing import Optional

from repro.tir.buffer import Buffer
from repro.tir.task import IterVar, ReadSpec, StatementSpec, Task
from repro.ops.common import fused_epilogues

# Stable small integer ids for fused activations (used in workload params).
_ACTIVATION_IDS = {None: 0, "relu": 1, "sigmoid": 2, "tanh": 3, "gelu": 4}


def dense(
    batch: int,
    in_features: int,
    out_features: int,
    *,
    bias: bool = True,
    activation: Optional[str] = None,
    model: Optional[str] = None,
) -> Task:
    """A dense layer ``Y[b, o] = sum_k X[b, k] * W[o, k]`` with fused epilogues."""
    data = Buffer("data", (batch, in_features))
    weight = Buffer("weight", (out_features, in_features))
    out = Buffer("dense", (batch, out_features))

    iter_vars = (
        IterVar("b", batch),
        IterVar("o", out_features),
        IterVar("k", in_features, "reduce"),
    )
    body = StatementSpec(
        "dense",
        out,
        ("b", "o"),
        reads=(ReadSpec(data, ("b", "k")), ReadSpec(weight, ("o", "k"))),
        reduction=True,
    )
    epilogues = fused_epilogues(
        out,
        ("b", "o"),
        bias=Buffer("bias", (out_features,)) if bias else None,
        bias_var="o",
        activation=activation,
        name_prefix="dense",
    )
    params = {
        "batch": batch,
        "in_features": in_features,
        "out_features": out_features,
        "bias": int(bias),
        "activation": _ACTIVATION_IDS.get(activation, 0),
    }
    return Task("dense", params, iter_vars, body, epilogues, model=model)


def batch_matmul(
    batch: int,
    rows: int,
    cols: int,
    inner: int,
    *,
    model: Optional[str] = None,
    name: str = "batch_matmul",
) -> Task:
    """Batched matrix multiplication ``Y[b, i, j] = sum_k A[b, i, k] * B[b, k, j]``."""
    lhs = Buffer("lhs", (batch, rows, inner))
    rhs = Buffer("rhs", (batch, inner, cols))
    out = Buffer("bmm", (batch, rows, cols))

    iter_vars = (
        IterVar("b", batch),
        IterVar("i", rows),
        IterVar("j", cols),
        IterVar("k", inner, "reduce"),
    )
    body = StatementSpec(
        name,
        out,
        ("b", "i", "j"),
        reads=(ReadSpec(lhs, ("b", "i", "k")), ReadSpec(rhs, ("b", "k", "j"), pattern="strided")),
        reduction=True,
    )
    params = {"batch": batch, "rows": rows, "cols": cols, "inner": inner}
    return Task("batch_matmul", params, iter_vars, body, model=model)
