"""Convolution operator builders."""

from __future__ import annotations

from typing import Optional

from repro.tir.buffer import Buffer
from repro.tir.task import IterVar, ReadSpec, StatementSpec, Task
from repro.ops.common import conv_out_dim, fused_epilogues

# Stable small integer ids for fused activations (used in workload params).
_ACTIVATION_IDS = {None: 0, "relu": 1, "sigmoid": 2, "tanh": 3, "gelu": 4}


def conv2d(
    batch: int,
    in_channels: int,
    out_channels: int,
    height: int,
    width: int,
    kernel: int = 3,
    stride: int = 1,
    padding: int = 1,
    *,
    bias: bool = True,
    activation: Optional[str] = "relu",
    residual: bool = False,
    model: Optional[str] = None,
) -> Task:
    """A (optionally fused) 2D convolution in NCHW layout.

    Iteration space: spatial (n, oc, oh, ow), reduction (ic, kh, kw); the
    anchor statement reads the input feature map (gather pattern, because of
    the stride/padding arithmetic) and the weights.
    """
    out_h = conv_out_dim(height, kernel, stride, padding)
    out_w = conv_out_dim(width, kernel, stride, padding)

    data = Buffer("data", (batch, in_channels, height, width))
    weight = Buffer("weight", (out_channels, in_channels, kernel, kernel))
    conv_out = Buffer("conv", (batch, out_channels, out_h, out_w))

    iter_vars = (
        IterVar("n", batch),
        IterVar("oc", out_channels),
        IterVar("oh", out_h),
        IterVar("ow", out_w),
        IterVar("ic", in_channels, "reduce"),
        IterVar("kh", kernel, "reduce"),
        IterVar("kw", kernel, "reduce"),
    )
    body = StatementSpec(
        "conv2d",
        conv_out,
        ("n", "oc", "oh", "ow"),
        reads=(
            ReadSpec(data, ("n", "ic", "oh", "ow"), pattern="strided" if stride > 1 else "contiguous"),
            ReadSpec(weight, ("oc", "ic", "kh", "kw")),
        ),
        reduction=True,
    )
    epilogues = fused_epilogues(
        conv_out,
        ("n", "oc", "oh", "ow"),
        bias=Buffer("bias", (out_channels,)) if bias else None,
        bias_var="oc",
        activation=activation,
        residual=Buffer("residual", (batch, out_channels, out_h, out_w)) if residual else None,
        name_prefix="conv2d",
    )
    params = {
        "batch": batch,
        "in_channels": in_channels,
        "out_channels": out_channels,
        "height": height,
        "width": width,
        "kernel": kernel,
        "stride": stride,
        "padding": padding,
        "bias": int(bias),
        "activation": _ACTIVATION_IDS.get(activation, 0),
        "residual": int(residual),
    }
    return Task("conv2d", params, iter_vars, body, epilogues, model=model)


def depthwise_conv2d(
    batch: int,
    channels: int,
    height: int,
    width: int,
    kernel: int = 3,
    stride: int = 1,
    padding: int = 1,
    *,
    bias: bool = True,
    activation: Optional[str] = "relu",
    model: Optional[str] = None,
) -> Task:
    """A depthwise 2D convolution (one filter per channel), as in MobileNet."""
    out_h = conv_out_dim(height, kernel, stride, padding)
    out_w = conv_out_dim(width, kernel, stride, padding)

    data = Buffer("data", (batch, channels, height, width))
    weight = Buffer("weight", (channels, kernel, kernel))
    out = Buffer("dwconv", (batch, channels, out_h, out_w))

    iter_vars = (
        IterVar("n", batch),
        IterVar("c", channels),
        IterVar("oh", out_h),
        IterVar("ow", out_w),
        IterVar("kh", kernel, "reduce"),
        IterVar("kw", kernel, "reduce"),
    )
    body = StatementSpec(
        "depthwise_conv2d",
        out,
        ("n", "c", "oh", "ow"),
        reads=(
            ReadSpec(data, ("n", "c", "oh", "ow"), pattern="strided" if stride > 1 else "contiguous"),
            ReadSpec(weight, ("c", "kh", "kw")),
        ),
        reduction=True,
    )
    epilogues = fused_epilogues(
        out,
        ("n", "c", "oh", "ow"),
        bias=Buffer("bias", (channels,)) if bias else None,
        bias_var="c",
        activation=activation,
        name_prefix="dwconv",
    )
    params = {
        "batch": batch,
        "channels": channels,
        "height": height,
        "width": width,
        "kernel": kernel,
        "stride": stride,
        "padding": padding,
        "bias": int(bias),
        "activation": _ACTIVATION_IDS.get(activation, 0),
    }
    return Task("depthwise_conv2d", params, iter_vars, body, epilogues, model=model)
