"""Embedding lookup operator builder."""

from __future__ import annotations

from typing import Optional

from repro.tir.buffer import Buffer
from repro.tir.task import IterVar, ReadSpec, StatementSpec, Task


def embedding_lookup(
    num_tokens: int,
    vocab_size: int,
    embed_dim: int,
    *,
    model: Optional[str] = None,
) -> Task:
    """Gather rows of an embedding table for a batch of token ids.

    The table read uses the ``gather`` access pattern: the row index comes
    from data, so accesses are effectively random and memory-bound.
    """
    ids = Buffer("token_ids", (num_tokens,), dtype="int32")
    table = Buffer("embedding_table", (vocab_size, embed_dim))
    out = Buffer("embeddings", (num_tokens, embed_dim))
    iter_vars = (IterVar("t", num_tokens), IterVar("e", embed_dim))
    body = StatementSpec(
        "embedding_lookup",
        out,
        ("t", "e"),
        reads=(ReadSpec(ids, ("t",), pattern="contiguous"), ReadSpec(table, ("t", "e"), pattern="gather")),
    )
    params = {"num_tokens": num_tokens, "vocab_size": vocab_size, "embed_dim": embed_dim}
    return Task("embedding_lookup", params, iter_vars, body, model=model)
