"""Shared helpers for operator builders."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import TIRError
from repro.tir.buffer import Buffer
from repro.tir.task import ReadSpec, StatementSpec


def conv_out_dim(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial extent of a convolution/pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise TIRError(
            f"invalid convolution geometry: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def fused_epilogues(
    output: Buffer,
    output_vars: Sequence[str],
    *,
    bias: Optional[Buffer] = None,
    bias_var: Optional[str] = None,
    activation: Optional[str] = None,
    residual: Optional[Buffer] = None,
    name_prefix: str = "",
) -> Tuple[StatementSpec, ...]:
    """Build the fused epilogue statements common to many operators.

    The epilogues read and rewrite the anchor's output buffer in place, which
    is how TVM represents fused bias/activation stages at the TIR level
    (one extra computation statement per stage, i.e. one extra AST leaf).
    """
    prefix = f"{name_prefix}." if name_prefix else ""
    epilogues = []
    output_vars = tuple(output_vars)
    if bias is not None:
        reads = (ReadSpec(output, output_vars), ReadSpec(bias, (bias_var or output_vars[-1],)))
        epilogues.append(
            StatementSpec(f"{prefix}bias_add", output, output_vars, reads=reads)
        )
    if residual is not None:
        reads = (ReadSpec(output, output_vars), ReadSpec(residual, output_vars))
        epilogues.append(
            StatementSpec(f"{prefix}residual_add", output, output_vars, reads=reads)
        )
    if activation is not None:
        intrinsic = {"relu": "max", "sigmoid": "sigmoid", "tanh": "tanh", "gelu": "erf"}.get(
            activation
        )
        if intrinsic is None:
            raise TIRError(f"unsupported fused activation {activation!r}")
        epilogues.append(
            StatementSpec(
                f"{prefix}{activation}",
                output,
                output_vars,
                reads=(ReadSpec(output, output_vars),),
                intrinsics=(intrinsic,),
            )
        )
    return tuple(epilogues)
