"""Attention-related operator builders (scores and context matmuls).

A Transformer self-attention block decomposes into: QKV projections (dense),
``scores = Q @ K^T`` (attention_scores), softmax, ``context = scores @ V``
(attention_context), and the output projection (dense).  The two batched
matmuls get their own builders so their distinct access patterns show up in
the dataset.
"""

from __future__ import annotations

from typing import Optional

from repro.tir.buffer import Buffer
from repro.tir.task import IterVar, ReadSpec, StatementSpec, Task


def attention_scores(
    batch_heads: int,
    seq_len: int,
    head_dim: int,
    *,
    model: Optional[str] = None,
) -> Task:
    """``scores[b, i, j] = sum_d Q[b, i, d] * K[b, j, d]`` with scaling."""
    query = Buffer("query", (batch_heads, seq_len, head_dim))
    key = Buffer("key", (batch_heads, seq_len, head_dim))
    out = Buffer("scores", (batch_heads, seq_len, seq_len))
    iter_vars = (
        IterVar("b", batch_heads),
        IterVar("i", seq_len),
        IterVar("j", seq_len),
        IterVar("d", head_dim, "reduce"),
    )
    body = StatementSpec(
        "attention_scores",
        out,
        ("b", "i", "j"),
        reads=(ReadSpec(query, ("b", "i", "d")), ReadSpec(key, ("b", "j", "d"))),
        reduction=True,
    )
    epilogues = (
        StatementSpec(
            "attention_scores.scale",
            out,
            ("b", "i", "j"),
            reads=(ReadSpec(out, ("b", "i", "j")),),
        ),
    )
    params = {"batch_heads": batch_heads, "seq_len": seq_len, "head_dim": head_dim}
    return Task("attention_scores", params, iter_vars, body, epilogues, model=model)


def attention_context(
    batch_heads: int,
    seq_len: int,
    head_dim: int,
    *,
    model: Optional[str] = None,
) -> Task:
    """``context[b, i, d] = sum_j P[b, i, j] * V[b, j, d]``."""
    probs = Buffer("probs", (batch_heads, seq_len, seq_len))
    value = Buffer("value", (batch_heads, seq_len, head_dim))
    out = Buffer("context", (batch_heads, seq_len, head_dim))
    iter_vars = (
        IterVar("b", batch_heads),
        IterVar("i", seq_len),
        IterVar("d", head_dim),
        IterVar("j", seq_len, "reduce"),
    )
    body = StatementSpec(
        "attention_context",
        out,
        ("b", "i", "d"),
        reads=(ReadSpec(probs, ("b", "i", "j")), ReadSpec(value, ("b", "j", "d"), pattern="strided")),
        reduction=True,
    )
    params = {"batch_heads": batch_heads, "seq_len": seq_len, "head_dim": head_dim}
    return Task("attention_context", params, iter_vars, body, model=model)
