"""Reduction operator builders (sum/mean/argmax-style reductions)."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import TIRError
from repro.tir.buffer import Buffer
from repro.tir.task import IterVar, ReadSpec, StatementSpec, Task

_REDUCE_KINDS = ("sum", "mean", "max")


def reduce_op(
    shape: Sequence[int],
    axis: int = -1,
    kind: str = "sum",
    *,
    model: Optional[str] = None,
) -> Task:
    """Reduce one axis of a tensor with sum/mean/max."""
    if kind not in _REDUCE_KINDS:
        raise TIRError(f"unsupported reduce kind {kind!r}")
    shape = tuple(int(s) for s in shape)
    axis = axis % len(shape)
    out_shape = tuple(s for i, s in enumerate(shape) if i != axis) or (1,)

    data = Buffer("data", shape)
    out = Buffer(f"reduce_{kind}", out_shape)

    iter_vars = []
    spatial_names = []
    for i, extent in enumerate(shape):
        if i == axis:
            iter_vars.append(IterVar("rk", extent, "reduce"))
        else:
            name = f"d{i}"
            iter_vars.append(IterVar(name, extent))
            spatial_names.append(name)
    if not spatial_names:
        iter_vars.insert(0, IterVar("d0", 1))
        spatial_names.append("d0")

    read_vars = tuple("rk" if i == axis else f"d{i}" for i in range(len(shape)))
    body = StatementSpec(
        f"reduce_{kind}",
        out,
        tuple(spatial_names),
        reads=(ReadSpec(data, read_vars),),
        intrinsics=("max",) if kind == "max" else (),
        reduction=True,
    )
    params = {"kind_id": _REDUCE_KINDS.index(kind), "axis": axis}
    params.update({f"s{i}": s for i, s in enumerate(shape)})
    return Task("reduce", params, tuple(iter_vars), body, model=model)
