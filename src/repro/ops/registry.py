"""Registry mapping operator-type names to their builder functions.

Used by the synthetic dataset generator and by tests that want to enumerate
the operator space without importing every builder module explicitly.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import TIRError
from repro.tir.task import Task
from repro.ops.attention import attention_context, attention_scores
from repro.ops.conv import conv2d, depthwise_conv2d
from repro.ops.dense import batch_matmul, dense
from repro.ops.elementwise import elementwise_binary, elementwise_unary
from repro.ops.embedding import embedding_lookup
from repro.ops.norm import batch_norm_inference, layer_norm, softmax
from repro.ops.pooling import global_avg_pool2d, pool2d
from repro.ops.recurrent import lstm_cell
from repro.ops.reduce import reduce_op

OP_BUILDERS: Dict[str, Callable[..., Task]] = {
    "conv2d": conv2d,
    "depthwise_conv2d": depthwise_conv2d,
    "dense": dense,
    "batch_matmul": batch_matmul,
    "elementwise_unary": elementwise_unary,
    "elementwise_binary": elementwise_binary,
    "pool2d": pool2d,
    "global_avg_pool2d": global_avg_pool2d,
    "batch_norm_inference": batch_norm_inference,
    "layer_norm": layer_norm,
    "softmax": softmax,
    "attention_scores": attention_scores,
    "attention_context": attention_context,
    "lstm_cell": lstm_cell,
    "reduce_op": reduce_op,
    "embedding_lookup": embedding_lookup,
}


def build_op(name: str, /, **kwargs) -> Task:
    """Build a task by operator name, raising a clear error for unknown names."""
    try:
        builder = OP_BUILDERS[name]
    except KeyError as exc:
        known = ", ".join(sorted(OP_BUILDERS))
        raise TIRError(f"unknown operator {name!r}; known operators: {known}") from exc
    return builder(**kwargs)
