"""Normalization and softmax operator builders."""

from __future__ import annotations

from typing import Optional

from repro.tir.buffer import Buffer
from repro.tir.task import IterVar, ReadSpec, StatementSpec, Task


def batch_norm_inference(
    batch: int,
    channels: int,
    height: int,
    width: int,
    *,
    fused_relu: bool = True,
    model: Optional[str] = None,
) -> Task:
    """Inference-time batch normalization folded into a scale+shift pass."""
    data = Buffer("data", (batch, channels, height, width))
    scale = Buffer("scale", (channels,))
    shift = Buffer("shift", (channels,))
    out = Buffer("bn", (batch, channels, height, width))
    iter_vars = (
        IterVar("n", batch),
        IterVar("c", channels),
        IterVar("h", height),
        IterVar("w", width),
    )
    body = StatementSpec(
        "batch_norm",
        out,
        ("n", "c", "h", "w"),
        reads=(
            ReadSpec(data, ("n", "c", "h", "w")),
            ReadSpec(scale, ("c",)),
            ReadSpec(shift, ("c",)),
        ),
    )
    epilogues = ()
    if fused_relu:
        epilogues = (
            StatementSpec(
                "bn.relu",
                out,
                ("n", "c", "h", "w"),
                reads=(ReadSpec(out, ("n", "c", "h", "w")),),
                intrinsics=("max",),
            ),
        )
    params = {"batch": batch, "channels": channels, "height": height, "width": width,
              "fused_relu": int(fused_relu)}
    return Task("batch_norm", params, iter_vars, body, epilogues, model=model)


def layer_norm(
    rows: int,
    features: int,
    *,
    model: Optional[str] = None,
) -> Task:
    """Layer normalization over the trailing feature dimension.

    Modelled as three fused passes over the ``[rows, features]`` tensor: a
    moments pass (reads data), a normalise pass (reads data and the per-row
    statistics, applies ``rsqrt``) and an affine pass (reads gamma/beta).
    All passes share the spatial iteration space, which matches how TVM's
    fused layer-norm kernel touches memory.
    """
    data = Buffer("data", (rows, features))
    stats = Buffer("stats", (rows, features))
    gamma = Buffer("gamma", (features,))
    beta = Buffer("beta", (features,))
    out = Buffer("ln", (rows, features))
    iter_vars = (IterVar("r", rows), IterVar("f", features))
    body = StatementSpec(
        "layer_norm.moments",
        stats,
        ("r", "f"),
        reads=(ReadSpec(data, ("r", "f")),),
    )
    epilogues = (
        StatementSpec(
            "layer_norm.normalize",
            out,
            ("r", "f"),
            reads=(ReadSpec(data, ("r", "f")), ReadSpec(stats, ("r", "f"))),
            intrinsics=("rsqrt",),
        ),
        StatementSpec(
            "layer_norm.affine",
            out,
            ("r", "f"),
            reads=(ReadSpec(out, ("r", "f")), ReadSpec(gamma, ("f",)), ReadSpec(beta, ("f",))),
        ),
    )
    params = {"rows": rows, "features": features}
    return Task("layer_norm", params, iter_vars, body, epilogues, model=model)


def softmax(
    rows: int,
    features: int,
    *,
    model: Optional[str] = None,
) -> Task:
    """Softmax over the trailing dimension.

    Modelled as an exponentiation pass followed by a normalisation pass over
    the same ``[rows, features]`` spatial space; the row-sum reduction is
    folded into the normalisation pass (one extra read), matching the memory
    behaviour of a fused softmax kernel without inflating its FLOP count.
    """
    data = Buffer("data", (rows, features))
    expd = Buffer("exp", (rows, features))
    out = Buffer("softmax", (rows, features))
    iter_vars = (IterVar("r", rows), IterVar("f", features))
    body = StatementSpec(
        "softmax.exp",
        expd,
        ("r", "f"),
        reads=(ReadSpec(data, ("r", "f")),),
        intrinsics=("exp",),
    )
    epilogues = (
        StatementSpec(
            "softmax.normalize",
            out,
            ("r", "f"),
            reads=(ReadSpec(expd, ("r", "f")), ReadSpec(expd, ("r", "f"), pattern="strided")),
        ),
    )
    params = {"rows": rows, "features": features}
    return Task("softmax", params, iter_vars, body, epilogues, model=model)
