"""Recurrent operator builders (LSTM cell)."""

from __future__ import annotations

from typing import Optional

from repro.tir.buffer import Buffer
from repro.tir.task import IterVar, ReadSpec, StatementSpec, Task


def lstm_cell(
    batch: int,
    input_size: int,
    hidden_size: int,
    *,
    model: Optional[str] = None,
) -> Task:
    """One LSTM cell step: the 4-gate matmul plus the elementwise gate math.

    The anchor is the ``[batch, 4*hidden] = [batch, input+hidden] @ W^T``
    contraction; the gate nonlinearities (sigmoid/tanh) and the state update
    are fused epilogues, which is how TVM schedules an LSTM cell kernel.
    """
    concat = Buffer("xh", (batch, input_size + hidden_size))
    weight = Buffer("weight", (4 * hidden_size, input_size + hidden_size))
    gates = Buffer("gates", (batch, 4 * hidden_size))
    cell_state = Buffer("cell", (batch, 4 * hidden_size))
    hidden = Buffer("hidden", (batch, 4 * hidden_size))

    iter_vars = (
        IterVar("b", batch),
        IterVar("g", 4 * hidden_size),
        IterVar("k", input_size + hidden_size, "reduce"),
    )
    body = StatementSpec(
        "lstm.gates",
        gates,
        ("b", "g"),
        reads=(ReadSpec(concat, ("b", "k")), ReadSpec(weight, ("g", "k"))),
        reduction=True,
    )
    epilogues = (
        StatementSpec(
            "lstm.gate_activations",
            gates,
            ("b", "g"),
            reads=(ReadSpec(gates, ("b", "g")),),
            intrinsics=("sigmoid",),
        ),
        StatementSpec(
            "lstm.cell_update",
            cell_state,
            ("b", "g"),
            reads=(ReadSpec(gates, ("b", "g")), ReadSpec(cell_state, ("b", "g"))),
            intrinsics=("tanh",),
        ),
        StatementSpec(
            "lstm.hidden_update",
            hidden,
            ("b", "g"),
            reads=(ReadSpec(gates, ("b", "g")), ReadSpec(cell_state, ("b", "g"))),
            intrinsics=("tanh",),
        ),
    )
    params = {"batch": batch, "input_size": input_size, "hidden_size": hidden_size}
    return Task("lstm_cell", params, iter_vars, body, epilogues, model=model)
