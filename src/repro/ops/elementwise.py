"""Elementwise operator builders (unary activations and binary arithmetic)."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import TIRError
from repro.tir.buffer import Buffer
from repro.tir.task import IterVar, ReadSpec, StatementSpec, Task

_UNARY_INTRINSICS = {
    "relu": ("max",),
    "sigmoid": ("sigmoid",),
    "tanh": ("tanh",),
    "exp": ("exp",),
    "sqrt": ("sqrt",),
    "gelu": ("erf",),
    "identity": (),
}

_BINARY_KINDS = ("add", "sub", "mul", "div")


def _iter_vars_for_shape(shape: Sequence[int]) -> Tuple[IterVar, ...]:
    return tuple(IterVar(f"d{i}", extent) for i, extent in enumerate(shape))


def elementwise_unary(
    shape: Sequence[int],
    kind: str = "relu",
    *,
    model: Optional[str] = None,
) -> Task:
    """An elementwise unary operator over an arbitrary-rank tensor."""
    if kind not in _UNARY_INTRINSICS:
        raise TIRError(f"unsupported unary elementwise kind {kind!r}")
    shape = tuple(int(s) for s in shape)
    data = Buffer("data", shape)
    out = Buffer(kind, shape)
    iter_vars = _iter_vars_for_shape(shape)
    var_names = tuple(iv.name for iv in iter_vars)
    body = StatementSpec(
        kind,
        out,
        var_names,
        reads=(ReadSpec(data, var_names),),
        intrinsics=_UNARY_INTRINSICS[kind],
    )
    params = {"kind_id": list(_UNARY_INTRINSICS).index(kind), "numel": int(data.num_elements)}
    params.update({f"s{i}": s for i, s in enumerate(shape)})
    return Task(f"elementwise_{kind}", params, iter_vars, body, model=model)


def elementwise_binary(
    shape: Sequence[int],
    kind: str = "add",
    *,
    model: Optional[str] = None,
) -> Task:
    """An elementwise binary operator (e.g. residual addition) over a tensor."""
    if kind not in _BINARY_KINDS:
        raise TIRError(f"unsupported binary elementwise kind {kind!r}")
    shape = tuple(int(s) for s in shape)
    lhs = Buffer("lhs", shape)
    rhs = Buffer("rhs", shape)
    out = Buffer(kind, shape)
    iter_vars = _iter_vars_for_shape(shape)
    var_names = tuple(iv.name for iv in iter_vars)
    body = StatementSpec(
        kind,
        out,
        var_names,
        reads=(ReadSpec(lhs, var_names), ReadSpec(rhs, var_names)),
    )
    params = {"kind_id": _BINARY_KINDS.index(kind), "numel": int(lhs.num_elements)}
    params.update({f"s{i}": s for i, s in enumerate(shape)})
    return Task(f"elementwise_{kind}", params, iter_vars, body, model=model)
