"""Command-line interface: ``cdmpp <network> <batch_size> <device>``.

Mirrors the query interface described in Section 6 of the paper.  Because the
offline reproduction has no shipped pre-trained checkpoint, the CLI trains a
small predictor on a synthetic dataset first (the scale is configurable) and
then answers the end-to-end latency query through the replayer, also printing
the simulator's ground truth for comparison.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.api import CDMPP
from repro.core.scale import available_scales, get_scale
from repro.dataset.splits import split_dataset
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.devices.spec import all_device_names, get_device
from repro.graph.zoo import build_model, list_models
from repro.replay.e2e import measure_end_to_end


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="cdmpp",
        description="Predict the end-to-end latency of a DNN model on a device.",
    )
    parser.add_argument("network", help=f"network name, one of: {', '.join(list_models())}")
    parser.add_argument("batch_size", type=int, help="batch size of the query")
    parser.add_argument("device", help=f"device name, one of: {', '.join(all_device_names())}")
    parser.add_argument(
        "--scale",
        default="tiny",
        choices=list(available_scales()),
        help="experiment scale used to train the cost model before answering the query",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``cdmpp`` command."""
    args = build_parser().parse_args(argv)
    try:
        device = get_device(args.device)
        model = build_model(args.network, batch_size=args.batch_size)
    except Exception as error:  # argparse-style error reporting
        print(f"error: {error}", file=sys.stderr)
        return 2

    scale = get_scale(args.scale)
    print(f"[cdmpp] training a {scale.name}-scale cost model on device {device.name} ...")
    dataset = generate_dataset(
        DatasetConfig(devices=(device.name,), seed=args.seed, **scale.dataset_kwargs())
    )
    splits = split_dataset(dataset.records(device.name), seed=args.seed)

    cdmpp = CDMPP(
        predictor_config=scale.predictor_config(),
        training_config=scale.training_config(),
    )
    cdmpp.pretrain(splits.train, splits.valid, epochs=scale.epochs)

    prediction = cdmpp.predict_model(model, device, batch_size=args.batch_size, seed=args.seed)
    ground_truth = measure_end_to_end(model, device, seed=args.seed)
    error = abs(prediction.predicted_latency_s - ground_truth.iteration_time_s) / max(
        ground_truth.iteration_time_s, 1e-12
    )

    print(f"[cdmpp] network:             {model.name} (batch={args.batch_size}, {len(model)} ops)")
    print(f"[cdmpp] device:              {device.name} ({device.taxonomy})")
    print(f"[cdmpp] predicted latency:   {prediction.predicted_latency_s * 1e3:.3f} ms")
    print(f"[cdmpp] simulated reference: {ground_truth.iteration_time_s * 1e3:.3f} ms")
    print(f"[cdmpp] relative error:      {error * 100:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
