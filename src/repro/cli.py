"""Command-line interface to the CDMPP reproduction.

Subcommands follow the train-once / query-many workflow of the paper:

* ``cdmpp train <device>`` — train a cost model and register the checkpoint.
* ``cdmpp query <network> <batch_size> <device>`` — answer an end-to-end
  latency query, loading a registered checkpoint when one exists (training
  and registering one otherwise, so only the *first* query pays for
  training).
* ``cdmpp serve <device>`` — answer a stream of queries from a file or stdin
  through one cached, batched :class:`repro.serving.PredictionService`.
* ``cdmpp list`` — show available networks, devices, scales and checkpoints.

The original positional form ``cdmpp <network> <batch_size> <device>`` keeps
working and preserves its train-from-scratch semantics (it never reads or
writes the registry).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, TextIO, Tuple

from repro.core.api import CDMPP
from repro.core.scale import available_scales, get_scale
from repro.core.trainer import Trainer
from repro.dataset.splits import split_dataset
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.devices.spec import all_device_names, get_device
from repro.errors import ReproError
from repro.graph.zoo import build_model, list_models
from repro.replay.e2e import measure_end_to_end
from repro.serving import ModelRegistry, PredictionService, default_registry_root

SUBCOMMANDS = ("train", "query", "serve", "list")


# ----------------------------------------------------------------------
# Parsers
# ----------------------------------------------------------------------
def _add_scale_seed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        default="tiny",
        choices=list(available_scales()),
        help="experiment scale used when a cost model has to be trained",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def _add_checkpoint_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--registry",
        default=None,
        help=f"model registry directory (default: $CDMPP_REGISTRY or {default_registry_root()})",
    )
    parser.add_argument("--checkpoint", default=None, help="explicit checkpoint path (.npz)")


def build_parser() -> argparse.ArgumentParser:
    """The legacy positional-form parser (``cdmpp <network> <batch> <device>``)."""
    parser = argparse.ArgumentParser(
        prog="cdmpp",
        description="Predict the end-to-end latency of a DNN model on a device.",
    )
    parser.add_argument("network", help=f"network name, one of: {', '.join(list_models())}")
    parser.add_argument("batch_size", type=int, help="batch size of the query")
    parser.add_argument("device", help=f"device name, one of: {', '.join(all_device_names())}")
    _add_scale_seed(parser)
    return parser


def build_cli_parser() -> argparse.ArgumentParser:
    """The subcommand parser (``cdmpp train|query|serve|list ...``)."""
    parser = argparse.ArgumentParser(
        prog="cdmpp",
        description=(
            "Train, persist and query the CDMPP cost model. "
            "The legacy form `cdmpp <network> <batch_size> <device>` is still accepted."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a cost model and register the checkpoint")
    train.add_argument("device", help=f"target device, one of: {', '.join(all_device_names())}")
    _add_scale_seed(train)
    train.add_argument("--registry", default=None, help="model registry directory")
    train.add_argument(
        "--name", default=None, help="registry name of the checkpoint (default: <device>-<scale>)"
    )

    query = sub.add_parser("query", help="predict the end-to-end latency of one network")
    query.add_argument("network", help=f"network name, one of: {', '.join(list_models())}")
    query.add_argument("batch_size", type=int, help="batch size of the query")
    query.add_argument("device", help=f"device name, one of: {', '.join(all_device_names())}")
    _add_scale_seed(query)
    _add_checkpoint_options(query)
    query.add_argument(
        "--retrain", action="store_true", help="ignore existing checkpoints and train from scratch"
    )
    query.add_argument(
        "--no-save", action="store_true", help="do not register a freshly trained model"
    )

    serve = sub.add_parser(
        "serve", help="answer a stream of `network [batch_size]` queries through one service"
    )
    serve.add_argument("device", help=f"device name, one of: {', '.join(all_device_names())}")
    _add_scale_seed(serve)
    _add_checkpoint_options(serve)
    serve.add_argument(
        "--requests",
        default="-",
        help="file with one `network [batch_size]` query per line ('-' reads stdin)",
    )

    sub.add_parser("list", help="show networks, devices, scales and registered checkpoints")
    return parser


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _train_trainer(device_name: str, scale_name: str, seed: int) -> Trainer:
    """Train a fresh cost model for one device at the given scale."""
    scale = get_scale(scale_name)
    dataset = generate_dataset(
        DatasetConfig(devices=(device_name,), seed=seed, **scale.dataset_kwargs())
    )
    splits = split_dataset(dataset.records(device_name), seed=seed)
    cdmpp = CDMPP(
        predictor_config=scale.predictor_config(),
        training_config=scale.training_config(seed=seed),
    )
    cdmpp.pretrain(splits.train, splits.valid, epochs=scale.epochs)
    return cdmpp.trainer


def _resolve_trainer(args) -> Tuple[Trainer, str, Optional[ModelRegistry], str]:
    """Load a trainer from --checkpoint / the registry, else train one.

    Returns ``(trainer, source, registry, registry_name)`` where ``source``
    is ``"checkpoint"``, ``"registry"`` or ``"trained"``.
    """
    from repro.core.persistence import load_trainer

    registry = ModelRegistry(args.registry)
    name = f"{args.device}-{args.scale}"
    if getattr(args, "checkpoint", None):
        print(f"[cdmpp] loading checkpoint {args.checkpoint} ...")
        return load_trainer(args.checkpoint), "checkpoint", registry, name
    if not getattr(args, "retrain", False) and registry.exists(name):
        print(f"[cdmpp] loading pre-trained model {name!r} from {registry.root} ...")
        return registry.load(name), "registry", registry, name
    print(f"[cdmpp] training a {args.scale}-scale cost model on device {args.device} ...")
    trainer = _train_trainer(args.device, args.scale, args.seed)
    return trainer, "trained", registry, name


def _print_query_report(prediction, ground_truth, batch_size: int, device) -> None:
    error = abs(prediction.predicted_latency_s - ground_truth.iteration_time_s) / max(
        ground_truth.iteration_time_s, 1e-12
    )
    print(f"[cdmpp] network:             {prediction.model} (batch={batch_size}, {prediction.num_nodes} ops)")
    print(f"[cdmpp] device:              {device.name} ({device.taxonomy})")
    print(f"[cdmpp] predicted latency:   {prediction.predicted_latency_s * 1e3:.3f} ms")
    print(f"[cdmpp] simulated reference: {ground_truth.iteration_time_s * 1e3:.3f} ms")
    print(f"[cdmpp] relative error:      {error * 100:.1f}%")


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_train(args) -> int:
    try:
        device = get_device(args.device)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    registry = ModelRegistry(args.registry)
    name = args.name or f"{device.name}-{args.scale}"
    print(f"[cdmpp] training a {args.scale}-scale cost model on device {device.name} ...")
    trainer = _train_trainer(device.name, args.scale, args.seed)
    path = registry.save(name, trainer, device=device.name, scale=args.scale, seed=args.seed)
    print(f"[cdmpp] registered {name!r} at {path} ({path.stat().st_size / 1024:.0f} KiB)")
    print(f"[cdmpp] answer queries with: cdmpp query <network> <batch> {device.name} --scale {args.scale}")
    return 0


def _cmd_query(args) -> int:
    try:
        device = get_device(args.device)
        model = build_model(args.network, batch_size=args.batch_size)
    except Exception as error:  # argparse-style error reporting
        print(f"error: {error}", file=sys.stderr)
        return 2

    trainer, source, registry, name = _resolve_trainer(args)
    if source == "trained" and not args.no_save:
        path = registry.save(name, trainer, device=device.name, scale=args.scale, seed=args.seed)
        print(f"[cdmpp] registered {name!r} at {path}; later queries skip training")

    service = PredictionService(trainer)
    prediction = service.predict_model(model, device, batch_size=args.batch_size, seed=args.seed)
    ground_truth = measure_end_to_end(model, device, seed=args.seed)
    _print_query_report(prediction, ground_truth, args.batch_size, device)
    return 0


def _cmd_serve(args, stream: Optional[TextIO] = None) -> int:
    try:
        device = get_device(args.device)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    opened = None
    if stream is None:
        if args.requests == "-":
            stream = sys.stdin
        else:
            try:
                stream = opened = open(args.requests, "r")
            except OSError as error:
                print(f"error: cannot read requests file: {error}", file=sys.stderr)
                return 2

    trainer, source, registry, name = _resolve_trainer(args)
    if source == "trained":
        registry.save(name, trainer, device=device.name, scale=args.scale, seed=args.seed)
    service = PredictionService(trainer)

    print(f"[cdmpp] serving device {device.name}; one `network [batch_size]` query per line")
    answered = 0
    try:
        for line in stream:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                network, batch_size = parts[0], int(parts[1]) if len(parts) > 1 else 1
                prediction = service.predict_model(
                    network, device, batch_size=batch_size, seed=args.seed
                )
            except (ReproError, ValueError) as error:
                print(f"error: bad query {line!r}: {error}", file=sys.stderr)
                continue
            answered += 1
            print(
                f"[cdmpp] {prediction.model:16s} batch={batch_size:<3d} "
                f"-> {prediction.predicted_latency_s * 1e3:9.3f} ms  ({prediction.num_nodes} ops)"
            )
    finally:
        if opened is not None:
            opened.close()
    stats = service.describe_stats()
    cache = stats["prediction_cache"]
    print(
        f"[cdmpp] served {answered} queries: {stats['queries']} kernel lookups, "
        f"{stats['predictions_computed']} predictor rows in {stats['batches']} batches, "
        f"cache hit rate {cache['hit_rate'] * 100:.0f}%"
    )
    return 0


def _cmd_list(args) -> int:
    registry = ModelRegistry(getattr(args, "registry", None))
    print("networks:  " + ", ".join(list_models()))
    print("devices:   " + ", ".join(all_device_names()))
    print("scales:    " + ", ".join(available_scales()))
    checkpoints = registry.list()
    print(f"registry:  {registry.root}")
    print("models:    " + (", ".join(checkpoints) if checkpoints else "<none registered>"))
    return 0


def _run_legacy(argv: List[str]) -> int:
    """The original one-shot form: train at --scale, then answer the query."""
    args = build_parser().parse_args(argv)
    try:
        device = get_device(args.device)
        model = build_model(args.network, batch_size=args.batch_size)
    except Exception as error:  # argparse-style error reporting
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(f"[cdmpp] training a {args.scale}-scale cost model on device {device.name} ...")
    trainer = _train_trainer(device.name, args.scale, args.seed)
    service = PredictionService(trainer)
    prediction = service.predict_model(model, device, batch_size=args.batch_size, seed=args.seed)
    ground_truth = measure_end_to_end(model, device, seed=args.seed)
    _print_query_report(prediction, ground_truth, args.batch_size, device)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``cdmpp`` command."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if not argv or argv[0] in ("-h", "--help"):
        build_cli_parser().print_help()
        return 0 if argv else 2
    if argv[0] in SUBCOMMANDS:
        args = build_cli_parser().parse_args(argv)
        handler = {
            "train": _cmd_train,
            "query": _cmd_query,
            "serve": _cmd_serve,
            "list": _cmd_list,
        }[args.command]
        try:
            return handler(args)
        except ReproError as error:  # e.g. a missing --checkpoint path
            print(f"error: {error}", file=sys.stderr)
            return 2
    return _run_legacy(argv)


if __name__ == "__main__":
    sys.exit(main())
