"""Command-line interface to the CDMPP reproduction.

Subcommands follow the train-once / query-many workflow of the paper:

* ``cdmpp train <device>`` — train a cost model and register the checkpoint.
  ``--backend`` picks the predictor (``cdmpp`` by default, or any runnable
  baseline: ``xgboost``, ``tlp``, ``habitat``, ``tiramisu``).
* ``cdmpp query <network> <batch_size> <device>`` — answer an end-to-end
  latency query, loading a registered checkpoint when one exists (training
  and registering one otherwise, so only the *first* query pays for
  training).  ``--backend`` serves the query from a baseline checkpoint.
* ``cdmpp predict-model <network> --devices a,b`` — end-to-end latency of
  one model on several devices at once, from registered checkpoints only
  (never retrains), ranked fastest-first through one
  :class:`repro.serving.FleetService`.
* ``cdmpp tune <network> --devices a,b`` — cost-model-guided schedule
  search for one network per device, each round's candidate population
  scored in one batched predictor call of the registered checkpoint; a
  re-tune of an unchanged model is a pure cache hit (the tunings persist in
  the registry next to the checkpoints).
* ``cdmpp compare <device>`` — train several backends side by side on one
  dataset and print a Table-1-style capability + accuracy + training
  throughput report.
* ``cdmpp onboard <device> --parent <name>`` — grow the fleet: select κ
  tasks on the parent checkpoint's latents (Algorithm 1), profile only those
  on the new device, fine-tune a detached clone with the CMD-regularized
  objective (Eq. 7) and register the adapted checkpoint with lineage
  metadata.  The parent checkpoint is never modified.
* ``cdmpp serve <device>`` — answer a stream of queries from a file or stdin
  through one cached, batched :class:`repro.serving.PredictionService`.
* ``cdmpp fleet --devices a,b`` — the multi-device version of ``serve``:
  each streamed query names a network and optionally a device (default: fan
  out to every device and rank).
* ``cdmpp list`` — show available networks, devices, scales and checkpoints.

The original positional form ``cdmpp <network> <batch_size> <device>`` keeps
working and preserves its train-from-scratch semantics (it never reads or
writes the registry).

``docs/cli.md`` is generated from this argparse tree by
``tools/gen_cli_docs.py`` (via :func:`render_cli_docs`); regenerate it after
changing any parser here.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, TextIO, Tuple

from repro.adaptation import STRATEGIES as ONBOARD_STRATEGIES
from repro.adaptation import OnboardingPipeline
from repro.backends import (
    CostModel,
    DistilledBackend,
    available_backends,
    load_backend,
    make_backend,
    resolve_backend_name,
)
from repro.core.scale import ExperimentScale, available_scales, get_scale
from repro.core.trainer import Trainer
from repro.dataset.splits import split_dataset
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.devices.spec import DeviceSpec, all_device_names, get_device
from repro.errors import ReproError
from repro.graph.zoo import build_model, list_models, resolve_model_name
from repro.replay.e2e import COMPOSE_MODES, measure_end_to_end
from repro.features.pipeline import featurize_records
from repro.serving import (
    DEFAULT_TIER,
    TIERS,
    DaemonClient,
    DaemonConfig,
    DaemonRequestError,
    FleetService,
    ModelRegistry,
    PredictionService,
    SearchService,
    ServingDaemon,
)

SUBCOMMANDS = (
    "train",
    "query",
    "predict-model",
    "tune",
    "compare",
    "onboard",
    "serve",
    "fleet",
    "daemon",
    "client",
    "list",
)


# ----------------------------------------------------------------------
# Parsers
# ----------------------------------------------------------------------
def _add_scale_seed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        default="tiny",
        choices=list(available_scales()),
        help="experiment scale used when a cost model has to be trained",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")


# Kept literal (not interpolated from default_registry_root()) so --help and
# the generated docs/cli.md do not depend on $CDMPP_REGISTRY or $HOME.
_REGISTRY_HELP = "model registry directory (default: $CDMPP_REGISTRY or ~/.cache/cdmpp/models)"


def _add_checkpoint_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--registry", default=None, help=_REGISTRY_HELP)
    parser.add_argument("--checkpoint", default=None, help="explicit checkpoint path (.npz)")


def _add_backend(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default=None,
        choices=list(available_backends()),
        help="cost-model backend (default: cdmpp, or whatever backend wrote "
        "an explicit --checkpoint; baselines register checkpoints as "
        "'<device>-<scale>-<backend>')",
    )


def _add_tier(parser: argparse.ArgumentParser, default: Optional[str] = DEFAULT_TIER) -> None:
    help_text = (
        "serving tier: 'accurate' answers from the full cost model, 'fast' "
        "from its distilled student"
    )
    if default is None:
        help_text += " (default: the daemon's configured tier)"
    parser.add_argument("--tier", choices=list(TIERS), default=default, help=help_text)


def _add_compose(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--compose",
        default="replay",
        choices=list(COMPOSE_MODES),
        help="how per-kernel latencies become an end-to-end number: "
        "'replay' simulates the execution order (Algorithm 2), "
        "'serial' sums every kernel back to back",
    )


def _sub(sub, name: str, help_text: str, epilog: str) -> argparse.ArgumentParser:
    """Add one subparser with a worked-example epilog (kept verbatim)."""
    return sub.add_parser(
        name,
        help=help_text,
        description=help_text[0].upper() + help_text[1:] + ".",
        epilog=epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )


def build_parser() -> argparse.ArgumentParser:
    """The legacy positional-form parser (``cdmpp <network> <batch> <device>``)."""
    parser = argparse.ArgumentParser(
        prog="cdmpp",
        description="Predict the end-to-end latency of a DNN model on a device.",
        epilog="example:\n  cdmpp bert_tiny 1 t4 --scale tiny\n\n"
        "Always trains from scratch and never touches the registry; prefer\n"
        "`cdmpp query` for the train-once / query-many workflow.",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("network", help=f"network name, one of: {', '.join(list_models())}")
    parser.add_argument("batch_size", type=int, help="batch size of the query")
    parser.add_argument("device", help=f"device name, one of: {', '.join(all_device_names())}")
    _add_scale_seed(parser)
    return parser


def build_cli_parser() -> argparse.ArgumentParser:
    """The subcommand parser (``cdmpp train|query|predict-model|serve|fleet|list``)."""
    parser = argparse.ArgumentParser(
        prog="cdmpp",
        description=(
            "Train, persist and query the CDMPP cost model. "
            "The legacy form `cdmpp <network> <batch_size> <device>` is still accepted."
        ),
        epilog="See docs/cli.md for the full reference of every subcommand.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = _sub(
        sub,
        "train",
        "train a cost model and register the checkpoint",
        "example:\n  cdmpp train t4 --scale tiny\n"
        "  cdmpp train t4 --scale tiny --backend xgboost\n\n"
        "Registers the checkpoint as '<device>-<scale>' for the cdmpp backend\n"
        "and '<device>-<scale>-<backend>' for baselines (override with --name)\n"
        "so `cdmpp query`, `cdmpp serve`, `cdmpp fleet` and\n"
        "`cdmpp predict-model` can load it instead of retraining.",
    )
    train.add_argument("device", help=f"target device, one of: {', '.join(all_device_names())}")
    _add_scale_seed(train)
    _add_backend(train)
    train.add_argument("--registry", default=None, help=_REGISTRY_HELP)
    train.add_argument(
        "--name",
        default=None,
        help="registry name of the checkpoint (default: <device>-<scale>[-<backend>])",
    )

    query = _sub(
        sub,
        "query",
        "predict the end-to-end latency of one network",
        "example:\n  cdmpp query resnet 1 t4 --scale tiny\n"
        "  cdmpp query resnet 1 t4 --backend xgboost\n\n"
        "Loads the '<device>-<scale>[-<backend>]' checkpoint when it exists;\n"
        "otherwise trains one and registers it, so only the first query pays\n"
        "for training. Unique network-name prefixes are accepted.",
    )
    query.add_argument("network", help=f"network name, one of: {', '.join(list_models())}")
    query.add_argument("batch_size", type=int, help="batch size of the query")
    query.add_argument("device", help=f"device name, one of: {', '.join(all_device_names())}")
    _add_scale_seed(query)
    _add_backend(query)
    _add_checkpoint_options(query)
    _add_tier(query)
    query.add_argument(
        "--retrain", action="store_true", help="ignore existing checkpoints and train from scratch"
    )
    query.add_argument(
        "--no-save", action="store_true", help="do not register a freshly trained model"
    )

    predict_model = _sub(
        sub,
        "predict-model",
        "predict one network's end-to-end latency on several devices, ranked",
        "example:\n  cdmpp train t4 --scale tiny && cdmpp train k80 --scale tiny\n"
        "  cdmpp predict-model bert_tiny --devices t4,k80 --scale tiny\n\n"
        "Serves exclusively from registered '<device>-<scale>' checkpoints\n"
        "(or one --checkpoint shared by every device) and NEVER retrains;\n"
        "train the missing devices first. All per-kernel queries of all\n"
        "devices are answered in one batched predictor pass.",
    )
    predict_model.add_argument(
        "network", help=f"network name, one of: {', '.join(list_models())}"
    )
    predict_model.add_argument(
        "--devices",
        required=True,
        help="comma-separated device names to rank, e.g. 't4,k80'",
    )
    predict_model.add_argument("--batch-size", type=int, default=1, help="batch size of the query")
    _add_scale_seed(predict_model)
    _add_backend(predict_model)
    _add_checkpoint_options(predict_model)
    _add_tier(predict_model)
    _add_compose(predict_model)

    tune = _sub(
        sub,
        "tune",
        "cost-model-guided schedule search for one network on several devices",
        "example:\n  cdmpp train t4 --scale tiny\n"
        "  cdmpp tune bert_tiny --devices t4 --scale tiny\n\n"
        "Partitions the network into its unique tasks and runs evolutionary\n"
        "schedule search on each, scoring every round's candidate population\n"
        "through ONE batched predictor call of the registered checkpoint\n"
        "(never retrains; train the devices first). Finished tunings are\n"
        "cached in the registry next to the checkpoints, keyed on the cost\n"
        "model's signature and the search budget: re-tuning an unchanged\n"
        "model is a pure cache hit ('cached') returning bit-identical\n"
        "results with zero new predicts, while retraining or onboarding a\n"
        "device invalidates its entries and forces a fresh search ('fresh').",
    )
    tune.add_argument("network", help=f"network name, one of: {', '.join(list_models())}")
    tune.add_argument(
        "--devices",
        required=True,
        help="comma-separated device names to tune for, e.g. 't4,k80'",
    )
    tune.add_argument("--batch-size", type=int, default=1, help="batch size of the tuned network")
    tune.add_argument(
        "--rounds", type=int, default=None, help="evolutionary search rounds per task (default: 6)"
    )
    tune.add_argument(
        "--population",
        type=int,
        default=None,
        help="candidate schedules scored per round (default: 12)",
    )
    tune.add_argument(
        "--measurements-per-round",
        type=int,
        default=None,
        help="top candidates measured per round (default: 3)",
    )
    _add_scale_seed(tune)
    _add_backend(tune)
    _add_checkpoint_options(tune)
    tune.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore cached tunings and search from scratch "
        "(fresh results still replace the cached entries)",
    )

    compare = _sub(
        sub,
        "compare",
        "train and evaluate several backends side by side (Table 1 style)",
        "example:\n  cdmpp compare t4 --scale tiny --backends cdmpp,xgboost,tlp\n\n"
        "Generates one dataset for the device, trains every requested backend\n"
        "on the same train/valid split and reports each backend's Table-1\n"
        "capabilities, test MAPE/RMSE and training throughput. Backends that\n"
        "cannot run on the device (e.g. habitat on a CPU) are reported as\n"
        "failed instead of aborting the comparison.",
    )
    compare.add_argument("device", help=f"target device, one of: {', '.join(all_device_names())}")
    compare.add_argument(
        "--backends",
        default="all",
        help="comma-separated backend names to compare, or 'all' "
        f"(available: {', '.join(available_backends())})",
    )
    _add_scale_seed(compare)
    compare.add_argument(
        "--register",
        action="store_true",
        help="also register each trained backend's checkpoint "
        "('<device>-<scale>[-<backend>]')",
    )
    compare.add_argument("--registry", default=None, help=_REGISTRY_HELP)

    onboard = _sub(
        sub,
        "onboard",
        "adapt a registered checkpoint to a new device (clone + fine-tune)",
        "example:\n  cdmpp train t4 --scale tiny\n"
        "  cdmpp onboard k80 --parent t4-tiny\n\n"
        "Runs the Algorithm-1 onboarding pipeline: select kappa representative\n"
        "tasks on the parent model's latents, profile only those on the new\n"
        "device (--budget caps the measurements), CMD-regularize-finetune a\n"
        "detached clone (the parent checkpoint is never modified) and register\n"
        "the adapted model with lineage metadata as '<device>-<scale>'.\n"
        "Prints a zero-shot vs adapted report in the style of `cdmpp compare`.",
    )
    onboard.add_argument("device", help=f"new device to onboard, one of: {', '.join(all_device_names())}")
    onboard.add_argument(
        "--parent",
        required=True,
        help="registry name of the pre-trained cdmpp checkpoint to adapt from "
        "(e.g. 't4-tiny')",
    )
    onboard.add_argument("--registry", default=None, help=_REGISTRY_HELP)
    onboard.add_argument(
        "--source-device",
        default=None,
        help="device the parent was trained on (default: read from the parent "
        "checkpoint's metadata)",
    )
    onboard.add_argument(
        "--scale",
        default=None,
        choices=list(available_scales()),
        help="experiment scale of the profiling/evaluation data "
        "(default: the parent checkpoint's recorded scale)",
    )
    onboard.add_argument(
        "--seed",
        type=int,
        default=None,
        help="random seed (default: the parent checkpoint's recorded seed)",
    )
    onboard.add_argument(
        "--num-tasks", type=int, default=8, help="kappa, tasks to profile on the new device"
    )
    onboard.add_argument(
        "--strategy",
        default="kmeans",
        choices=list(ONBOARD_STRATEGIES),
        help="task-selection strategy: 'kmeans' (Algorithm 1) or 'random'",
    )
    onboard.add_argument(
        "--schedules-per-task", type=int, default=4, help="schedules measured per selected task"
    )
    onboard.add_argument(
        "--budget",
        type=int,
        default=None,
        help="hard cap on profiled measurements (default: num-tasks x schedules-per-task)",
    )
    onboard.add_argument(
        "--epochs",
        type=int,
        default=None,
        help="fine-tuning epochs (default: the scale's finetune_epochs)",
    )
    onboard.add_argument(
        "--alpha", type=float, default=None, help="CMD coefficient of Eq. 7 (default: cmd_alpha)"
    )
    onboard.add_argument(
        "--name",
        default=None,
        help="registry name of the adapted checkpoint (default: '<device>-<scale>')",
    )
    onboard.add_argument(
        "--no-register", action="store_true", help="report only; do not register the adapted model"
    )

    serve = _sub(
        sub,
        "serve",
        "answer a stream of `network [batch_size]` queries through one service",
        "example:\n  printf 'bert_tiny 1\\nvgg16 8\\n' | cdmpp serve t4 --scale tiny\n\n"
        "Reads one `network [batch_size]` query per line from --requests\n"
        "('-' = stdin, '#' starts a comment) and answers all of them through\n"
        "one cached, batched PredictionService, printing cache statistics at\n"
        "the end.",
    )
    serve.add_argument("device", help=f"device name, one of: {', '.join(all_device_names())}")
    _add_scale_seed(serve)
    _add_checkpoint_options(serve)
    serve.add_argument(
        "--requests",
        default="-",
        help="file with one `network [batch_size]` query per line ('-' reads stdin)",
    )

    fleet = _sub(
        sub,
        "fleet",
        "serve `network [batch_size] [device]` queries across a device fleet",
        "example:\n  printf 'bert_tiny\\nresnet50 1 t4\\n' | "
        "cdmpp fleet --devices t4,k80 --scale tiny\n\n"
        "Each request line is `network [batch_size] [device]`; without a\n"
        "device the query fans out to every fleet device and prints a ranked\n"
        "answer. Serves from registered checkpoints; devices without one are\n"
        "an error unless --train-missing is given.",
    )
    fleet.add_argument(
        "--devices",
        required=True,
        help="comma-separated device names the fleet serves, e.g. 't4,k80'",
    )
    _add_scale_seed(fleet)
    _add_checkpoint_options(fleet)
    _add_compose(fleet)
    fleet.add_argument(
        "--requests",
        default="-",
        help="file with one `network [batch_size] [device]` query per line ('-' reads stdin)",
    )
    fleet.add_argument(
        "--train-missing",
        action="store_true",
        help="train and register a checkpoint for fleet devices that have none "
        "(default: missing checkpoints are an error)",
    )

    daemon = _sub(
        sub,
        "daemon",
        "run a long-lived TCP serving daemon with deadline-aware batching",
        "example:\n  cdmpp daemon --devices t4,k80 --port 7077 --scale tiny --train-missing\n\n"
        "Serves the fleet over line-delimited JSON on TCP (see docs/daemon.md\n"
        "for the wire protocol). Concurrent clients' queries are micro-batched\n"
        "per device shard: a batch flushes when full (--max-batch-size) or\n"
        "when its oldest request has waited --max-wait-ms. Requests carrying\n"
        "a deadline_ms jump the queue and are shed with 'deadline_exceeded'\n"
        "once expired; beyond --queue-limit queued requests new work is\n"
        "rejected with 'overloaded' + retry_after_ms. SIGTERM/SIGINT drain\n"
        "queued work before exiting.",
    )
    daemon.add_argument(
        "--devices",
        required=True,
        help="comma-separated device names the daemon serves, e.g. 't4,k80'",
    )
    daemon.add_argument("--host", default="127.0.0.1", help="interface to bind")
    daemon.add_argument(
        "--port", type=int, default=7077, help="TCP port to listen on (0 = OS-assigned)"
    )
    daemon.add_argument(
        "--max-batch-size",
        type=int,
        default=32,
        help="flush a device shard's batch at this many queued requests",
    )
    daemon.add_argument(
        "--max-wait-ms",
        type=float,
        default=10.0,
        help="flush a shard once its oldest request has waited this long",
    )
    daemon.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        help="total queued requests before new work is rejected as 'overloaded'",
    )
    daemon.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        help="deadline applied to requests that carry none (default: no deadline)",
    )
    _add_scale_seed(daemon)
    _add_checkpoint_options(daemon)
    _add_tier(daemon)
    _add_compose(daemon)
    daemon.add_argument(
        "--train-missing",
        action="store_true",
        help="train and register a checkpoint for devices that have none "
        "(default: missing checkpoints are an error)",
    )

    client = _sub(
        sub,
        "client",
        "query a running `cdmpp daemon` over TCP",
        "example:\n  printf 'bert_tiny\\nresnet50 1 t4\\n' | cdmpp client --port 7077\n"
        "  cdmpp client --port 7077 --health\n\n"
        "Each request line is `network [batch_size] [device]`; without a\n"
        "device the query fans out to every daemon device and prints a ranked\n"
        "answer (the same format as `cdmpp fleet`). --health and --stats are\n"
        "one-shot probes that print the daemon's JSON response.",
    )
    client.add_argument("--host", default="127.0.0.1", help="daemon host")
    client.add_argument("--port", type=int, default=7077, help="daemon port")
    client.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline; expired requests are shed by the daemon",
    )
    client.add_argument(
        "--timeout-s", type=float, default=60.0, help="socket timeout for each round-trip"
    )
    _add_tier(client, default=None)
    client.add_argument(
        "--requests",
        default="-",
        help="file with one `network [batch_size] [device]` query per line ('-' reads stdin)",
    )
    client.add_argument(
        "--health", action="store_true", help="print the daemon's health payload and exit"
    )
    client.add_argument(
        "--stats", action="store_true", help="print the daemon's stats payload and exit"
    )

    list_cmd = _sub(
        sub,
        "list",
        "show networks, devices, scales and registered checkpoints",
        "example:\n  cdmpp list --registry /tmp/cdmpp-models",
    )
    list_cmd.add_argument("--registry", default=None, help=_REGISTRY_HELP)
    return parser


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _registry_name(device_name: str, scale_name: str, backend: str) -> str:
    """Default registry name: '<device>-<scale>' plus a suffix for baselines."""
    if backend == "cdmpp":
        return f"{device_name}-{scale_name}"
    return f"{device_name}-{scale_name}-{backend}"


def _backend_phrase(backend: str) -> str:
    """Log-message qualifier: empty for the default cdmpp backend."""
    return "" if backend == "cdmpp" else f"{backend} "


def _make_backend_for(backend: str, device_name: str, scale: ExperimentScale, seed: int) -> CostModel:
    """An unfitted backend configured for one device at one scale."""
    if backend in ("cdmpp", "distilled"):
        kwargs = {} if backend == "cdmpp" else {"seed": seed}
        return make_backend(
            backend,
            predictor_config=scale.predictor_config(),
            training_config=scale.training_config(seed=seed),
            **kwargs,
        )
    kwargs = {"seed": seed}
    if backend == "habitat":
        kwargs["target_device"] = device_name
    return make_backend(backend, **kwargs)


def _train_model(device_name: str, scale_name: str, seed: int, backend: str = "cdmpp") -> CostModel:
    """Train a fresh cost model of any backend for one device at one scale."""
    scale = get_scale(scale_name)
    dataset = generate_dataset(
        DatasetConfig(devices=(device_name,), seed=seed, **scale.dataset_kwargs())
    )
    splits = split_dataset(dataset.records(device_name), seed=seed)
    model = _make_backend_for(backend, device_name, scale, seed)
    model.fit(splits.train, splits.valid)
    return model


def _train_trainer(device_name: str, scale_name: str, seed: int) -> Trainer:
    """Train a fresh CDMPP cost model for one device at the given scale."""
    return _train_model(device_name, scale_name, seed, backend="cdmpp").trainer


def _resolve_model(args):
    """Load a cost model from --checkpoint / the registry, else train one.

    Returns ``(model, source, registry, registry_name)`` where ``source``
    is ``"checkpoint"``, ``"registry"`` or ``"trained"``.  ``model`` is
    whatever the checkpoint's backend tag dictates (a :class:`Trainer` for
    cdmpp checkpoints, a :class:`CostModel` backend otherwise).
    """
    registry = ModelRegistry(args.registry)
    requested = getattr(args, "backend", None)
    backend = resolve_backend_name(requested or "cdmpp")
    name = _registry_name(args.device, args.scale, backend)
    if getattr(args, "checkpoint", None):
        if requested is not None:
            from repro.backends import backend_of_checkpoint

            tag = resolve_backend_name(backend_of_checkpoint(args.checkpoint))
            if tag != backend:
                raise ReproError(
                    f"checkpoint {args.checkpoint} was written by backend {tag!r}, "
                    f"but --backend {backend} was requested; drop --backend to "
                    "serve the checkpoint as-is"
                )
        print(f"[cdmpp] loading checkpoint {args.checkpoint} ...")
        return load_backend(args.checkpoint), "checkpoint", registry, name
    if not getattr(args, "retrain", False) and registry.exists(name):
        tag = resolve_backend_name(registry.backend_of(name))
        if tag != backend:
            raise ReproError(
                f"registry entry {name!r} was written by backend {tag!r}, not "
                f"{backend!r}; delete it or register under another name"
            )
        print(
            f"[cdmpp] loading pre-trained {_backend_phrase(backend)}model {name!r} "
            f"from {registry.root} ..."
        )
        return registry.load(name), "registry", registry, name
    print(
        f"[cdmpp] training a {args.scale}-scale {_backend_phrase(backend)}cost model "
        f"on device {args.device} ..."
    )
    model = _train_model(args.device, args.scale, args.seed, backend)
    return model, "trained", registry, name


def _distill_training_features(device_name: str, scale_name: str, seed: int, max_leaves: int):
    """Regenerate the deterministic training FeatureSet a teacher was fit on.

    Dataset generation is seeded, so this reproduces exactly what
    ``cdmpp train <device> --scale <scale> --seed <seed>`` featurized —
    the right distillation set for that checkpoint's student.
    """
    scale = get_scale(scale_name)
    dataset = generate_dataset(
        DatasetConfig(devices=(device_name,), seed=seed, **scale.dataset_kwargs())
    )
    splits = split_dataset(dataset.records(device_name), seed=seed)
    return featurize_records(splits.train, max_leaves=max_leaves)


def _resolve_fast_model(args, device: DeviceSpec):
    """Load the device's distilled student, distilling/training one if absent.

    Mirrors :func:`_resolve_model` for the fast tier: an explicit distilled
    ``--checkpoint`` wins, then the registered
    '<device>-<scale>-distilled' entry; otherwise a student is distilled
    from the device's registered cdmpp teacher (cheap — no teacher
    training), or trained teacher-and-all as a last resort.  Returns
    ``(model, source, registry, name)``.
    """
    registry = ModelRegistry(args.registry)
    name = _registry_name(device.name, args.scale, "distilled")
    requested = resolve_backend_name(getattr(args, "backend", None) or "cdmpp")
    if requested not in ("cdmpp", "distilled"):
        raise ReproError(
            f"--tier fast serves a student distilled from a cdmpp teacher; it "
            f"cannot combine with --backend {requested}"
        )
    if getattr(args, "checkpoint", None):
        from repro.backends import backend_of_checkpoint

        tag = resolve_backend_name(backend_of_checkpoint(args.checkpoint))
        if tag != "distilled":
            raise ReproError(
                f"--tier fast needs a distilled checkpoint, but {args.checkpoint} "
                f"was written by backend {tag!r}; drop --tier fast to serve it "
                "as the accurate tier"
            )
        print(f"[cdmpp] loading distilled checkpoint {args.checkpoint} ...")
        return load_backend(args.checkpoint), "checkpoint", registry, name
    if not getattr(args, "retrain", False) and registry.exists(name):
        print(f"[cdmpp] loading distilled student {name!r} from {registry.root} ...")
        return registry.load(name), "registry", registry, name
    teacher_name = _registry_name(device.name, args.scale, "cdmpp")
    if not getattr(args, "retrain", False) and registry.exists(teacher_name):
        teacher = registry.load(teacher_name)
        print(
            f"[cdmpp] distilling a fast-tier student from registered teacher "
            f"{teacher_name!r} ..."
        )
        features = _distill_training_features(
            device.name, args.scale, args.seed, teacher.predictor.config.max_leaves
        )
        model = DistilledBackend.distill_from(teacher, features, seed=args.seed)
        return model, "trained", registry, name
    print(
        f"[cdmpp] training a {args.scale}-scale distilled cost model "
        f"on device {device.name} ..."
    )
    model = _train_model(device.name, args.scale, args.seed, "distilled")
    return model, "trained", registry, name


def _parse_device_list(arg: str) -> List[DeviceSpec]:
    """Parse a --devices value ('t4,k80') into device specs (raises ReproError)."""
    names = [token.strip() for token in arg.split(",") if token.strip()]
    if not names:
        raise ReproError("--devices needs at least one device name (e.g. 't4,k80')")
    specs, seen = [], set()
    for name in names:
        spec = get_device(name)
        if spec.name not in seen:
            seen.add(spec.name)
            specs.append(spec)
    return specs


def _fleet_models(args, specs: List[DeviceSpec], train_missing: bool) -> dict:
    """Resolve a ``{device: model}`` mapping for a fleet of devices.

    With --checkpoint, one explicitly loaded model serves every device.
    Otherwise each device is served by its '<device>-<scale>[-<backend>]'
    registry entry; missing entries either abort (the default — serving
    never retrains) or are trained and registered when ``train_missing`` is
    set.  Devices sharing a checkpoint share one in-memory model (via
    ``ModelRegistry.load_shared``), so their kernel queries batch together.
    Used by both ``cdmpp fleet`` (in-process) and ``cdmpp daemon`` (TCP).
    """
    if getattr(args, "checkpoint", None):
        print(f"[cdmpp] loading checkpoint {args.checkpoint} for {len(specs)} device(s) ...")
        model = load_backend(args.checkpoint)
        return {spec.name: model for spec in specs}

    backend = resolve_backend_name(getattr(args, "backend", None) or "cdmpp")
    registry = ModelRegistry(args.registry)
    names = {spec.name: _registry_name(spec.name, args.scale, backend) for spec in specs}
    missing = [device for device, name in names.items() if not registry.exists(name)]
    if missing and not train_missing:
        backend_flag = "" if backend == "cdmpp" else f" --backend {backend}"
        hint = " && ".join(
            f"cdmpp train {device} --scale {args.scale}{backend_flag}" for device in missing
        )
        raise ReproError(
            f"no registered checkpoint for device(s) {', '.join(missing)} in {registry.root} "
            f"(expected {', '.join(names[d] for d in missing)}); train them first: {hint}"
        )
    for device in missing:
        print(
            f"[cdmpp] training a {args.scale}-scale {_backend_phrase(backend)}cost model "
            f"on device {device} ..."
        )
        model = _train_model(device, args.scale, args.seed, backend)
        registry.save(names[device], model, device=device, scale=args.scale, seed=args.seed)
    print(
        f"[cdmpp] fleet of {len(specs)} device(s) from {registry.root}: "
        + ", ".join(f"{device}<-{name}" for device, name in names.items())
    )
    load = getattr(registry, "load_shared", registry.load)
    return {device: load(name) for device, name in names.items()}


def _fleet_fast_models(args, specs: List[DeviceSpec], required: bool) -> Optional[dict]:
    """Registered '<device>-<scale>-distilled' students for a fleet's fast tier.

    Serving never distills on demand (the same serve-only rule as
    :func:`_fleet_models`): when ``required``, devices without a registered
    student abort with the command that creates one; otherwise whatever
    students exist are loaded and the rest of the fleet stays accurate-only.
    Returns None when no device has a student.
    """
    if getattr(args, "checkpoint", None):
        from repro.backends import backend_of_checkpoint

        tag = resolve_backend_name(backend_of_checkpoint(args.checkpoint))
        if tag != "distilled":
            if required:
                raise ReproError(
                    f"--tier fast needs a distilled checkpoint, but {args.checkpoint} "
                    f"was written by backend {tag!r}"
                )
            return None
        model = load_backend(args.checkpoint)
        return {spec.name: model for spec in specs}
    registry = ModelRegistry(args.registry)
    names = {spec.name: _registry_name(spec.name, args.scale, "distilled") for spec in specs}
    missing = [device for device, name in names.items() if not registry.exists(name)]
    if missing and required:
        hint = " && ".join(
            f"cdmpp query bert_tiny 1 {device} --scale {args.scale} --tier fast"
            for device in missing
        )
        raise ReproError(
            f"no distilled fast-tier checkpoint for device(s) {', '.join(missing)} in "
            f"{registry.root} (expected {', '.join(names[d] for d in missing)}); "
            f"distill them first, e.g.: {hint}"
        )
    names = {device: name for device, name in names.items() if device not in missing}
    if not names:
        return None
    print(
        f"[cdmpp] fast tier from {registry.root}: "
        + ", ".join(f"{device}<-{name}" for device, name in names.items())
    )
    load = getattr(registry, "load_shared", registry.load)
    return {device: load(name) for device, name in names.items()}


def _build_fleet(
    args, specs: List[DeviceSpec], train_missing: bool, tier: str = DEFAULT_TIER
) -> FleetService:
    """A FleetService over registered checkpoints (see :func:`_fleet_models`)."""
    fast_models = _fleet_fast_models(args, specs, required=True) if tier == "fast" else None
    return FleetService(_fleet_models(args, specs, train_missing), fast_models=fast_models)


def _open_requests(args, stream: Optional[TextIO]) -> Optional[Tuple[TextIO, Optional[TextIO]]]:
    """Resolve the --requests stream ('-' = stdin).

    Returns ``(stream, opened)`` where ``opened`` is the file to close when
    done (None for stdin / injected streams), or None after printing an error.
    """
    if stream is not None:
        return stream, None
    if args.requests == "-":
        return sys.stdin, None
    try:
        opened = open(args.requests, "r")
    except OSError as error:
        print(f"error: cannot read requests file: {error}", file=sys.stderr)
        return None
    return opened, opened


def _print_fleet_ranking(results) -> None:
    fastest = results[0].predicted_latency_s if results else 0.0
    for rank, prediction in enumerate(results, start=1):
        relative = prediction.predicted_latency_s / fastest if fastest > 0 else 1.0
        print(
            f"[cdmpp]   {rank}. {prediction.device:12s} "
            f"{prediction.predicted_latency_s * 1e3:9.3f} ms  "
            f"({relative:4.2f}x, serial {prediction.serial_latency_s * 1e3:.3f} ms, "
            f"{prediction.num_nodes} ops / {prediction.num_unique_kernels} kernels)"
        )


def _print_query_report(prediction, ground_truth, batch_size: int, device, tier: str) -> None:
    error = abs(prediction.predicted_latency_s - ground_truth.iteration_time_s) / max(
        ground_truth.iteration_time_s, 1e-12
    )
    tier_phrase = "distilled student" if tier == "fast" else "full cost model"
    print(f"[cdmpp] network:             {prediction.model} (batch={batch_size}, {prediction.num_nodes} ops)")
    print(f"[cdmpp] device:              {device.name} ({device.taxonomy})")
    print(f"[cdmpp] serving tier:        tier={tier} ({tier_phrase})")
    print(f"[cdmpp] predicted latency:   {prediction.predicted_latency_s * 1e3:.3f} ms")
    print(f"[cdmpp] simulated reference: {ground_truth.iteration_time_s * 1e3:.3f} ms")
    print(f"[cdmpp] relative error:      {error * 100:.1f}%")


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_train(args) -> int:
    try:
        device = get_device(args.device)
        backend = resolve_backend_name(args.backend or "cdmpp")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    registry = ModelRegistry(args.registry)
    name = args.name or _registry_name(device.name, args.scale, backend)
    print(
        f"[cdmpp] training a {args.scale}-scale {_backend_phrase(backend)}cost model "
        f"on device {device.name} ..."
    )
    model = _train_model(device.name, args.scale, args.seed, backend)
    path = registry.save(name, model, device=device.name, scale=args.scale, seed=args.seed)
    print(f"[cdmpp] registered {name!r} at {path} ({path.stat().st_size / 1024:.0f} KiB)")
    backend_flag = "" if backend == "cdmpp" else f" --backend {backend}"
    print(
        f"[cdmpp] answer queries with: cdmpp query <network> <batch> {device.name} "
        f"--scale {args.scale}{backend_flag}"
    )
    return 0


def _cmd_query(args) -> int:
    try:
        device = get_device(args.device)
        model = build_model(args.network, batch_size=args.batch_size)
    except Exception as error:  # argparse-style error reporting
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.tier == "fast":
        cost_model, source, registry, name = _resolve_fast_model(args, device)
    else:
        cost_model, source, registry, name = _resolve_model(args)
    if source == "trained" and not args.no_save:
        path = registry.save(name, cost_model, device=device.name, scale=args.scale, seed=args.seed)
        print(f"[cdmpp] registered {name!r} at {path}; later queries skip training")

    if args.tier == "fast":
        # The student serves the fast tier; the accurate slot holds it too so
        # the service constructs, but this query never touches that table.
        service = PredictionService(cost_model, fast_models={device.name: cost_model})
    else:
        service = PredictionService(cost_model)
    prediction = service.predict_model(
        model, device, batch_size=args.batch_size, seed=args.seed, tier=args.tier
    )
    ground_truth = measure_end_to_end(model, device, seed=args.seed)
    _print_query_report(prediction, ground_truth, args.batch_size, device, args.tier)
    return 0


def _align_table(table: List[List[str]]) -> List[str]:
    """Left-align a list of rows (first row = header) into text lines."""
    widths = [max(len(line[col]) for line in table) for col in range(len(table[0]))]
    return [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths)).rstrip()
        for line in table
    ]


def _format_compare_table(rows: List[dict]) -> List[str]:
    """Render the Table-1-style comparison rows as aligned text lines."""
    header = ["backend", "abs", "model", "op", "xdev", "MAPE%", "RMSE(ms)", "train_s", "samples/s"]
    table = [header]
    for row in rows:
        if row.get("error"):
            table.append([row["backend"], "-", "-", "-", "-", "failed", "-", "-", "-"])
            continue
        caps = row["capabilities"]
        table.append([
            row["backend"],
            "yes" if caps["absolute_time"] else "no",
            "yes" if caps["model_level"] else "no",
            "yes" if caps["op_level"] else "no",
            "yes" if caps["cross_device"] else "no",
            f"{row['mape'] * 100:.1f}",
            f"{row['rmse'] * 1e3:.4f}",
            f"{row['train_seconds']:.2f}",
            f"{row['throughput']:.0f}",
        ])
    return _align_table(table)


def _cmd_compare(args) -> int:
    try:
        device = get_device(args.device)
        if args.backends.strip().lower() in ("all", "*"):
            backends = list(available_backends())
        else:
            tokens = [token.strip() for token in args.backends.split(",") if token.strip()]
            if not tokens:
                raise ReproError("--backends needs at least one backend name (or 'all')")
            backends = []
            for token in tokens:
                name = resolve_backend_name(token)
                if name not in backends:
                    backends.append(name)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    scale = get_scale(args.scale)
    print(f"[cdmpp] generating a {args.scale}-scale dataset for device {device.name} ...")
    dataset = generate_dataset(
        DatasetConfig(devices=(device.name,), seed=args.seed, **scale.dataset_kwargs())
    )
    splits = split_dataset(dataset.records(device.name), seed=args.seed)
    print(
        f"[cdmpp] comparing {len(backends)} backend(s) on {device.name}: "
        f"{len(splits.train)} train / {len(splits.valid)} valid / {len(splits.test)} test records"
    )

    registry = ModelRegistry(args.registry) if args.register else None
    rows: List[dict] = []
    for backend in backends:
        try:
            model = _make_backend_for(backend, device.name, scale, args.seed)
            stats = model.fit(splits.train, splits.valid)
            metrics = model.evaluate(splits.test)
        except ReproError as error:
            print(f"[cdmpp] {backend}: failed ({error})")
            rows.append({"backend": backend, "error": str(error)})
            continue
        rows.append({
            "backend": backend,
            "capabilities": model.capabilities,
            "mape": metrics["mape"],
            "rmse": metrics["rmse"],
            "train_seconds": stats.train_seconds,
            "throughput": stats.throughput_samples_per_s,
        })
        print(
            f"[cdmpp] {backend}: MAPE {metrics['mape'] * 100:.1f}% in "
            f"{stats.train_seconds:.2f}s ({stats.throughput_samples_per_s:.0f} samples/s)"
        )
        if registry is not None:
            name = _registry_name(device.name, args.scale, backend)
            registry.save(name, model, device=device.name, scale=args.scale, seed=args.seed)
            print(f"[cdmpp] registered {name!r} in {registry.root}")

    print(f"[cdmpp] Table-1-style comparison on {device.name} ({args.scale} scale):")
    for line in _format_compare_table(rows):
        print(f"[cdmpp]   {line}")
    trained = [row for row in rows if not row.get("error")]
    if trained:
        best = min(trained, key=lambda row: row["mape"])
        print(f"[cdmpp] best test MAPE: {best['backend']} ({best['mape'] * 100:.1f}%)")
    return 0 if trained else 2


def _format_onboard_table(rows: List[dict]) -> List[str]:
    """Render the zero-shot vs adapted report as aligned text lines."""
    table = [["stage", "MAPE%", "RMSE(ms)", "10%-acc", "20%-acc"]]
    for row in rows:
        metrics = row["metrics"]
        table.append([
            row["stage"],
            f"{metrics['mape'] * 100:.1f}",
            f"{metrics['rmse'] * 1e3:.4f}",
            f"{metrics['10%accuracy'] * 100:.0f}",
            f"{metrics['20%accuracy'] * 100:.0f}",
        ])
    return _align_table(table)


def _cmd_onboard(args) -> int:
    from repro.features.pipeline import featurize_records

    registry = ModelRegistry(args.registry)
    try:
        device = get_device(args.device)
        if not registry.exists(args.parent):
            available = ", ".join(registry.list()) or "<registry is empty>"
            raise ReproError(
                f"no parent checkpoint {args.parent!r} in {registry.root} "
                f"(available: {available}); train one first: cdmpp train <device>"
            )
        if resolve_backend_name(registry.backend_of(args.parent)) != "cdmpp":
            raise ReproError(
                f"parent checkpoint {args.parent!r} was written by backend "
                f"{registry.backend_of(args.parent)!r}; onboarding fine-tunes in the "
                "cdmpp latent space and needs a cdmpp parent"
            )
        extra = registry.describe(args.parent).get("extra", {})
        source_device = args.source_device or extra.get("device")
        if not source_device:
            raise ReproError(
                f"parent checkpoint {args.parent!r} records no source device; "
                "pass --source-device"
            )
        source_device = get_device(source_device).name
        if source_device == device.name:
            raise ReproError(
                f"parent {args.parent!r} was already trained on {device.name}; "
                "onboard a *different* device or just serve the parent"
            )
        scale_name = args.scale or extra.get("scale") or "tiny"
        scale = get_scale(scale_name)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    seed = args.seed if args.seed is not None else int(extra.get("seed", 0))
    epochs = args.epochs if args.epochs is not None else scale.finetune_epochs
    parent = registry.load(args.parent)

    print(
        f"[cdmpp] regenerating the {scale_name}-scale dataset for "
        f"{source_device} (source) + {device.name} (target) ..."
    )
    dataset = generate_dataset(
        DatasetConfig(devices=(source_device, device.name), seed=seed, **scale.dataset_kwargs())
    )
    source_splits = split_dataset(dataset.records(source_device), seed=seed)
    target_splits = split_dataset(dataset.records(device.name), seed=seed)
    source_train = featurize_records(source_splits.train, max_leaves=parent.max_leaves)
    target_test = featurize_records(target_splits.test, max_leaves=parent.max_leaves)

    budget = args.budget if args.budget is not None else args.num_tasks * args.schedules_per_task
    print(
        f"[cdmpp] onboarding {device.name} from parent {args.parent!r} "
        f"(kappa={args.num_tasks}, strategy={args.strategy}, budget={budget})"
    )
    pipeline = OnboardingPipeline(parent, source_train, parent_name=args.parent, seed=seed)
    name = args.name or _registry_name(device.name, scale_name, "cdmpp")
    result = pipeline.onboard(
        device,
        dataset.tasks(),
        num_tasks=args.num_tasks,
        strategy=args.strategy,
        schedules_per_task=args.schedules_per_task,
        max_measurements=budget,
        epochs=epochs,
        alpha=args.alpha,
        target_test=target_test,
        registry=None if args.no_register else registry,
        register_as=None if args.no_register else name,
        annotations={"scale": scale_name, "seed": seed},
    )

    print(
        f"[cdmpp] profiled {result.profiled_records} record(s) across "
        f"{len(result.selected_tasks)} task(s) in {result.profiling_seconds:.2f}s; "
        f"fine-tuned {len(result.finetune.history)} epoch(s)"
    )
    print(
        f"[cdmpp] zero-shot vs adapted on {device.name} "
        f"(test split, {len(target_test)} records):"
    )
    rows = [
        {"stage": "zero-shot", "metrics": result.zero_shot},
        {"stage": "adapted", "metrics": result.adapted},
    ]
    for line in _format_onboard_table(rows):
        print(f"[cdmpp]   {line}")
    print(f"[cdmpp] latent CMD source<->target: {result.cmd_before:.4f} -> {result.cmd_after:.4f}")
    if result.registered_as:
        lineage = result.lineage
        print(
            f"[cdmpp] registered {result.registered_as!r} at {result.checkpoint_path} "
            f"(lineage: parent={lineage['parent']}, kappa={lineage['kappa']}, "
            f"alpha={lineage['alpha']}, strategy={lineage['strategy']}, "
            f"epochs={lineage['epochs']})"
        )
        print(
            f"[cdmpp] serve the grown fleet with: cdmpp fleet --devices "
            f"{source_device},{device.name} --scale {scale_name}"
        )
    if result.mape_improvement <= 0:
        print(
            "[cdmpp] warning: adaptation did not improve MAPE on the test split; "
            "consider more tasks (--num-tasks), a larger --budget or more --epochs"
        )
    return 0


def _cmd_predict_model(args) -> int:
    try:
        specs = _parse_device_list(args.devices)
        network = resolve_model_name(args.network)
        fleet = _build_fleet(args, specs, train_missing=False, tier=args.tier)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    results = fleet.predict_model_fleet(
        network,
        devices=[spec.name for spec in specs],
        batch_size=args.batch_size,
        seed=args.seed,
        compose=args.compose,
        tier=args.tier,
    )
    print(
        f"[cdmpp] {network} (batch={args.batch_size}): end-to-end latency on "
        f"{len(results)} device(s), compose={args.compose}, tier={args.tier}"
    )
    _print_fleet_ranking(results)
    stats = fleet.describe_stats()["kernel_service"]
    print(
        f"[cdmpp] {stats['queries']} kernel queries answered in {stats['batches']} "
        f"batched predictor call(s)"
    )
    return 0


def _cmd_tune(args) -> int:
    try:
        specs = _parse_device_list(args.devices)
        network = resolve_model_name(args.network)
        fleet = _build_fleet(args, specs, train_missing=False)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if getattr(args, "checkpoint", None):
        # One explicit checkpoint serves every device; there is no registry
        # name to tie cache entries to, so tunings stay in-memory.
        search = SearchService(fleet)
    else:
        backend = resolve_backend_name(args.backend or "cdmpp")
        registry = ModelRegistry(args.registry)
        names = {spec.name: _registry_name(spec.name, args.scale, backend) for spec in specs}
        search = SearchService(fleet, registry=registry, model_names=names)

    budget = {}
    if args.rounds is not None:
        budget["num_rounds"] = args.rounds
    if args.population is not None:
        budget["population"] = args.population
    if args.measurements_per_round is not None:
        budget["measurements_per_round"] = args.measurements_per_round
    tunings = search.tune_model(
        network,
        devices=specs,
        batch_size=args.batch_size,
        seed=args.seed,
        use_cache=not args.no_cache,
        **budget,
    )

    print(f"[cdmpp] {network} (batch={args.batch_size}): tuned on {len(tunings)} device(s)")
    for tuning in tunings:
        total = len(tuning.results)
        print(
            f"[cdmpp]   {tuning.device:12s} {total} task(s): "
            f"{len(tuning.cached_tasks)} cached, {len(tuning.fresh_tasks)} fresh  "
            f"tuned latency {tuning.tuned_latency_s * 1e3:9.3f} ms"
        )
        worst = max(tuning.results.values(), key=lambda result: result.best_latency_s, default=None)
        if worst is not None:
            print(
                f"[cdmpp]     slowest task {worst.task_key}: "
                f"{worst.best_latency_s * 1e6:.2f} us after {worst.num_measurements} measurement(s)"
            )
    stats = search.describe_stats()
    kernel = fleet.describe_stats()["kernel_service"]
    print(
        f"[cdmpp] {stats['tasks_tuned']} task tunings: {stats['cache_hits']} cached, "
        f"{stats['searches_run']} searched ({stats['programs_scored']} candidates scored "
        f"in {kernel['batches']} batched predictor calls)"
    )
    return 0


def _cmd_fleet(args, stream: Optional[TextIO] = None) -> int:
    try:
        specs = _parse_device_list(args.devices)
        fleet = _build_fleet(args, specs, train_missing=args.train_missing)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    resolved = _open_requests(args, stream)
    if resolved is None:
        return 2
    stream, opened = resolved

    device_names = [spec.name for spec in specs]
    print(
        f"[cdmpp] fleet serving {', '.join(device_names)}; "
        "one `network [batch_size] [device]` query per line"
    )
    answered = 0
    try:
        for line in stream:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                network = resolve_model_name(parts[0])
                batch_size, target = 1, None
                for token in parts[1:]:
                    if token.isdigit():
                        batch_size = int(token)
                    else:
                        target = token
                if target is not None and target not in ("all", "*"):
                    targets = [get_device(target).name]
                    if targets[0] not in device_names:
                        raise ReproError(
                            f"device {targets[0]!r} is not part of this fleet "
                            f"({', '.join(device_names)})"
                        )
                else:
                    targets = device_names
                results = fleet.predict_model_fleet(
                    network,
                    devices=targets,
                    batch_size=batch_size,
                    seed=args.seed,
                    compose=args.compose,
                )
            except (ReproError, ValueError) as error:
                print(f"error: bad query {line!r}: {error}", file=sys.stderr)
                continue
            answered += 1
            print(f"[cdmpp] {network} batch={batch_size}:")
            _print_fleet_ranking(results)
    finally:
        if opened is not None:
            opened.close()

    stats = fleet.describe_stats()
    kernel = stats["kernel_service"]
    cache = kernel["prediction_cache"]
    print(
        f"[cdmpp] served {answered} model queries ({stats['model_queries']} device answers): "
        f"{kernel['queries']} kernel lookups, {kernel['predictions_computed']} predictor rows "
        f"in {kernel['batches']} batches, cache hit rate {cache['hit_rate'] * 100:.0f}%, "
        f"{stats['partitions']} partitions ({stats['partition_cache_hits']} reused)"
    )
    return 0


def _cmd_serve(args, stream: Optional[TextIO] = None) -> int:
    try:
        device = get_device(args.device)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    resolved = _open_requests(args, stream)
    if resolved is None:
        return 2
    stream, opened = resolved

    cost_model, source, registry, name = _resolve_model(args)
    if source == "trained":
        registry.save(name, cost_model, device=device.name, scale=args.scale, seed=args.seed)
    service = PredictionService(cost_model)

    print(f"[cdmpp] serving device {device.name}; one `network [batch_size]` query per line")
    answered = 0
    try:
        for line in stream:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                network, batch_size = parts[0], int(parts[1]) if len(parts) > 1 else 1
                prediction = service.predict_model(
                    network, device, batch_size=batch_size, seed=args.seed
                )
            except (ReproError, ValueError) as error:
                print(f"error: bad query {line!r}: {error}", file=sys.stderr)
                continue
            answered += 1
            print(
                f"[cdmpp] {prediction.model:16s} batch={batch_size:<3d} "
                f"-> {prediction.predicted_latency_s * 1e3:9.3f} ms  ({prediction.num_nodes} ops)"
            )
    finally:
        if opened is not None:
            opened.close()
    stats = service.describe_stats()
    cache = stats["prediction_cache"]
    print(
        f"[cdmpp] served {answered} queries: {stats['queries']} kernel lookups, "
        f"{stats['predictions_computed']} predictor rows in {stats['batches']} batches, "
        f"cache hit rate {cache['hit_rate'] * 100:.0f}%"
    )
    return 0


def _cmd_daemon(args) -> int:
    try:
        specs = _parse_device_list(args.devices)
        models = _fleet_models(args, specs, train_missing=args.train_missing)
        config = DaemonConfig(
            host=args.host,
            port=args.port,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            queue_limit=args.queue_limit,
            default_deadline_ms=args.default_deadline_ms,
            seed=args.seed,
            compose=args.compose,
            tier=args.tier,
        )
        # Registry-backed daemons persist tune-op search results in the
        # registry's search cache (and tie them to checkpoint names for
        # eviction); an explicit --checkpoint has no registry identity.
        registry = model_names = None
        if not getattr(args, "checkpoint", None):
            backend = resolve_backend_name(getattr(args, "backend", None) or "cdmpp")
            registry = ModelRegistry(args.registry)
            model_names = {
                spec.name: _registry_name(spec.name, args.scale, backend) for spec in specs
            }
        # Registered distilled students join as the fast tier; they are
        # mandatory only when the daemon's *default* tier is fast (clients
        # asking tier=fast for a student-less device get bad_request).
        fast_models = _fleet_fast_models(args, specs, required=args.tier == "fast")
        daemon = ServingDaemon(
            models,
            config,
            registry=registry,
            model_names=model_names,
            fast_models=fast_models,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    daemon.install_signal_handlers()
    try:
        daemon.start()
    except OSError as error:
        print(f"error: cannot bind {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    host, port = daemon.address
    # flush=True so a parent process piping stdout sees the (possibly
    # OS-assigned) port before the daemon blocks in serve_forever().
    print(
        f"[cdmpp] daemon serving {', '.join(daemon.devices)} listening on {host}:{port}",
        flush=True,
    )
    print(
        f"[cdmpp] query with: cdmpp client --host {host} --port {port}  "
        "(SIGTERM drains queued work and exits)",
        flush=True,
    )
    daemon.serve_forever()
    print("[cdmpp] daemon drained and stopped")
    return 0


def _print_client_ranking(results: List[dict]) -> None:
    """Ranked per-device answers of one fanout (dicts off the wire)."""
    fastest = results[0]["latency_s"] if results else 0.0
    for rank, result in enumerate(results, start=1):
        relative = result["latency_s"] / fastest if fastest > 0 else 1.0
        print(
            f"[cdmpp]   {rank}. {result['device']:12s} "
            f"{result['latency_s'] * 1e3:9.3f} ms  "
            f"({relative:4.2f}x, serial {result['serial_latency_s'] * 1e3:.3f} ms, "
            f"{result['num_nodes']} ops / {result['num_unique_kernels']} kernels)"
        )


def _cmd_client(args, stream: Optional[TextIO] = None) -> int:
    try:
        client = DaemonClient(args.host, args.port, timeout_s=args.timeout_s)
    except OSError as error:
        print(
            f"error: cannot connect to daemon at {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return 2
    try:
        if args.health or args.stats:
            payload = client.health() if args.health else client.stats()
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        resolved = _open_requests(args, stream)
        if resolved is None:
            return 2
        stream, opened = resolved
        answered = 0
        try:
            for line in stream:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                try:
                    network = parts[0]
                    batch_size, target = 1, None
                    for token in parts[1:]:
                        if token.isdigit():
                            batch_size = int(token)
                        else:
                            target = token
                    if target is not None and target not in ("all", "*"):
                        result = client.query(
                            network,
                            device=target,
                            batch_size=batch_size,
                            deadline_ms=args.deadline_ms,
                            tier=args.tier,
                        )
                        results = [result]
                    else:
                        results = client.predict_model(
                            network,
                            batch_size=batch_size,
                            deadline_ms=args.deadline_ms,
                            tier=args.tier,
                        )
                except DaemonRequestError as error:
                    print(f"error: query {line!r} failed: {error}", file=sys.stderr)
                    continue
                answered += 1
                shown = results[0]["network"] if results else network
                print(f"[cdmpp] {shown} batch={batch_size}:")
                _print_client_ranking(results)
        finally:
            if opened is not None:
                opened.close()
        print(f"[cdmpp] {answered} queries answered by {args.host}:{args.port}")
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        client.close()


def _cmd_list(args) -> int:
    registry = ModelRegistry(args.registry)
    print("networks:  " + ", ".join(list_models()))
    print("devices:   " + ", ".join(all_device_names()))
    print("scales:    " + ", ".join(available_scales()))
    checkpoints = registry.list()
    print(f"registry:  {registry.root}")
    print("models:    " + (", ".join(checkpoints) if checkpoints else "<none registered>"))
    return 0


def _run_legacy(argv: List[str]) -> int:
    """The original one-shot form: train at --scale, then answer the query."""
    args = build_parser().parse_args(argv)
    try:
        device = get_device(args.device)
        model = build_model(args.network, batch_size=args.batch_size)
    except Exception as error:  # argparse-style error reporting
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(f"[cdmpp] training a {args.scale}-scale cost model on device {device.name} ...")
    trainer = _train_trainer(device.name, args.scale, args.seed)
    service = PredictionService(trainer)
    prediction = service.predict_model(model, device, batch_size=args.batch_size, seed=args.seed)
    ground_truth = measure_end_to_end(model, device, seed=args.seed)
    _print_query_report(prediction, ground_truth, args.batch_size, device, DEFAULT_TIER)
    return 0


# ----------------------------------------------------------------------
# CLI reference rendering (docs/cli.md)
# ----------------------------------------------------------------------
def _iter_cli_parsers() -> List[Tuple[str, argparse.ArgumentParser]]:
    """Every documented parser: the subcommands plus the legacy form."""
    parser = build_cli_parser()
    parsers: List[Tuple[str, argparse.ArgumentParser]] = []
    for action in parser._actions:  # noqa: SLF001 - argparse has no public walk API
        if isinstance(action, argparse._SubParsersAction):
            for name, sub_parser in action.choices.items():
                parsers.append((f"cdmpp {name}", sub_parser))
    parsers.append(("cdmpp <network> <batch_size> <device> (legacy form)", build_parser()))
    return parsers


def _render_parser_section(title: str, parser: argparse.ArgumentParser) -> List[str]:
    lines = [f"## `{title}`", ""]
    if parser.description:
        lines += [parser.description.strip(), ""]
    lines += ["```text", parser.format_usage().strip(), "```", ""]
    rows = []
    for action in parser._actions:  # noqa: SLF001
        if isinstance(action, (argparse._HelpAction, argparse._SubParsersAction)):
            continue
        if action.option_strings:
            name = ", ".join(f"`{option}`" for option in action.option_strings)
            if action.choices:
                name += " " + "\\|".join(str(choice) for choice in action.choices)
        else:
            name = f"`{action.metavar or action.dest}`"
        default = ""
        if not (action.default is None or action.default is False or action.default is argparse.SUPPRESS):
            default = f"`{action.default}`"
        help_text = (action.help or "").replace("|", "\\|")
        rows.append(f"| {name} | {default} | {help_text} |")
    if rows:
        lines += ["| argument | default | description |", "|---|---|---|", *rows, ""]
    if parser.epilog:
        lines += ["```text", parser.epilog.strip(), "```", ""]
    return lines


def render_cli_docs() -> str:
    """Render ``docs/cli.md`` from the live argparse tree.

    Regenerated by ``tools/gen_cli_docs.py``; a width of 96 columns is pinned
    so usage strings do not depend on the invoking terminal.
    """
    previous_columns = os.environ.get("COLUMNS")
    os.environ["COLUMNS"] = "96"
    try:
        root = build_cli_parser()
        lines = [
            "# `cdmpp` command-line reference",
            "",
            "<!-- Generated from the argparse tree by tools/gen_cli_docs.py;",
            "     do not edit by hand. Regenerate with:",
            "     PYTHONPATH=src python tools/gen_cli_docs.py -->",
            "",
            (root.description or "").strip(),
            "",
            "```text",
            root.format_usage().strip(),
            "```",
            "",
            "Checkpoints live in a model registry directory: `--registry`, else",
            "`$CDMPP_REGISTRY`, else `~/.cache/cdmpp/models`. Training commands",
            "register checkpoints as `<device>-<scale>`; serving commands load",
            "them by that name.",
            "",
        ]
        for title, parser in _iter_cli_parsers():
            lines.extend(_render_parser_section(title, parser))
        return "\n".join(lines).rstrip() + "\n"
    finally:
        if previous_columns is None:
            os.environ.pop("COLUMNS", None)
        else:
            os.environ["COLUMNS"] = previous_columns


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``cdmpp`` command."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if not argv or argv[0] in ("-h", "--help"):
        build_cli_parser().print_help()
        return 0 if argv else 2
    if argv[0] in SUBCOMMANDS:
        args = build_cli_parser().parse_args(argv)
        handler = {
            "train": _cmd_train,
            "query": _cmd_query,
            "predict-model": _cmd_predict_model,
            "tune": _cmd_tune,
            "compare": _cmd_compare,
            "onboard": _cmd_onboard,
            "serve": _cmd_serve,
            "fleet": _cmd_fleet,
            "daemon": _cmd_daemon,
            "client": _cmd_client,
            "list": _cmd_list,
        }[args.command]
        try:
            return handler(args)
        except ReproError as error:  # e.g. a missing --checkpoint path
            print(f"error: {error}", file=sys.stderr)
            return 2
    return _run_legacy(argv)


if __name__ == "__main__":
    sys.exit(main())
