#!/usr/bin/env python
"""Train once, persist the cost model, and answer many queries later.

Production use of a learned cost model rarely retrains per query: a model is
trained once per device (or device pool), saved, and then loaded by DL
compiler passes, placement searchers or capacity planners whenever they need
a latency estimate.  This example trains a small CDMPP model, saves it to
disk with :func:`repro.core.persistence.save_trainer`, reloads it in a fresh
object and answers a batch of queries for several networks.

Run with:  python examples/train_once_query_many.py [--model-path /tmp/cdmpp_t4.npz]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.core.persistence import load_trainer, save_trainer
from repro.core.scale import get_scale
from repro.core.trainer import Trainer
from repro.dataset.splits import split_dataset
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.features.pipeline import featurize_programs, featurize_records
from repro.graph.zoo import build_model
from repro.replay.e2e import measure_end_to_end, predict_end_to_end

QUERIES = ("bert_tiny", "mobilenet_v2", "lstm_lm")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--device", default="t4")
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--model-path", default="/tmp/cdmpp_model.npz")
    args = parser.parse_args()
    scale = get_scale(args.scale)
    model_path = Path(args.model_path)

    if model_path.exists():
        print(f"[1/3] loading an existing cost model from {model_path} ...")
        trainer = load_trainer(model_path)
    else:
        print(f"[1/3] training a {scale.name}-scale cost model for {args.device} ...")
        dataset = generate_dataset(
            DatasetConfig(devices=(args.device,), seed=0, **scale.dataset_kwargs())
        )
        splits = split_dataset(dataset.records(args.device), seed=0)
        trainer = Trainer(predictor_config=scale.predictor_config(),
                          config=scale.training_config())
        train_fs = featurize_records(splits.train)
        trainer.fit(train_fs, featurize_records(splits.valid, max_leaves=train_fs.max_leaves))
        save_trainer(trainer, model_path)
        print(f"      saved to {model_path} ({model_path.stat().st_size / 1024:.0f} KiB)")

    print("[2/3] answering end-to-end queries with the loaded model ...")

    def cost_fn(programs):
        features = featurize_programs(programs, args.device,
                                      max_leaves=trainer.predictor.config.max_leaves)
        return dict(zip(features.task_keys, trainer.predict(features)))

    print(f"  {'network':14s} {'predicted':>12s} {'simulated':>12s} {'error':>8s}")
    for network in QUERIES:
        graph = build_model(network)
        predicted = predict_end_to_end(graph, args.device, cost_fn, seed=0).iteration_time_s
        simulated = measure_end_to_end(graph, args.device, seed=0).iteration_time_s
        error = abs(predicted - simulated) / simulated
        print(f"  {network:14s} {predicted * 1e3:9.3f} ms {simulated * 1e3:9.3f} ms {error * 100:7.1f}%")

    print(f"[3/3] done; delete {model_path} to retrain from scratch next time")


if __name__ == "__main__":
    main()
