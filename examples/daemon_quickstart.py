#!/usr/bin/env python
"""Quickstart for the daemon tier: concurrent serving over TCP.

Trains one tiny cost model per device on the first run and registers both;
every later run loads the checkpoints and goes straight to serving.  A
ServingDaemon then serves the two-device fleet on an ephemeral local port
while several concurrent clients query it — requests coalesce in the
per-device micro-batching window — and every wire answer is checked
bit-identical against a direct in-process FleetService call.  Finally the
daemon drains gracefully and the run prints what the batcher did.

Run with:  PYTHONPATH=src python examples/daemon_quickstart.py [--registry DIR]
"""

from __future__ import annotations

import argparse
import threading
import time

from repro.core.scale import get_scale
from repro.core.trainer import Trainer
from repro.dataset.splits import split_dataset
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.features.pipeline import featurize_records
from repro.serving import (
    DaemonClient,
    DaemonConfig,
    FleetService,
    ModelRegistry,
    ServingDaemon,
)

DEVICES = ("t4", "k80")
NETWORKS = ("bert_tiny", "mobilenet_v2", "resnet50")
NUM_CLIENTS = 4


def train_or_load(registry: ModelRegistry, device: str) -> str:
    """Ensure a '<device>-tiny' checkpoint exists; returns its registry name."""
    name = f"{device}-tiny"
    if registry.exists(name):
        print(f"[1/4] loading {name!r} from {registry.root}")
        return name
    print(f"[1/4] training a tiny-scale cost model for {device} (first run only) ...")
    scale = get_scale("tiny")
    dataset = generate_dataset(DatasetConfig(devices=(device,), seed=0, **scale.dataset_kwargs()))
    splits = split_dataset(dataset.records(device), seed=0)
    trainer = Trainer(predictor_config=scale.predictor_config(), config=scale.training_config())
    max_leaves = scale.predictor_config().max_leaves
    trainer.fit(
        featurize_records(splits.train, max_leaves=max_leaves),
        featurize_records(splits.valid, max_leaves=max_leaves),
    )
    path = registry.save(name, trainer, device=device, scale="tiny")
    print(f"      registered at {path}")
    return name


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--registry", default=None, help="registry dir (default: ~/.cache/cdmpp/models)")
    args = parser.parse_args()

    registry = ModelRegistry(args.registry)
    names = {device: train_or_load(registry, device) for device in DEVICES}

    # Reference answers from the in-process tier the daemon wraps.
    fleet = FleetService.from_registry(registry, names)
    reference = {
        (network, device): fleet.predict_model(network, device=device, seed=0).predicted_latency_s
        for network in NETWORKS
        for device in DEVICES
    }

    daemon = ServingDaemon.from_registry(registry, names, config=DaemonConfig(port=0))
    with daemon:
        host, port = daemon.address
        print(f"[2/4] daemon serving {', '.join(daemon.devices)} on {host}:{port}")

        answers, errors = [], []
        lock = threading.Lock()

        def client_thread(client_id: int) -> None:
            try:
                with DaemonClient(host, port) as client:
                    for network in NETWORKS:
                        device = DEVICES[client_id % len(DEVICES)]
                        served = client.query(network, device=device, seed=0, deadline_ms=5000)
                        with lock:
                            answers.append(((network, device), served["latency_s"]))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        print(f"[3/4] {NUM_CLIENTS} concurrent clients querying {len(NETWORKS)} networks each ...")
        start = time.perf_counter()
        threads = [threading.Thread(target=client_thread, args=(i,)) for i in range(NUM_CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        assert not errors, errors
        for key, latency_s in answers:
            assert latency_s == reference[key], (key, latency_s, reference[key])
        print(f"      {len(answers)} wire answers in {elapsed * 1e3:.1f} ms — "
              f"all bit-identical to in-process FleetService calls")

        with DaemonClient(host, port) as client:
            stats = client.stats()["daemon"]
        print(f"      {stats['queries']} queries coalesced into {stats['batches']} "
              f"batch(es); rejected={stats['rejected_overloaded']}, "
              f"shed={stats['shed_deadline']}")
    print("[4/4] daemon drained and stopped")


if __name__ == "__main__":
    main()
