#!/usr/bin/env python
"""Device selection: estimate a model's latency on a fleet of devices.

One of the motivating applications in the paper's introduction: before
renting or buying hardware, estimate how fast a given DNN would run on each
candidate device and pick the one that meets the latency budget at the lowest
cost.  This example trains one cross-device CDMPP cost model on two source
GPUs and then ranks every device in the registry for a chosen network --
without "profiling" the network on any of the other devices.

Run with:  python examples/device_selection.py [--network resnet50]
"""

from __future__ import annotations

import argparse

from repro.core.config import TrainingConfig
from repro.core.scale import get_scale
from repro.core.trainer import Trainer
from repro.dataset.splits import split_dataset
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.devices.spec import list_devices
from repro.features.pipeline import featurize_programs, featurize_records
from repro.graph.zoo import build_model
from repro.replay.e2e import measure_end_to_end, predict_end_to_end

# Rough on-demand hourly prices (USD) used to illustrate cost-aware selection.
HOURLY_PRICE = {
    "k80": 0.45, "p100": 1.46, "t4": 0.53, "v100": 2.48, "a100": 3.67,
    "hl100": 1.20, "e5-2673": 0.10, "epyc-7452": 0.23, "graviton2": 0.15,
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--network", default="mobilenet_v2", help="network to place")
    parser.add_argument("--scale", default="tiny", help="experiment scale")
    args = parser.parse_args()
    scale = get_scale(args.scale)

    # Train one cross-device cost model on two source GPUs.  The device
    # features let the same model produce estimates for unseen devices.
    source_devices = ("t4", "k80")
    print(f"[1/3] training a cross-device cost model on {source_devices} ...")
    dataset = generate_dataset(
        DatasetConfig(devices=source_devices, seed=0, **scale.dataset_kwargs())
    )
    records = [r for device in source_devices for r in dataset.records(device)]
    splits = split_dataset(records, seed=0)
    trainer = Trainer(predictor_config=scale.predictor_config(),
                      config=scale.training_config())
    trainer.fit(featurize_records(splits.train), featurize_records(splits.valid))

    # Predict the end-to-end latency of the network on every device.
    print(f"[2/3] ranking devices for {args.network} ...")
    model = build_model(args.network)
    rows = []
    for device in list_devices():
        def cost_fn(programs, device=device):
            features = featurize_programs(programs, device,
                                          max_leaves=trainer.predictor.config.max_leaves)
            return dict(zip(features.task_keys, trainer.predict(features)))

        predicted = predict_end_to_end(model, device, cost_fn, seed=0).iteration_time_s
        simulated = measure_end_to_end(model, device, seed=0).iteration_time_s
        price = HOURLY_PRICE[device.name]
        rows.append((device.name, device.taxonomy, predicted, simulated, price,
                     predicted * price / 3600.0))

    print(f"[3/3] results for {args.network} (sorted by predicted latency):")
    print(f"  {'device':12s} {'type':6s} {'predicted':>12s} {'simulated':>12s} "
          f"{'$/hour':>8s} {'$/1k runs':>10s}")
    for name, taxonomy, predicted, simulated, price, cost in sorted(rows, key=lambda r: r[2]):
        print(f"  {name:12s} {taxonomy:6s} {predicted * 1e3:9.3f} ms {simulated * 1e3:9.3f} ms "
              f"{price:8.2f} {cost * 1e3 * 1000:10.4f}")

    best_latency = min(rows, key=lambda r: r[2])
    best_value = min(rows, key=lambda r: r[5])
    print(f"\n  fastest device:        {best_latency[0]}")
    print(f"  cheapest per 1k runs:  {best_value[0]}")


if __name__ == "__main__":
    main()
