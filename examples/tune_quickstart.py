#!/usr/bin/env python
"""Quickstart for the search tier: tune a network through the SearchService.

Trains one tiny cost model on the first run and registers it; every later
run loads the checkpoint.  A SearchService then tunes bert_tiny on the T4:
the fresh search scores every round's candidate population as one batched
predict through the fleet tier, the immediate re-tune is a pure cache hit
(bit-identical results, zero new predictor calls), and re-registering the
checkpoint — a retrain — invalidates the cached tunings so the next tune
searches again.

Run with:  PYTHONPATH=src python examples/tune_quickstart.py [--registry DIR]
"""

from __future__ import annotations

import argparse

from repro.core.scale import get_scale
from repro.core.trainer import Trainer
from repro.dataset.splits import split_dataset
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.features.pipeline import featurize_records
from repro.serving import FleetService, ModelRegistry, SearchService

DEVICE = "t4"
NETWORK = "bert_tiny"
BUDGET = dict(num_rounds=3, population=8, measurements_per_round=2)


def train_or_load(registry: ModelRegistry, device: str) -> str:
    """Ensure a '<device>-tiny' checkpoint exists; returns its registry name."""
    name = f"{device}-tiny"
    if registry.exists(name):
        print(f"[1/4] loading {name!r} from {registry.root}")
        return name
    print(f"[1/4] training a tiny-scale cost model for {device} (first run only) ...")
    scale = get_scale("tiny")
    dataset = generate_dataset(DatasetConfig(devices=(device,), seed=0, **scale.dataset_kwargs()))
    splits = split_dataset(dataset.records(device), seed=0)
    trainer = Trainer(predictor_config=scale.predictor_config(), config=scale.training_config())
    max_leaves = scale.predictor_config().max_leaves
    trainer.fit(
        featurize_records(splits.train, max_leaves=max_leaves),
        featurize_records(splits.valid, max_leaves=max_leaves),
    )
    path = registry.save(name, trainer, device=device, scale="tiny")
    print(f"      registered at {path}")
    return name


def describe(label: str, tuning, search: SearchService, fleet: FleetService) -> None:
    kernel = fleet.describe_stats()["kernel_service"]
    print(
        f"      {label}: {len(tuning.cached_tasks)} cached / "
        f"{len(tuning.fresh_tasks)} fresh task(s), tuned latency "
        f"{tuning.tuned_latency_s * 1e3:.3f} ms "
        f"({search.stats.programs_scored} candidates scored in "
        f"{kernel['batches']} batched predictor calls so far)"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--registry", default=None, help="registry dir (default: ~/.cache/cdmpp/models)")
    args = parser.parse_args()

    registry = ModelRegistry(args.registry)
    name = train_or_load(registry, DEVICE)

    fleet = FleetService.from_registry(registry, name, devices=[DEVICE])
    search = SearchService(fleet, registry=registry, model_names={DEVICE: name})

    print(f"[2/4] tuning {NETWORK} on {DEVICE} (fresh search) ...")
    (first,) = search.tune_model(NETWORK, devices=[DEVICE], seed=0, **BUDGET)
    describe("fresh", first, search, fleet)

    print("[3/4] re-tuning the unchanged model (cache hit) ...")
    (second,) = search.tune_model(NETWORK, devices=[DEVICE], seed=0, **BUDGET)
    describe("cached", second, search, fleet)
    assert second.fully_cached and second.results == first.results
    print("      re-tune is bit-identical with zero new searches")

    print("[4/4] re-registering the checkpoint invalidates the cached tunings ...")
    registry.save(name, registry.load(name), device=DEVICE, scale="tiny")
    (third,) = search.tune_model(NETWORK, devices=[DEVICE], seed=0, **BUDGET)
    describe("after retrain", third, search, fleet)
    assert not third.cached_tasks, "retrain must force a fresh search"
    print(f"      search stats: {search.stats}")


if __name__ == "__main__":
    main()
