#!/usr/bin/env python
"""Quickstart for the serving layer: registry + batched, cached queries.

Trains a tiny cost model on the first run and registers it; every later run
loads the checkpoint and goes straight to serving.  A PredictionService then
answers a tuner-shaped stream of repeated program queries and a few
whole-model queries, and prints what the caches and batcher did.

Run with:  PYTHONPATH=src python examples/serving_quickstart.py [--registry DIR]
"""

from __future__ import annotations

import argparse
import time

from repro.core.scale import get_scale
from repro.core.trainer import Trainer
from repro.dataset.splits import split_dataset
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.features.pipeline import featurize_records
from repro.serving import ModelRegistry, PredictionService

DEVICE = "t4"
MODEL_NAME = f"{DEVICE}-tiny"
NETWORKS = ("bert_tiny", "mobilenet_v2")
ROUNDS = 5


def train_or_load(registry: ModelRegistry) -> Trainer:
    if registry.exists(MODEL_NAME):
        print(f"[1/3] loading {MODEL_NAME!r} from {registry.root}")
        return registry.load(MODEL_NAME)
    print(f"[1/3] training a tiny-scale cost model for {DEVICE} (first run only) ...")
    scale = get_scale("tiny")
    dataset = generate_dataset(DatasetConfig(devices=(DEVICE,), seed=0, **scale.dataset_kwargs()))
    splits = split_dataset(dataset.records(DEVICE), seed=0)
    trainer = Trainer(predictor_config=scale.predictor_config(), config=scale.training_config())
    max_leaves = scale.predictor_config().max_leaves
    trainer.fit(
        featurize_records(splits.train, max_leaves=max_leaves),
        featurize_records(splits.valid, max_leaves=max_leaves),
    )
    path = registry.save(MODEL_NAME, trainer, device=DEVICE, scale="tiny")
    print(f"      registered at {path}")
    return trainer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--registry", default=None, help="registry dir (default: ~/.cache/cdmpp/models)")
    args = parser.parse_args()

    registry = ModelRegistry(args.registry)
    trainer = train_or_load(registry)
    service = PredictionService(trainer)

    # A tuner-shaped workload: the same kernels queried over several rounds.
    scale = get_scale("tiny")
    dataset = generate_dataset(DatasetConfig(devices=(DEVICE,), seed=1, **scale.dataset_kwargs()))
    programs = [record.program for record in dataset.records(DEVICE)[:32]]

    print(f"[2/3] serving {ROUNDS} rounds of {len(programs)} kernel queries ...")
    start = time.perf_counter()
    for round_index in range(ROUNDS):
        latencies = service.predict(programs, DEVICE)
    elapsed = time.perf_counter() - start
    total = ROUNDS * len(programs)
    print(f"      {total} queries in {elapsed * 1e3:.1f} ms "
          f"({total / elapsed:,.0f} queries/s); fastest kernel {latencies.min() * 1e6:.1f} us")

    print("[3/3] whole-model queries through the same cached service ...")
    for network in NETWORKS:
        prediction = service.predict_model(network, DEVICE, seed=0)
        print(f"      {network:14s} -> {prediction.predicted_latency_s * 1e3:8.3f} ms "
              f"({prediction.num_nodes} ops)")

    stats = service.describe_stats()
    print(f"\nservice stats: {stats['queries']} queries, {stats['batches']} predictor batches, "
          f"{stats['programs_featurized']} programs featurized once")
    print(f"prediction cache: {stats['prediction_cache']['hits']} hits / "
          f"{stats['prediction_cache']['misses']} misses "
          f"(hit rate {stats['prediction_cache']['hit_rate'] * 100:.0f}%)")


if __name__ == "__main__":
    main()
