#!/usr/bin/env python
"""Quickstart for the fleet tier: ranked whole-model latency across devices.

Trains one tiny cost model per device on the first run and registers both;
every later run loads the checkpoints and goes straight to serving.  A
FleetService then answers "which of my devices runs this network fastest?"
for a few zoo networks — partitioning each model into kernels once, batching
every device's kernel queries into one predictor pass, and composing ranked
end-to-end estimates — and prints what the batcher and caches did.

Run with:  PYTHONPATH=src python examples/fleet_quickstart.py [--registry DIR]
"""

from __future__ import annotations

import argparse
import time

from repro.core.scale import get_scale
from repro.core.trainer import Trainer
from repro.dataset.splits import split_dataset
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.features.pipeline import featurize_records
from repro.serving import FleetService, ModelRegistry

DEVICES = ("t4", "k80")
NETWORKS = ("bert_tiny", "mobilenet_v2", "resnet50")
ROUNDS = 3


def train_or_load(registry: ModelRegistry, device: str) -> str:
    """Ensure a '<device>-tiny' checkpoint exists; returns its registry name."""
    name = f"{device}-tiny"
    if registry.exists(name):
        print(f"[1/3] loading {name!r} from {registry.root}")
        return name
    print(f"[1/3] training a tiny-scale cost model for {device} (first run only) ...")
    scale = get_scale("tiny")
    dataset = generate_dataset(DatasetConfig(devices=(device,), seed=0, **scale.dataset_kwargs()))
    splits = split_dataset(dataset.records(device), seed=0)
    trainer = Trainer(predictor_config=scale.predictor_config(), config=scale.training_config())
    max_leaves = scale.predictor_config().max_leaves
    trainer.fit(
        featurize_records(splits.train, max_leaves=max_leaves),
        featurize_records(splits.valid, max_leaves=max_leaves),
    )
    path = registry.save(name, trainer, device=device, scale="tiny")
    print(f"      registered at {path}")
    return name


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--registry", default=None, help="registry dir (default: ~/.cache/cdmpp/models)")
    args = parser.parse_args()

    registry = ModelRegistry(args.registry)
    names = {device: train_or_load(registry, device) for device in DEVICES}
    fleet = FleetService.from_registry(registry, names)

    print(f"[2/3] ranking {len(NETWORKS)} networks across {', '.join(DEVICES)} ...")
    start = time.perf_counter()
    for round_index in range(ROUNDS):  # later rounds are answered from the caches
        for network in NETWORKS:
            results = fleet.predict_model_fleet(network, seed=0)
            if round_index == 0:
                ranked = ", ".join(
                    f"{p.device} {p.predicted_latency_s * 1e3:.3f} ms" for p in results
                )
                print(f"      {network:14s} -> {ranked}")
    elapsed = time.perf_counter() - start
    total = ROUNDS * len(NETWORKS) * len(DEVICES)
    print(f"      {total} device answers in {elapsed * 1e3:.1f} ms "
          f"({total / elapsed:,.0f} answers/s)")

    print("[3/3] what the fleet did under the hood ...")
    stats = fleet.describe_stats()
    kernel = stats["kernel_service"]
    print(f"      partitions: {stats['partitions']} "
          f"(+{stats['partition_cache_hits']} reused from the DFG cache)")
    print(f"      kernel queries: {kernel['queries']} answered in "
          f"{kernel['batches']} batched predictor call(s)")
    cache = kernel["prediction_cache"]
    print(f"      prediction cache: {cache['hits']} hits / {cache['misses']} misses "
          f"(hit rate {cache['hit_rate'] * 100:.0f}%) across shards "
          f"{', '.join(cache['devices'])}")


if __name__ == "__main__":
    main()
