#!/usr/bin/env python
"""Quickstart: train a CDMPP cost model and query tensor-program latencies.

This walks through the full public API in a couple of minutes on a laptop:

1. generate a small Tenset-like dataset on the simulated T4,
2. pre-train the CDMPP predictor,
3. query the latency of individual tensor programs,
4. predict the end-to-end latency of a whole network via the replayer,
   and compare it with the simulator's ground truth.

Run with:  python examples/quickstart.py [--scale tiny|small]
"""

from __future__ import annotations

import argparse

from repro.core.api import CDMPP
from repro.core.scale import get_scale
from repro.dataset.splits import split_dataset
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.ops import conv2d, dense
from repro.replay.e2e import measure_end_to_end
from repro.tir.lower import lower
from repro.tir.schedule import Schedule


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", help="experiment scale (tiny/small/medium)")
    parser.add_argument("--device", default="t4", help="simulated device to train for")
    args = parser.parse_args()
    scale = get_scale(args.scale)

    # ------------------------------------------------------------------
    # 1. Dataset: tasks from the model zoo + synthetic models, several random
    #    schedules per task, measured on the simulated device.
    # ------------------------------------------------------------------
    print(f"[1/4] generating a {scale.name}-scale dataset on {args.device} ...")
    dataset = generate_dataset(
        DatasetConfig(devices=(args.device,), seed=0, **scale.dataset_kwargs())
    )
    splits = split_dataset(dataset.records(args.device), seed=0)
    print(f"      {dataset.num_records(args.device)} records, "
          f"{len(dataset.tasks())} unique tasks, splits={splits.sizes}")

    # ------------------------------------------------------------------
    # 2. Pre-train the predictor (Box-Cox labels, hybrid MSE+MAPE loss).
    # ------------------------------------------------------------------
    print("[2/4] pre-training the CDMPP predictor ...")
    cdmpp = CDMPP(
        predictor_config=scale.predictor_config(),
        training_config=scale.training_config(),
    )
    result = cdmpp.pretrain(splits.train, splits.valid)
    print(f"      {len(result.history)} epochs, "
          f"{result.throughput_samples_per_s:.0f} samples/s, "
          f"best valid MAPE {result.best_valid_mape:.3f}")

    # ------------------------------------------------------------------
    # 3. Query individual tensor programs: a hand-scheduled conv and dense.
    # ------------------------------------------------------------------
    print("[3/4] querying tensor-program latencies ...")
    conv_task = conv2d(1, 64, 64, 28, 28, kernel=3, model="quickstart")
    conv_schedule = (
        Schedule().split("oc", [16]).annotate("oc.0", "parallel").annotate("ow", "vectorize")
    )
    conv_program = lower(conv_task, conv_schedule)
    dense_program = lower(dense(8, 512, 512, model="quickstart"))
    for program in (conv_program, dense_program):
        latency = cdmpp.predict_program(program, args.device)
        print(f"      {program.task.op_type:8s}: predicted {latency * 1e6:9.1f} us "
              f"({program.stats.total_flops / 1e6:.1f} MFLOPs)")

    # ------------------------------------------------------------------
    # 4. End-to-end latency of a whole network through the replayer.
    # ------------------------------------------------------------------
    print("[4/4] predicting end-to-end latency of BERT-tiny ...")
    prediction = cdmpp.predict_model("bert_tiny", args.device, batch_size=1)
    truth = measure_end_to_end("bert_tiny", args.device, seed=0)
    error = abs(prediction.predicted_latency_s - truth.iteration_time_s) / truth.iteration_time_s
    print(f"      predicted {prediction.predicted_latency_s * 1e3:.3f} ms "
          f"vs simulated {truth.iteration_time_s * 1e3:.3f} ms "
          f"({error * 100:.1f}% error, {prediction.num_nodes} operators)")


if __name__ == "__main__":
    main()
