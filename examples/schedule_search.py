#!/usr/bin/env python
"""Schedule search: use the cost model to auto-tune tensor programs.

Reproduces the Fig. 14b experiment: an Ansor-style evolutionary search samples
candidate schedules for each task of a network, the cost model scores them,
and only the top-scored candidates are measured on the (simulated) device.
A better cost model finds faster schedules within the same measurement budget.

Run with:  python examples/schedule_search.py [--network bert_tiny --device t4]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.scale import get_scale
from repro.core.trainer import Trainer
from repro.dataset.splits import split_dataset
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.features.pipeline import featurize_programs, featurize_records
from repro.graph.zoo import build_model
from repro.search.ansor import search_model_schedules


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--network", default="bert_tiny")
    parser.add_argument("--device", default="t4")
    parser.add_argument("--rounds", type=int, default=8)
    parser.add_argument("--scale", default="tiny")
    args = parser.parse_args()
    scale = get_scale(args.scale)

    print(f"[1/3] training a cost model for {args.device} ...")
    dataset = generate_dataset(
        DatasetConfig(devices=(args.device,), seed=0, **scale.dataset_kwargs())
    )
    splits = split_dataset(dataset.records(args.device), seed=0)
    trainer = Trainer(predictor_config=scale.predictor_config(), config=scale.training_config())
    train_fs = featurize_records(splits.train)
    trainer.fit(train_fs, featurize_records(splits.valid, max_leaves=train_fs.max_leaves))

    def cdmpp_scores(programs):
        features = featurize_programs(programs, args.device,
                                      max_leaves=trainer.predictor.config.max_leaves)
        return trainer.predict(features)

    def random_scores(programs):
        return np.random.default_rng(len(programs)).random(len(programs))

    print(f"[2/3] searching schedules for every task of {args.network} "
          f"({args.rounds} rounds x 12 candidates, 3 measured per round) ...")
    model = build_model(args.network)
    outcomes = {}
    for name, scorer in (("cdmpp", cdmpp_scores), ("random", random_scores)):
        per_task = search_model_schedules(
            model, args.device, scorer,
            num_rounds=args.rounds, population=12, measurements_per_round=3, seed=0,
        )
        series = [
            sum(task.best_latency_per_round[i] for task in per_task.values())
            for i in range(args.rounds)
        ]
        outcomes[name] = series

    print("[3/3] best-so-far total task latency per search round (ms):")
    header = "  round  " + "  ".join(f"{name:>10s}" for name in outcomes)
    print(header)
    for round_index in range(args.rounds):
        values = "  ".join(f"{outcomes[name][round_index] * 1e3:10.4f}" for name in outcomes)
        print(f"  {round_index + 1:5d}  {values}")

    cdmpp_final = outcomes["cdmpp"][-1]
    random_final = outcomes["random"][-1]
    print(f"\n  final tuned latency with CDMPP pruning : {cdmpp_final * 1e3:.4f} ms")
    print(f"  final tuned latency with random pruning: {random_final * 1e3:.4f} ms")
    if cdmpp_final <= random_final:
        print("  -> the learned cost model found schedules at least as good as random search")


if __name__ == "__main__":
    main()
