#!/usr/bin/env python
"""Onboard a new device into a live fleet without touching served weights.

The deployment scenario behind `repro.adaptation`:

1. pre-train CDMPP on a source GPU (T4) and register the checkpoint,
2. serve it to a fleet (the same shared model answers for every device),
3. a CPU (AMD EPYC) joins: select κ representative tasks on the pre-trained
   model's latents (Algorithm 1), profile only those on the EPYC, and
   CMD-regularize-finetune a *detached clone* (Eq. 7),
4. hot-swap the adapted model in with ``FleetService.onboard_device`` —
   only the EPYC's prediction-cache shard is invalidated, and the T4 keeps
   answering from bit-identical weights.

Run with:  python examples/onboard_device.py [--target epyc-7452]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.adaptation import OnboardingPipeline
from repro.core.config import TrainingConfig
from repro.core.scale import get_scale
from repro.core.trainer import Trainer
from repro.dataset.splits import split_dataset
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.features.pipeline import featurize_records
from repro.serving import FleetService


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--source", default="t4", help="device the fleet already serves")
    parser.add_argument("--target", default="epyc-7452", help="device to onboard")
    parser.add_argument("--num-tasks", type=int, default=8, help="κ, tasks to profile")
    parser.add_argument("--epochs", type=int, default=8, help="fine-tuning epochs")
    args = parser.parse_args()
    scale = get_scale("tiny")

    print(f"[1/4] generating the dataset ({args.source} + {args.target}) ...")
    dataset = generate_dataset(
        DatasetConfig(devices=(args.source, args.target), seed=0, **scale.dataset_kwargs())
    )
    source_splits = split_dataset(dataset.records(args.source), seed=0)
    target_splits = split_dataset(dataset.records(args.target), seed=0)

    print(f"[2/4] pre-training on {args.source} ...")
    trainer = Trainer(
        predictor_config=scale.predictor_config(),
        config=TrainingConfig(epochs=20, batch_size=scale.batch_size, seed=0),
    )
    source_train = featurize_records(source_splits.train, max_leaves=trainer.max_leaves)
    trainer.fit(source_train, featurize_records(source_splits.valid, max_leaves=trainer.max_leaves))
    target_test = featurize_records(target_splits.test, max_leaves=trainer.max_leaves)

    # The fleet initially serves *both* devices from the one shared model.
    fleet = FleetService({args.source: trainer, args.target: trainer})
    served_before = fleet.predict_model("bert_tiny", args.source)
    weights_before = {k: v.copy() for k, v in trainer.predictor.state_dict().items()}

    print(f"[3/4] onboarding {args.target}: select κ={args.num_tasks} tasks, "
          "profile, fine-tune a clone ...")
    pipeline = OnboardingPipeline(trainer, source_train, seed=0)
    result = pipeline.onboard(
        args.target,
        dataset.tasks(),
        num_tasks=args.num_tasks,
        epochs=args.epochs,
        patience=None,
        target_test=target_test,
    )
    print(f"      profiled {result.profiled_records} records on {len(result.selected_tasks)} "
          f"tasks in {result.profiling_seconds:.2f}s")
    print(f"      MAPE on {args.target}: {result.zero_shot['mape'] * 100:.1f}% zero-shot "
          f"-> {result.adapted['mape'] * 100:.1f}% adapted")
    print(f"      latent CMD: {result.cmd_before:.4f} -> {result.cmd_after:.4f}")

    print(f"[4/4] hot-swapping the adapted model into the fleet ...")
    fleet.onboard_device(args.target, result)

    weights_after = trainer.predictor.state_dict()
    assert all(np.array_equal(weights_before[k], weights_after[k]) for k in weights_before), (
        "the served parent model must stay bit-identical through onboarding"
    )
    served_after = fleet.predict_model("bert_tiny", args.source)
    assert served_after.predicted_latency_s == served_before.predicted_latency_s
    print(f"      {args.source} still answers bit-identically "
          f"({served_after.predicted_latency_s * 1e3:.3f} ms); "
          f"{args.target} now serves the adapted clone")
    for prediction in fleet.predict_model_fleet("bert_tiny"):
        print(f"        {prediction.device:12s} {prediction.predicted_latency_s * 1e3:9.3f} ms")


if __name__ == "__main__":
    main()
