#!/usr/bin/env python
"""Cross-device adaptation: port a GPU-trained cost model to a CPU.

Reproduces the paper's CDPP workflow end to end:

1. pre-train CDMPP on source GPUs (K80 + V100),
2. use the KMeans-based sampling strategy (Algorithm 1) to pick the κ most
   representative tasks to profile on the target device (AMD EPYC),
3. fine-tune with the CMD-regularized objective (Eq. 7) using the labeled
   representative tasks plus unlabeled target features,
4. compare prediction error on the target device before vs after adaptation,
   and against random task sampling.

Run with:  python examples/cross_device_adaptation.py [--target epyc-7452]
"""

from __future__ import annotations

import argparse

from repro.core.finetune import cross_device_adaptation
from repro.core.scale import get_scale
from repro.core.trainer import Trainer
from repro.dataset.splits import split_dataset
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.features.pipeline import featurize_records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--target", default="epyc-7452", help="target device to adapt to")
    parser.add_argument("--num-tasks", type=int, default=8, help="κ, tasks to profile on the target")
    parser.add_argument("--scale", default="tiny", help="experiment scale")
    args = parser.parse_args()
    scale = get_scale(args.scale)
    sources = ("k80", "v100")

    print(f"[1/4] generating the multi-device dataset ({sources} + {args.target}) ...")
    dataset = generate_dataset(
        DatasetConfig(devices=(*sources, args.target), seed=0, **scale.dataset_kwargs())
    )
    source_records = [r for device in sources for r in dataset.records(device)]
    source_splits = split_dataset(source_records, seed=0)
    target_splits = split_dataset(dataset.records(args.target), seed=0)

    print("[2/4] pre-training on the source GPUs ...")
    trainer = Trainer(predictor_config=scale.predictor_config(),
                      config=scale.training_config())
    source_train = featurize_records(source_splits.train)
    trainer.fit(source_train, featurize_records(source_splits.valid,
                                                max_leaves=source_train.max_leaves))
    target_test = featurize_records(target_splits.test, max_leaves=source_train.max_leaves)
    print(f"      error on {args.target} before adaptation: "
          f"{trainer.evaluate(target_test)['mape'] * 100:.1f}% MAPE")

    print(f"[3/4] adapting to {args.target} with KMeans task sampling (κ={args.num_tasks}) ...")
    # Each run fine-tunes a detached clone (CrossDeviceResult.adapted_trainer),
    # so the pre-trained model is reused as-is between strategies.
    results = {}
    for strategy in ("kmeans", "random"):
        outcome = cross_device_adaptation(
            trainer,
            source_train=source_train,
            target_records=target_splits.train,
            target_test=target_test,
            num_tasks=args.num_tasks,
            strategy=strategy,
            epochs=scale.finetune_epochs,
            seed=0,
        )
        results[strategy] = outcome
        print(f"      [{strategy:6s}] profiled tasks: {len(outcome.selected_tasks)}, "
              f"MAPE {outcome.metrics_before['mape'] * 100:.1f}% -> "
              f"{outcome.metrics_after['mape'] * 100:.1f}%, "
              f"latent CMD {outcome.cmd_before:.3f} -> {outcome.cmd_after:.3f}")

    print("[4/4] summary")
    kmeans, random_pick = results["kmeans"], results["random"]
    print(f"      KMeans sampling error: {kmeans.metrics_after['mape'] * 100:.1f}% MAPE")
    print(f"      random sampling error: {random_pick.metrics_after['mape'] * 100:.1f}% MAPE")
    print("      representative tasks selected by Algorithm 1:")
    for key in kmeans.selected_tasks[:8]:
        print(f"        - {key}")


if __name__ == "__main__":
    main()
