#!/usr/bin/env python
"""Compare every runnable cost-model backend on one device, Table-1 style.

The library-level analogue of ``cdmpp compare``: generate one dataset, train
each backend on the same train/valid split through the common
:class:`repro.backends.CostModel` protocol, then report each backend's
Table 1 capabilities, test accuracy and training throughput — the axes the
paper compares CDMPP against TLP, Habitat and AutoTVM's XGBoost on (Table 1,
Fig. 6).  Finally, the two best backends serve the same whole-model query
through one ``PredictionService`` each, showing that serving is
backend-agnostic too.

Run with:  PYTHONPATH=src python examples/compare_backends.py [--device t4]
"""

from __future__ import annotations

import argparse

from repro.backends import available_backends, make_backend
from repro.core.scale import get_scale
from repro.dataset.splits import split_dataset
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.errors import ReproError
from repro.serving import PredictionService

NETWORK = "bert_tiny"


def build_backend(name: str, device: str, scale, seed: int):
    if name == "cdmpp":
        return make_backend(
            "cdmpp",
            predictor_config=scale.predictor_config(),
            training_config=scale.training_config(seed=seed),
        )
    kwargs = {"seed": seed}
    if name == "habitat":
        kwargs["target_device"] = device
    return make_backend(name, **kwargs)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--device", default="t4", help="target device (default: t4)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args()

    scale = get_scale("tiny")
    print(f"[1/3] generating a tiny-scale dataset for {args.device} ...")
    dataset = generate_dataset(
        DatasetConfig(devices=(args.device,), seed=args.seed, **scale.dataset_kwargs())
    )
    splits = split_dataset(dataset.records(args.device), seed=args.seed)
    print(f"      {len(splits.train)} train / {len(splits.valid)} valid / "
          f"{len(splits.test)} test records")

    print(f"[2/3] training {len(available_backends())} backends on the same split ...")
    fitted = {}
    for name in available_backends():
        try:
            model = build_backend(name, args.device, scale, args.seed)
            stats = model.fit(splits.train, valid=splits.valid)
            metrics = model.evaluate(splits.test)
        except ReproError as error:
            print(f"      {name:9s} skipped ({error})")
            continue
        fitted[name] = (model, metrics, stats)
        caps = model.capabilities
        flags = "".join("y" if caps[key] else "." for key in
                        ("absolute_time", "model_level", "op_level", "cross_device"))
        print(f"      {name:9s} caps[abs/model/op/xdev]={flags}  "
              f"MAPE {metrics['mape'] * 100:6.1f}%  "
              f"{stats.train_seconds:6.2f}s  {stats.throughput_samples_per_s:8,.0f} samples/s")

    print(f"[3/3] serving {NETWORK!r} through the two most accurate model-level backends ...")
    model_level = {name: entry for name, entry in fitted.items()
                   if entry[0].capabilities["model_level"]}
    best = sorted(model_level, key=lambda name: model_level[name][1]["mape"])[:2]
    for name in best:
        service = PredictionService(fitted[name][0])
        prediction = service.predict_model(NETWORK, args.device, seed=args.seed)
        print(f"      {name:9s} -> {prediction.predicted_latency_s * 1e3:8.3f} ms "
              f"({prediction.num_nodes} ops)")


if __name__ == "__main__":
    main()
