"""Table 1: capability matrix of prior DNN performance predictors."""

from benchmarks.common import print_table, run_once
from repro.baselines.registry import BASELINE_CAPABILITIES


def test_table1_capability_matrix(benchmark):
    def experiment():
        rows = []
        for name, caps in BASELINE_CAPABILITIES.items():
            rows.append({"method": name, **{k: ("yes" if v else "no") for k, v in caps.items()}})
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Table 1: predictor capabilities",
        rows,
        ["method", "absolute_time", "model_level", "op_level", "cross_device"],
    )
    caps = BASELINE_CAPABILITIES
    # The paper's point: CDMPP is the only method with every capability.
    assert all(caps["cdmpp"].values())
    assert sum(all(c.values()) for c in caps.values()) == 1
    # Spot checks of Table 1 rows.
    assert not caps["autotvm_xgboost"]["absolute_time"]
    assert not caps["habitat"]["cross_device"]
    assert caps["nnlqp"]["cross_device"] and not caps["nnlqp"]["op_level"]
    assert caps["tlp"]["cross_device"] and not caps["tlp"]["absolute_time"]
