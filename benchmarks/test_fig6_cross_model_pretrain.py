"""Fig. 6: cross-model prediction error at the TIR level, per device.

The paper compares CDMPP against XGBoost and Tiramisu on each device (GPUs in
Fig. 6a, CPUs and the inference accelerator in Fig. 6b) and reports training
throughput.  The synthetic reproduction runs one GPU, one CPU and the
accelerator; the qualitative shape asserted is: CDMPP and XGBoost achieve a
usable error (far below Tiramisu), CDMPP stays within the paper's error
regime, and the training-throughput ordering XGBoost > CDMPP > Tiramisu holds.
"""

import pytest

from benchmarks.common import BENCH_SEED, print_table, run_once
from benchmarks.conftest import train_cdmpp
from repro.baselines import TiramisuCostModel, XGBoostCostModel
from repro.features.pipeline import featurize_records

DEVICES = ("t4", "epyc-7452", "hl100")


@pytest.fixture(scope="module")
def fig6_results(device_splits):
    results = []
    for device in DEVICES:
        splits = device_splits[device]
        trainer, train_result, _ = train_cdmpp(splits.train, splits.valid)
        test_fs = featurize_records(splits.test, max_leaves=trainer.predictor.config.max_leaves)
        cdmpp_metrics = trainer.evaluate(test_fs)

        xgb = XGBoostCostModel(n_estimators=50, max_depth=6, seed=BENCH_SEED)
        xgb.fit(splits.train)
        xgb_metrics = xgb.evaluate(splits.test)

        tiramisu = TiramisuCostModel(epochs=1, max_train_samples=150, seed=BENCH_SEED)
        tiramisu.fit(splits.train)
        tiramisu_metrics = tiramisu.evaluate(splits.test)

        results.append(
            {
                "device": device,
                "cdmpp_mape": cdmpp_metrics["mape"],
                "xgboost_mape": xgb_metrics["mape"],
                "tiramisu_mape": tiramisu_metrics["mape"],
                "cdmpp_throughput": train_result.throughput_samples_per_s,
                "xgboost_throughput": xgb.throughput_samples_per_s,
                "tiramisu_throughput": tiramisu.throughput_samples_per_s,
            }
        )
    return results


def test_fig6_tir_level_error_per_device(benchmark, fig6_results):
    rows = run_once(benchmark, lambda: fig6_results)
    print_table(
        "Fig. 6: cross-model TIR-level MAPE per device",
        rows,
        ["device", "cdmpp_mape", "xgboost_mape", "tiramisu_mape"],
    )
    for row in rows:
        # CDMPP reaches a usable error regime on every device and is far
        # better than the structure-batched recursive LSTM.
        assert row["cdmpp_mape"] < 0.6
        assert row["cdmpp_mape"] < row["tiramisu_mape"] / 1.5
        # Tiramisu degrades badly on absolute-latency prediction over a
        # skewed dataset (its reported failure mode in the paper).
        assert row["tiramisu_mape"] > 0.5


def test_fig6_training_throughput_ordering(benchmark, fig6_results):
    rows = run_once(benchmark, lambda: fig6_results)
    print_table(
        "Fig. 6: training throughput (samples/s)",
        rows,
        ["device", "xgboost_throughput", "cdmpp_throughput", "tiramisu_throughput"],
    )
    for row in rows:
        # The paper's ordering: XGBoost is fastest, CDMPP an order of
        # magnitude faster than Tiramisu's per-structure batching.
        assert row["xgboost_throughput"] > row["cdmpp_throughput"]
        assert row["cdmpp_throughput"] > 2 * row["tiramisu_throughput"]
