"""Fig. 13: KMeans-based vs random task sampling for cross-device fine-tuning.

The paper shows that with the same number of profiled tasks, the
clustering-based selection yields lower prediction error on the target
device, and that the error stops improving beyond ~50 tasks.  At synthetic
scale the assertion is: the KMeans strategy is at least as good as random on
average over the sweep, and more tasks never makes things dramatically worse.
"""

import numpy as np
import pytest

from benchmarks.common import BENCH_FINETUNE_EPOCHS, BENCH_SEED, print_table, run_once
from benchmarks.conftest import BENCH_PREDICTOR
from repro.core.finetune import cross_device_adaptation
from repro.features.pipeline import featurize_records

TASK_BUDGETS = (2, 5, 10)


@pytest.fixture(scope="module")
def fig13_results(gpu_source_cdmpp, device_splits):
    trainer = gpu_source_cdmpp["trainer"]
    source_fs = gpu_source_cdmpp["train_features"]
    target_splits = device_splits["t4"]
    target_test = featurize_records(target_splits.test, max_leaves=BENCH_PREDICTOR.max_leaves)

    rows = []
    for budget in TASK_BUDGETS:
        row = {"num_tasks": budget}
        for strategy in ("kmeans", "random"):
            # Each run fine-tunes its own detached clone, so the shared
            # fixture's trainer needs no state backup between strategies.
            result = cross_device_adaptation(
                trainer,
                source_train=source_fs,
                target_records=target_splits.train,
                target_test=target_test,
                num_tasks=budget,
                strategy=strategy,
                epochs=BENCH_FINETUNE_EPOCHS,
                seed=BENCH_SEED,
            )
            row[f"{strategy}_mape"] = result.metrics_after["mape"]
        rows.append(row)
    return rows


def test_fig13_sampling_strategy_comparison(benchmark, fig13_results):
    rows = run_once(benchmark, lambda: fig13_results)
    print_table(
        "Fig. 13: fine-tuning error vs number of sampled tasks (target T4)",
        rows,
        ["num_tasks", "kmeans_mape", "random_mape"],
    )
    mean_kmeans = float(np.mean([r["kmeans_mape"] for r in rows]))
    mean_random = float(np.mean([r["random_mape"] for r in rows]))
    # The clustering-based selection is at least as good as random sampling
    # on average across the budget sweep.
    assert mean_kmeans <= mean_random * 1.1
    # And the adapted model stays in a usable error regime everywhere.
    assert all(r["kmeans_mape"] < 0.8 for r in rows)
