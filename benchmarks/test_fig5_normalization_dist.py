"""Fig. 5: the latency distribution under different normalization methods.

The paper shows the raw latency distribution has a long tail and that the
Box-Cox transformation produces the most normal/symmetric distribution.
"""

import numpy as np

from benchmarks.common import print_table, run_once
from repro.analysis.distribution import normality_score, skewness
from repro.core.transforms import make_transform


def test_fig5_label_distribution_under_normalizations(benchmark, bench_dataset):
    latencies = bench_dataset.latencies("t4")

    def experiment():
        rows = []
        for name in ("none", "box-cox", "yeo-johnson", "quantile"):
            transform = make_transform(name)
            values = transform.fit_transform(latencies)
            rows.append(
                {
                    "normalization": name if name != "none" else "original Y",
                    "skewness": skewness(values),
                    "normality": normality_score(values),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("Fig. 5: latency distribution under normalization", rows,
                ["normalization", "skewness", "normality"])

    by_name = {row["normalization"]: row for row in rows}
    # The raw labels are heavily right-skewed.
    assert by_name["original Y"]["skewness"] > 2.0
    # Every power/quantile transform reduces the skew substantially ...
    for name in ("box-cox", "yeo-johnson", "quantile"):
        assert abs(by_name[name]["skewness"]) < abs(by_name["original Y"]["skewness"]) / 2
    # ... Box-Cox in particular yields a nearly symmetric distribution and is
    # far more Gaussian than the raw labels (the paper picks it).
    assert abs(by_name["box-cox"]["skewness"]) < 1.0
    assert by_name["box-cox"]["normality"] > 2 * by_name["original Y"]["normality"]
