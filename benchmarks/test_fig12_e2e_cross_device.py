"""Fig. 12: cross-device end-to-end model latency prediction.

A CDMPP predictor pre-trained on K80+V100 and fine-tuned to the target GPU
predicts end-to-end model latency on P100 and V100; Habitat's roofline
scaling is the baseline.  (TLP is excluded, as in the paper, because relative
scores cannot be accumulated into an end-to-end time.)
"""

import pytest

from benchmarks.common import BENCH_FINETUNE_EPOCHS, BENCH_SEED, print_table, run_once
from benchmarks.conftest import BENCH_PREDICTOR, train_cdmpp
from repro.baselines import HabitatCostModel
from repro.core.finetune import cross_device_adaptation
from repro.dataset.splits import split_dataset
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.features.pipeline import featurize_programs, featurize_records
from repro.profiler.records import MeasureRecord
from repro.replay.e2e import measure_end_to_end, predict_end_to_end

NETWORKS = ("bert_tiny", "mobilenet_v2")
TARGETS = ("p100", "v100")


def _relative_error(predicted: float, truth: float) -> float:
    return abs(predicted - truth) / max(truth, 1e-12)


@pytest.fixture(scope="module")
def fig12_results(bench_dataset, device_splits):
    # Target devices: P100 is not in the shared dataset, so generate its
    # records with the same tasks/seed; V100 reuses the shared dataset.
    p100_dataset = generate_dataset(
        DatasetConfig(
            devices=("p100",),
            zoo_models=("bert_tiny", "mobilenet_v2", "vgg16"),
            num_synthetic_models=6,
            schedules_per_task=6,
            seed=BENCH_SEED,
        )
    )
    target_records = {
        "p100": split_dataset(p100_dataset.records("p100"), seed=BENCH_SEED),
        "v100": device_splits["v100"],
    }

    rows = []
    for target in TARGETS:
        # Sources: the other GPUs (exclude the target itself).
        sources = [d for d in ("k80", "v100", "t4") if d != target]
        source_train = [r for s in sources for r in device_splits[s].train]
        source_valid = [r for s in sources for r in device_splits[s].valid]
        trainer, _, source_fs = train_cdmpp(source_train, source_valid)

        splits = target_records[target]
        target_test = featurize_records(splits.test, max_leaves=BENCH_PREDICTOR.max_leaves)
        adaptation = cross_device_adaptation(
            trainer,
            source_train=source_fs,
            target_records=splits.train,
            target_test=target_test,
            num_tasks=10,
            epochs=BENCH_FINETUNE_EPOCHS,
            seed=BENCH_SEED,
        )
        adapted = adaptation.adapted_trainer  # fine-tuning never mutates `trainer`

        def cdmpp_cost(programs):
            features = featurize_programs(programs, target, max_leaves=BENCH_PREDICTOR.max_leaves)
            return dict(zip(features.task_keys, adapted.predict(features)))

        habitat = HabitatCostModel(target_device=target, source_device=sources[0], seed=BENCH_SEED)
        habitat.fit([r for s in sources for r in device_splits[s].train])

        def habitat_cost(programs):
            records = [MeasureRecord(program=p, device=target, latency_s=1.0) for p in programs]
            return {
                p.task.workload_key: float(v)
                for p, v in zip(programs, habitat.predict(records))
            }

        for network in NETWORKS:
            truth = measure_end_to_end(network, target, seed=BENCH_SEED).iteration_time_s
            cdmpp_pred = predict_end_to_end(network, target, cdmpp_cost, seed=BENCH_SEED).iteration_time_s
            habitat_pred = predict_end_to_end(network, target, habitat_cost, seed=BENCH_SEED).iteration_time_s
            rows.append(
                {
                    "target": target,
                    "network": network,
                    "truth_ms": truth * 1e3,
                    "cdmpp_err": _relative_error(cdmpp_pred, truth),
                    "habitat_err": _relative_error(habitat_pred, truth),
                }
            )
    return rows


def test_fig12_cross_device_end_to_end(benchmark, fig12_results):
    rows = run_once(benchmark, lambda: fig12_results)
    print_table(
        "Fig. 12: cross-device end-to-end prediction error",
        rows,
        ["target", "network", "truth_ms", "cdmpp_err", "habitat_err"],
    )
    mean_cdmpp = sum(r["cdmpp_err"] for r in rows) / len(rows)
    # The paper reports CDMPP at 15.7% vs Habitat at 28% on average.  On the
    # synthetic substrate Habitat is an unusually strong baseline for
    # same-family GPU transfer (it memorises the source GPU's per-workload
    # latency and roofline-scales it), so the asserted shape is: CDMPP stays
    # in a usable end-to-end error regime and wins on at least one workload.
    assert mean_cdmpp < 0.6
    assert any(r["cdmpp_err"] < r["habitat_err"] for r in rows)
    assert all(r["cdmpp_err"] < 1.0 for r in rows)
