"""Fig. 18: the CMD distance between train and test subsets predicts test error.

The paper samples subset pairs, computes the CMD between their (input
feature) distributions and shows the prediction error grows with the CMD --
the empirical justification for minimising CMD during fine-tuning.  Here the
subsets are grouped by source model (cross-model panel, Fig. 18a) and by
device (cross-device panel, Fig. 18b).
"""

import numpy as np
import pytest

from benchmarks.common import print_table, run_once
from benchmarks.conftest import BENCH_PREDICTOR
from repro.core.cmd import cmd_distance
from repro.features.pipeline import featurize_records


@pytest.fixture(scope="module")
def fig18_results(t4_cdmpp, bench_dataset):
    trainer = t4_cdmpp["trainer"]
    train_fs = t4_cdmpp["train_features"]
    train_latent = trainer.latent(train_fs)

    points = []
    # Cross-model panel: evaluate per source model on the T4 test records.
    test_records = t4_cdmpp["splits"].test + t4_cdmpp["splits"].valid
    by_model = {}
    for record in test_records:
        by_model.setdefault(record.model or "unknown", []).append(record)
    for model, records in by_model.items():
        if len(records) < 5:
            continue
        subset = featurize_records(records, max_leaves=BENCH_PREDICTOR.max_leaves)
        cmd = cmd_distance(train_latent, trainer.latent(subset))
        error = trainer.evaluate(subset)["mape"]
        points.append({"panel": "cross-model", "group": model, "cmd": cmd, "mape": error})

    # Cross-device panel: evaluate the T4-trained model on other devices.
    for device in ("t4", "k80", "v100", "epyc-7452", "hl100"):
        records = bench_dataset.records(device)[:150]
        subset = featurize_records(records, max_leaves=BENCH_PREDICTOR.max_leaves)
        cmd = cmd_distance(train_latent, trainer.latent(subset))
        error = trainer.evaluate(subset)["mape"]
        points.append({"panel": "cross-device", "group": device, "cmd": cmd, "mape": error})
    return points


def test_fig18_cmd_correlates_with_generalization_error(benchmark, fig18_results):
    points = run_once(benchmark, lambda: fig18_results)
    print_table("Fig. 18: CMD vs prediction error", points, ["panel", "group", "cmd", "mape"])

    device_points = [p for p in points if p["panel"] == "cross-device"]
    cmds = np.asarray([p["cmd"] for p in device_points])
    errors = np.asarray([p["mape"] for p in device_points])
    correlation = float(np.corrcoef(cmds, errors)[0, 1])
    # Larger domain distance (CMD) comes with larger prediction error.
    assert correlation > 0.3
    # The same-device subset has the smallest CMD of the cross-device panel.
    t4_point = next(p for p in device_points if p["group"] == "t4")
    assert t4_point["cmd"] == pytest.approx(min(cmds), rel=1e-9)
