"""Table 2: the device fleet and per-device dataset sizes."""

from benchmarks.common import print_table, run_once
from repro.devices.spec import DEVICE_REGISTRY, TABLE2_SAMPLE_COUNTS, list_devices


def test_table2_device_registry(benchmark, bench_dataset):
    def experiment():
        rows = []
        for device in DEVICE_REGISTRY.values():
            rows.append(
                {
                    "device": device.name,
                    "taxonomy": device.taxonomy,
                    "clock_mhz": device.clock_mhz,
                    "mem_gb": device.memory_gb,
                    "bandwidth_gbps": device.memory_bandwidth_gbps,
                    "cores": device.cores,
                    "paper_samples": TABLE2_SAMPLE_COUNTS[device.name],
                    "synthetic_samples": bench_dataset.num_records(device.name)
                    if device.name in bench_dataset.devices
                    else 0,
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Table 2: devices",
        rows,
        ["device", "taxonomy", "clock_mhz", "mem_gb", "bandwidth_gbps", "cores",
         "paper_samples", "synthetic_samples"],
    )
    # All nine Table-2 devices are registered: 5 GPUs, 3 CPUs, 1 accelerator.
    assert len(DEVICE_REGISTRY) == 9
    assert len(list_devices("gpu")) == 5
    assert len(list_devices("cpu")) == 3
    assert len(list_devices("accel")) == 1
    # The synthetic dataset measures the same tensor programs on each device.
    sizes = {d: bench_dataset.num_records(d) for d in bench_dataset.devices}
    assert len(set(sizes.values())) == 1
    assert min(sizes.values()) > 200
