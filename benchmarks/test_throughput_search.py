"""Search throughput: batched scoring via the serving tier vs per-candidate calls.

A cost model inside an auto-tuner is a scoring amplifier: every search round
asks for scores of a whole candidate population at once.  Scoring candidates
one predictor call at a time (the raw ``ScoreFn``-closure style) pays
per-call featurization and dispatch overhead ``population`` times per round;
routing the population through the :class:`PredictionService` pays it once —
and a tuner's workload has heavy repeats (budget sweeps, warm restarts and
re-tunes revisit the same candidate pools), which the service answers from
its prediction cache without touching the predictor at all.

This benchmark replays a budget-sweep tuning workload (the same search run
at two measurement budgets, so the candidate pools are identical — exactly
what a tuner exploring the measure/score trade-off does) and asserts the
headline contract: scoring through the serving tier is >= 3x the throughput
of per-candidate scoring.  It also checks the SearchService end to end:
search trajectories match the per-candidate reference, a cached re-tune is
bit-identical with zero new predicts, and re-tuning is orders of magnitude
faster than searching.
"""

import time

import numpy as np
import pytest

from benchmarks.common import print_table, run_once
from repro.core.api import CDMPP
from repro.ops import dense
from repro.search.ansor import evolutionary_search
from repro.serving import PredictionService, SearchCache, SearchService

SEARCH_ROUNDS = 3
POPULATION = 64
#: measurements_per_round sweep; same seed + rounds => identical candidate pools.
SWEEP_BUDGETS = (1, 3)


class TimedScorer:
    """Wrap a ScoreFn and meter the time spent purely on scoring."""

    def __init__(self, fn):
        self.fn = fn
        self.seconds = 0.0
        self.calls = 0
        self.candidates = 0

    def __call__(self, programs):
        start = time.perf_counter()
        scores = self.fn(programs)
        self.seconds += time.perf_counter() - start
        self.calls += 1
        self.candidates += len(programs)
        return scores


@pytest.fixture(scope="module")
def search_setup(t4_cdmpp):
    """The pre-trained T4 predictor plus the task under tuning."""
    return t4_cdmpp["trainer"], dense(4, 16, 16, model="tune-bench")


def _sweep(task, scorer):
    """One budget sweep: the same search at every measurement budget."""
    return [
        evolutionary_search(
            task,
            "t4",
            scorer,
            num_rounds=SEARCH_ROUNDS,
            population=POPULATION,
            measurements_per_round=budget,
            seed=0,
        )
        for budget in SWEEP_BUDGETS
    ]


def test_batched_scoring_throughput_vs_per_candidate(benchmark, search_setup):
    trainer, task = search_setup

    def run_workload():
        # Per-candidate reference: one predictor call per candidate, the way
        # a bare ScoreFn closure scores (nothing batches, nothing caches).
        facade = CDMPP.from_trainer(trainer)
        naive = TimedScorer(
            lambda programs: np.array(
                [facade.predict_program(program, "t4") for program in programs]
            )
        )
        naive_results = _sweep(task, naive)

        # Serving tier: each round's population is ONE vectorized predict,
        # and the second sweep's identical pools hit the prediction cache.
        service = PredictionService(trainer, max_batch_size=256)
        batched = TimedScorer(lambda programs: service.predict(programs, "t4"))
        batched_results = _sweep(task, batched)
        return naive, naive_results, batched, batched_results, service

    naive, naive_results, batched, batched_results, service = run_once(benchmark, run_workload)

    speedup = naive.seconds / batched.seconds
    rows = [
        {"mode": "per-candidate ScoreFn", "scoring_s": naive.seconds,
         "predict_calls": naive.calls * POPULATION,
         "candidates_per_s": naive.candidates / naive.seconds, "speedup": 1.0},
        {"mode": "serving tier (batched+cached)", "scoring_s": batched.seconds,
         "predict_calls": service.stats.batches,
         "candidates_per_s": batched.candidates / batched.seconds, "speedup": speedup},
    ]
    print_table(
        f"Search scoring throughput ({len(SWEEP_BUDGETS)} budget sweeps x "
        f"{SEARCH_ROUNDS} rounds x {POPULATION} candidates, T4)",
        rows,
        ["mode", "scoring_s", "predict_calls", "candidates_per_s", "speedup"],
    )

    # Both paths scored the identical candidate stream.
    assert naive.candidates == batched.candidates == (
        len(SWEEP_BUDGETS) * SEARCH_ROUNDS * POPULATION
    )
    # One vectorized predict per round on the batched path; the second
    # sweep's rounds were answered entirely from the prediction cache.
    assert batched.calls == len(SWEEP_BUDGETS) * SEARCH_ROUNDS
    assert service.stats.batches == SEARCH_ROUNDS
    # Same search outcomes (same seed => same candidate pools => same bests).
    for naive_result, batched_result in zip(naive_results, batched_results):
        np.testing.assert_allclose(
            batched_result.best_latency_per_round,
            naive_result.best_latency_per_round,
            rtol=1e-2,
        )
        assert batched_result.num_measurements == naive_result.num_measurements

    # The headline contract: >= 3x scoring throughput through the serving tier.
    assert speedup >= 3.0, (
        f"batched scoring speedup {speedup:.1f}x below the 3x contract"
    )


def test_cached_retune_is_bit_identical_and_instant(benchmark, search_setup):
    trainer, task = search_setup
    service = PredictionService(trainer, max_batch_size=256)
    search = SearchService(service, cache=SearchCache())
    budget = dict(
        num_rounds=SEARCH_ROUNDS,
        population=POPULATION,
        measurements_per_round=SWEEP_BUDGETS[-1],
        seed=0,
    )

    def tune_twice():
        start = time.perf_counter()
        first = search.tune_task(task, "t4", **budget)
        fresh_s = time.perf_counter() - start
        queries_before = service.stats.queries
        start = time.perf_counter()
        second = search.tune_task(task, "t4", **budget)
        cached_s = time.perf_counter() - start
        return first, fresh_s, second, cached_s, queries_before

    first, fresh_s, second, cached_s, queries_before = run_once(benchmark, tune_twice)

    print_table(
        "Re-tune latency (fresh search vs cached result)",
        [
            {"mode": "fresh search", "seconds": fresh_s, "speedup": 1.0},
            {"mode": "cached re-tune", "seconds": cached_s, "speedup": fresh_s / cached_s},
        ],
        ["mode", "seconds", "speedup"],
    )

    assert second == first  # bit-identical SearchResult
    assert service.stats.queries == queries_before  # zero new predicts
    assert search.stats.cache_hits == 1
    assert fresh_s / cached_s >= 50.0, (
        f"cached re-tune only {fresh_s / cached_s:.0f}x faster than searching"
    )
