"""Serving throughput: cached+batched PredictionService vs the naive query loop.

The "train once, query many" workflow of the paper (and of TLP-style tuners,
which score thousands of candidate schedules per search round) is dominated
by per-query featurization and per-query predictor calls when each program is
handled on its own.  The serving layer amortizes both: queries are
micro-batched into single vectorized ``Trainer.predict`` calls and repeats
are answered from an LRU feature/prediction cache.

This benchmark replays a tuner-shaped query stream (every kernel queried
several times across rounds) three ways and asserts the serving layer's
contract: cached+batched serving is at least 5x faster than the naive
per-program loop.
"""

import time

import numpy as np
import pytest

from benchmarks.common import print_table, run_once
from benchmarks.conftest import train_cdmpp
from repro.core.api import CDMPP
from repro.serving import PredictionService, program_cache_key

QUERY_ROUNDS = 5  # each distinct kernel is queried this many times
UNIQUE_PROGRAMS = 48


@pytest.fixture(scope="module")
def serving_setup(device_splits):
    """A trained T4 model plus a repeated-query workload over its test split."""
    splits = device_splits["t4"]
    trainer, _, _ = train_cdmpp(splits.train, splits.valid, epochs=8)

    programs, seen = [], set()
    for record in splits.test + splits.valid + splits.train:
        key = program_cache_key(record.program, "t4", 0)
        if key not in seen:
            seen.add(key)
            programs.append(record.program)
        if len(programs) == UNIQUE_PROGRAMS:
            break
    queries = [program for _ in range(QUERY_ROUNDS) for program in programs]
    return trainer, programs, queries


def test_serving_throughput_vs_naive_loop(benchmark, serving_setup):
    trainer, programs, queries = serving_setup
    cdmpp = CDMPP.from_trainer(trainer)

    def naive_loop():
        start = time.perf_counter()
        values = [cdmpp.predict_program(program, "t4") for program in queries]
        return time.perf_counter() - start, values

    def batched_cold():
        service = PredictionService(trainer)
        start = time.perf_counter()
        values = service.predict(queries, "t4")
        return time.perf_counter() - start, values

    def batched_warm():
        service = PredictionService(trainer)
        service.predict(programs, "t4")  # steady state: caches populated
        start = time.perf_counter()
        values = service.predict(queries, "t4")
        return time.perf_counter() - start, values

    (naive_s, naive_values), (cold_s, cold_values), (warm_s, warm_values) = run_once(
        benchmark, lambda: (naive_loop(), batched_cold(), batched_warm())
    )

    rows = [
        {"mode": "naive per-program loop", "seconds": naive_s,
         "queries_per_s": len(queries) / naive_s, "speedup": 1.0},
        {"mode": "serving (cold cache)", "seconds": cold_s,
         "queries_per_s": len(queries) / cold_s, "speedup": naive_s / cold_s},
        {"mode": "serving (warm cache)", "seconds": warm_s,
         "queries_per_s": len(queries) / warm_s, "speedup": naive_s / warm_s},
    ]
    print_table(
        f"Serving throughput ({len(queries)} queries = {len(programs)} kernels x {QUERY_ROUNDS} rounds, T4)",
        rows,
        ["mode", "seconds", "queries_per_s", "speedup"],
    )

    # Identical predictions on every path.
    np.testing.assert_allclose(cold_values, naive_values, rtol=1e-9)
    np.testing.assert_allclose(warm_values, naive_values, rtol=1e-9)

    # The headline contract: cached+batched serving is >= 5x the naive loop.
    assert naive_s / warm_s >= 5.0, (
        f"warm serving speedup {naive_s / warm_s:.1f}x below the 5x contract"
    )
    # Even a cold cache must win on batching + intra-stream repeats alone.
    assert naive_s / cold_s >= 2.0, (
        f"cold serving speedup {naive_s / cold_s:.1f}x below the 2x floor"
    )
