"""Fig. 2: AST node-count vs leaf-count distributions in the dataset.

The observation motivating Compact ASTs: the number of AST nodes varies over
a wide range while the number of *leaf* nodes stays within a narrow range.
"""

import numpy as np

from benchmarks.common import print_table, run_once
from repro.analysis.distribution import ast_node_distribution


def test_fig2_ast_node_and_leaf_distributions(benchmark, bench_dataset):
    def experiment():
        programs = [record.program for record in bench_dataset.records("t4")]
        return ast_node_distribution(programs)

    dist = run_once(benchmark, experiment)
    nodes, leaves = dist["num_nodes"], dist["num_leaves"]
    rows = [
        {"quantity": "ast nodes", "min": int(nodes.min()), "p50": float(np.median(nodes)),
         "p95": float(np.percentile(nodes, 95)), "max": int(nodes.max()),
         "range": int(nodes.max() - nodes.min())},
        {"quantity": "leaf nodes", "min": int(leaves.min()), "p50": float(np.median(leaves)),
         "p95": float(np.percentile(leaves, 95)), "max": int(leaves.max()),
         "range": int(leaves.max() - leaves.min())},
    ]
    print_table("Fig. 2: AST node number distribution", rows,
                ["quantity", "min", "p50", "p95", "max", "range"])

    # Shape: the leaf-count range is much narrower than the node-count range,
    # and leaf counts stay small (which is what makes Compact ASTs regular).
    assert leaves.max() - leaves.min() < nodes.max() - nodes.min()
    assert leaves.max() <= 16
    assert nodes.max() > leaves.max()
