"""Shared helpers for the benchmark harness.

Every benchmark reproduces one table or figure of the paper: it prints the
same rows/series the paper reports (on the synthetic substrate) and asserts
the qualitative shape (who wins, rough factors, trend directions).  Absolute
numbers differ from the paper because the ground truth comes from the
analytical device simulator rather than real hardware.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Sequence

# The scale knobs of the benchmark suite.  They are deliberately small enough
# that the whole suite runs in a few minutes on a laptop CPU; raise them for
# a closer (slower) reproduction.
BENCH_SEED = 7
BENCH_EPOCHS = 22
BENCH_FINETUNE_EPOCHS = 3
BENCH_SCHEDULES_PER_TASK = 6
BENCH_ZOO_MODELS = ("bert_tiny", "mobilenet_v2", "vgg16")
BENCH_SYNTHETIC_MODELS = 6


def print_table(title: str, rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> None:
    """Print a small aligned table for one experiment."""
    print(f"\n=== {title} ===")
    widths = {col: max(len(col), *(len(_fmt(row.get(col))) for row in rows)) for col in columns}
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def run_once(benchmark, fn: Callable[[], object]) -> object:
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are full training pipelines, so timing them repeatedly
    would make the suite impractically slow; pedantic mode with a single
    round records the wall time while keeping the ``--benchmark-only``
    workflow intact.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
