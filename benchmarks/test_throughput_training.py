"""Section 7.2 training-efficiency comparison: samples/second per cost model.

The paper reports ~644k samples/s for XGBoost, ~14k for CDMPP and ~1.9k for
Tiramisu on a V100.  The NumPy substrate is slower across the board, but the
ordering and the roughly order-of-magnitude gaps are the reproducible shape.
"""

import pytest

from benchmarks.common import BENCH_SEED, print_table, run_once
from benchmarks.conftest import train_cdmpp
from repro.baselines import TiramisuCostModel, XGBoostCostModel


@pytest.fixture(scope="module")
def throughput_results(device_splits):
    splits = device_splits["t4"]
    _, cdmpp_result, _ = train_cdmpp(splits.train, splits.valid, epochs=8)

    xgb = XGBoostCostModel(n_estimators=50, seed=BENCH_SEED)
    xgb.fit(splits.train)
    tiramisu = TiramisuCostModel(epochs=1, max_train_samples=150, seed=BENCH_SEED)
    tiramisu.fit(splits.train)

    return [
        {"cost_model": "xgboost", "throughput": xgb.throughput_samples_per_s},
        {"cost_model": "cdmpp", "throughput": cdmpp_result.throughput_samples_per_s},
        {"cost_model": "tiramisu", "throughput": tiramisu.throughput_samples_per_s},
    ]


def test_training_throughput_comparison(benchmark, throughput_results):
    rows = run_once(benchmark, lambda: throughput_results)
    print_table("Training throughput (samples consumed per second, T4 dataset)", rows,
                ["cost_model", "throughput"])
    throughput = {row["cost_model"]: row["throughput"] for row in rows}
    # Ordering: XGBoost > CDMPP > Tiramisu, with CDMPP several times faster
    # than the structure-batched recursive LSTM.
    assert throughput["xgboost"] > throughput["cdmpp"]
    assert throughput["cdmpp"] > 2 * throughput["tiramisu"]
