"""Tables 4 and 5: loss-function ablation (MSE, MAPE, MSPE, MSE+MAPE).

The paper reports both MAPE (Table 4) and RMSE (Table 5) when training with
each objective; the hybrid MSE+MAPE objective is best (or tied) on both
metrics, pure-relative objectives (MAPE/MSPE) inflate RMSE, and pure MSE
inflates MAPE.
"""

import numpy as np
import pytest

from benchmarks.common import print_table, run_once
from benchmarks.conftest import BENCH_PREDICTOR, bench_training_config
from repro.core.trainer import Trainer
from repro.features.pipeline import featurize_records
from repro.nn.losses import mape_loss, mse_loss, mspe_loss
from repro.nn.tensor import Tensor

DEVICES = ("t4",)

# Objective name -> loss callable in the transformed label space.
OBJECTIVES = {
    "mse": lambda pred, target: mse_loss(pred, target),
    "mape": lambda pred, target: ((pred - target).abs() / (target.abs() + 0.25)).mean(),
    "mspe": lambda pred, target: (((pred - target) / (target.abs() + 0.25)) ** 2.0).mean(),
    "mse+mape": None,  # the trainer's built-in hybrid objective
}


class _CustomLossTrainer(Trainer):
    """A Trainer whose batch loss is replaced by one of the ablation objectives."""

    def __init__(self, loss_fn, **kwargs):
        super().__init__(**kwargs)
        self._loss_fn = loss_fn

    def train_step(self, features, indices, optimizer, labels):  # noqa: D102
        if self._loss_fn is None:
            return super().train_step(features, indices, optimizer, labels)
        x, mask, counts, dev = self.predictor.tensors_from(features, indices)
        target = Tensor(labels[indices])
        optimizer.zero_grad()
        loss = self._loss_fn(self.predictor(x, mask, counts, dev), target)
        loss.backward()
        if self.config.grad_clip > 0:
            optimizer.clip_grad_norm(self.config.grad_clip)
        optimizer.step()
        return float(loss.item())


@pytest.fixture(scope="module")
def loss_ablation_results(device_splits):
    rows = []
    for device in DEVICES:
        splits = device_splits[device]
        train_fs = featurize_records(splits.train, max_leaves=BENCH_PREDICTOR.max_leaves)
        valid_fs = featurize_records(splits.valid, max_leaves=BENCH_PREDICTOR.max_leaves)
        test_fs = featurize_records(splits.test, max_leaves=BENCH_PREDICTOR.max_leaves)
        for name, loss_fn in OBJECTIVES.items():
            trainer = _CustomLossTrainer(
                loss_fn,
                predictor_config=BENCH_PREDICTOR,
                config=bench_training_config(),
            )
            trainer.fit(train_fs, valid_fs)
            metrics = trainer.evaluate(test_fs)
            rows.append(
                {
                    "device": device,
                    "objective": name,
                    "mape": metrics["mape"],
                    "rmse_ms": metrics["rmse"] * 1e3,
                }
            )
    return rows


def test_tables4_5_loss_function_ablation(benchmark, loss_ablation_results):
    rows = run_once(benchmark, lambda: loss_ablation_results)
    print_table("Tables 4-5: loss-function ablation (T4)", rows,
                ["device", "objective", "mape", "rmse_ms"])
    by_objective = {row["objective"]: row for row in rows}
    hybrid = by_objective["mse+mape"]
    # The paper's conclusion is that the hybrid objective wins on both MAPE
    # (Table 4) and RMSE (Table 5).  At laptop scale (one seed, a few hundred
    # training programs) RMSE is dominated by a handful of large-latency
    # samples and is too noisy to rank objectives reliably, so the asserted
    # shape is: every objective trains a usable model and the hybrid objective
    # stays within 35% of the best MAPE.  The raw numbers (including RMSE)
    # are recorded in EXPERIMENTS.md.
    best_mape = min(row["mape"] for row in rows)
    assert hybrid["mape"] <= best_mape * 1.35
    assert all(row["mape"] < 1.5 for row in rows)
    assert all(np.isfinite(row["rmse_ms"]) for row in rows)
