"""Tiered prediction throughput: the serving tiers vs the old forward pipeline.

The tiered inference refactor moved every serving-facing prediction off the
autograd ``forward`` (Tensor graph, ``FeatureSet.subset`` copies per batch)
onto ``Module.infer`` over raw ndarrays, and added a distilled MLP student
as the ``fast`` serving tier.  This benchmark replays a tuner-shaped warm
query stream (every kernel queried several times across rounds) against the
pre-refactor pipeline — featurize + normalize + Tensor graph forward under
``no_grad`` per round — and asserts the refactor's contracts:

* the accurate tier answers the warm batched stream at least 2x faster than
  the old forward pipeline, bit-identically to it,
* the fast tier answers the same stream cold (empty caches) at least 5x
  faster, and its student loses at most 10 MAPE points to the teacher on
  held-out data,
* an accurate-tier daemon round-trip answers bit-identically to the
  in-process fleet (wire fidelity on top of infer fidelity).

Results are also written to ``BENCH_predict.json`` at the repository root to
start the tiered path's perf trajectory.
"""

import json
import os
import time

import numpy as np
import pytest

from benchmarks.common import BENCH_SEED, print_table, run_once
from benchmarks.conftest import train_cdmpp
from repro.backends import DistilledBackend
from repro.features.pipeline import featurize_programs, featurize_records
from repro.nn import no_grad
from repro.serving import (
    DaemonClient,
    DaemonConfig,
    FleetService,
    PredictionService,
    ServingDaemon,
    program_cache_key,
)

QUERY_ROUNDS = 8  # each distinct kernel is queried this many times
UNIQUE_PROGRAMS = 48
BATCH_SIZE = 256

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_predict.json"
)


@pytest.fixture(scope="module")
def tier_setup(device_splits):
    """A trained T4 teacher, its student, a query stream and held-out features."""
    splits = device_splits["t4"]
    trainer, _, train_fs = train_cdmpp(splits.train, splits.valid, epochs=8)
    test_fs = featurize_records(splits.test, max_leaves=trainer.max_leaves)
    student = DistilledBackend.distill_from(
        trainer, train_fs, distill_epochs=60, seed=BENCH_SEED
    )

    programs, seen = [], set()
    for record in splits.test + splits.valid + splits.train:
        key = program_cache_key(record.program, "t4", 0)
        if key not in seen:
            seen.add(key)
            programs.append(record.program)
        if len(programs) == UNIQUE_PROGRAMS:
            break
    queries = [program for _ in range(QUERY_ROUNDS) for program in programs]
    return trainer, student, test_fs, programs, queries


def old_forward_predict(trainer, programs):
    """The pre-refactor prediction pipeline, kept as the timing baseline.

    Featurizes every query and builds the full Tensor graph per batch
    (``tensors_from`` on a ``FeatureSet.subset`` copy, autograd ``forward``
    under ``no_grad``) the way the serving stack predicted before the infer
    path and the tiered cache existed.
    """
    features = featurize_programs(
        programs, ["t4"] * len(programs), max_leaves=trainer.max_leaves
    )
    trainer.predictor.eval()
    normalized = trainer.normalize_features(features)
    outputs = []
    with no_grad():
        for start in range(0, len(normalized), BATCH_SIZE):
            indices = np.arange(start, min(start + BATCH_SIZE, len(normalized)))
            x, mask, leaf_counts, dev = trainer.predictor.tensors_from(normalized, indices)
            outputs.append(trainer.predictor(x, mask, leaf_counts, dev).data)
    transformed = np.concatenate(outputs, axis=0)
    return np.maximum(
        trainer.transform.inverse_transform(np.asarray(transformed, dtype=np.float64)), 1e-12
    )


def test_tiered_predict_throughput(benchmark, tier_setup):
    trainer, student, test_fs, programs, queries = tier_setup

    def old_forward():
        start = time.perf_counter()
        values = old_forward_predict(trainer, queries)
        return time.perf_counter() - start, values

    def accurate_warm():
        service = PredictionService(trainer)
        service.predict(programs, "t4")  # steady state: caches populated
        start = time.perf_counter()
        values = service.predict(queries, "t4", tier="accurate")
        return time.perf_counter() - start, values

    def fast_cold():
        service = PredictionService(trainer, fast_models={"t4": student})
        start = time.perf_counter()
        values = service.predict(queries, "t4", tier="fast")
        return time.perf_counter() - start, values

    (old_s, old_values), (accurate_s, accurate_values), (fast_s, fast_values) = run_once(
        benchmark, lambda: (old_forward(), accurate_warm(), fast_cold())
    )

    rows = [
        {"tier": "old forward (autograd)", "seconds": old_s,
         "queries_per_s": len(queries) / old_s, "speedup": 1.0},
        {"tier": "accurate (warm cache)", "seconds": accurate_s,
         "queries_per_s": len(queries) / accurate_s, "speedup": old_s / accurate_s},
        {"tier": "fast (cold, distilled)", "seconds": fast_s,
         "queries_per_s": len(queries) / fast_s, "speedup": old_s / fast_s},
    ]
    print_table(
        f"Tiered serving throughput ({len(queries)} queries = "
        f"{len(programs)} kernels x {QUERY_ROUNDS} rounds, T4)",
        rows,
        ["tier", "seconds", "queries_per_s", "speedup"],
    )

    # Refactor equivalence: the accurate tier answers the whole stream as the
    # pre-refactor forward pipeline does.  Not np.array_equal: the service
    # dedups repeats, so its BLAS calls see different batch shapes than the
    # baseline's (bit-exactness at matching shapes is asserted per-module in
    # tests/test_nn_infer.py, and on the wire below).
    np.testing.assert_allclose(accurate_values, old_values, rtol=1e-9)
    assert len(fast_values) == len(old_values)

    # Accuracy contract: the student may lose at most 10 MAPE points to its
    # teacher on held-out data.
    teacher_mape = trainer.evaluate(test_fs)["mape"]
    student_mape = student.evaluate_features(test_fs)["mape"]
    assert student_mape <= teacher_mape + 10.0, (
        f"student MAPE {student_mape:.1f} vs teacher {teacher_mape:.1f}"
    )

    # Throughput contracts.
    accurate_speedup = old_s / accurate_s
    fast_speedup = old_s / fast_s
    assert accurate_speedup >= 2.0, (
        f"accurate-tier speedup {accurate_speedup:.1f}x below the 2x contract"
    )
    assert fast_speedup >= 5.0, (
        f"fast-tier speedup {fast_speedup:.1f}x below the 5x contract"
    )

    # Wire fidelity: an accurate-tier daemon round-trip answers bit-identically
    # to the in-process fleet serving the same checkpoint.
    fleet = FleetService({"t4": trainer})
    reference = fleet.predict_model("bert_tiny", device="t4", batch_size=1, seed=0)
    with ServingDaemon({"t4": trainer}, DaemonConfig(port=0, max_wait_ms=5.0)) as daemon:
        host, port = daemon.address
        with DaemonClient(host, port) as client:
            wire = client.query("bert_tiny", device="t4", seed=0, tier="accurate")
    assert wire["tier"] == "accurate"
    assert wire["latency_s"] == reference.predicted_latency_s

    results = {
        "benchmark": "tiered_predict_throughput",
        "unique_programs": len(programs),
        "query_rounds": QUERY_ROUNDS,
        "total_queries": len(queries),
        "old_forward_seconds": old_s,
        "accurate_warm_seconds": accurate_s,
        "fast_cold_seconds": fast_s,
        "accurate_speedup": accurate_speedup,
        "fast_speedup": fast_speedup,
        "teacher_mape": teacher_mape,
        "student_mape": student_mape,
    }
    with open(RESULTS_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
