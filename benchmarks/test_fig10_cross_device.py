"""Fig. 10: cross-device prediction error at the TIR level.

Three source→target combinations, as in the paper:
  (1) GPUs → GPU      (K80 + V100 → T4)
  (2) GPUs+CPUs → CPU (K80 + V100 + Graviton2 → EPYC)
  (3) GPUs → accelerator (K80 + V100 → HL-100)
CDMPP pre-trains on the sources and fine-tunes with KMeans-sampled tasks
profiled on the target; Habitat (GPU targets only) and TLP are the baselines.
"""

import pytest

from benchmarks.common import BENCH_FINETUNE_EPOCHS, BENCH_SEED, print_table, run_once
from benchmarks.conftest import BENCH_PREDICTOR, train_cdmpp
from repro.baselines import HabitatCostModel, TLPCostModel
from repro.core.finetune import cross_device_adaptation
from repro.features.pipeline import featurize_records

COMBOS = (
    {"name": "GPUs->GPU", "sources": ("k80", "v100"), "target": "t4"},
    {"name": "GPUs+CPUs->CPU", "sources": ("k80", "v100", "graviton2"), "target": "epyc-7452"},
    {"name": "GPUs->Accel", "sources": ("k80", "v100"), "target": "hl100"},
)


@pytest.fixture(scope="module")
def fig10_results(bench_dataset, device_splits, gpu_source_cdmpp):
    rows = []
    for combo in COMBOS:
        target = combo["target"]
        target_splits = device_splits[target]
        target_test = featurize_records(target_splits.test, max_leaves=BENCH_PREDICTOR.max_leaves)

        if combo["sources"] == ("k80", "v100"):
            trainer = gpu_source_cdmpp["trainer"]
            source_train_fs = gpu_source_cdmpp["train_features"]
        else:
            source_train = [r for s in combo["sources"] for r in device_splits[s].train]
            source_valid = [r for s in combo["sources"] for r in device_splits[s].valid]
            trainer, _, source_train_fs = train_cdmpp(source_train, source_valid)

        # cross_device_adaptation fine-tunes a detached clone, so the shared
        # fixture's trainer stays reusable without a state backup.
        adaptation = cross_device_adaptation(
            trainer,
            source_train=source_train_fs,
            target_records=target_splits.train,
            target_test=target_test,
            num_tasks=10,
            strategy="kmeans",
            epochs=BENCH_FINETUNE_EPOCHS,
            seed=BENCH_SEED,
        )
        cdmpp_mape = adaptation.metrics_after["mape"]

        # TLP baseline: trained on the source devices' records, evaluated on
        # the target's absolute latencies.
        source_records = [r for s in combo["sources"] for r in device_splits[s].train]
        tlp = TLPCostModel(epochs=40, seed=BENCH_SEED)
        tlp.fit(source_records)
        tlp_mape = tlp.evaluate(target_splits.test)["mape"]

        # Habitat baseline: GPU targets only.
        habitat_mape = None
        if target == "t4":
            habitat = HabitatCostModel(target_device=target, source_device="v100", seed=BENCH_SEED)
            habitat.fit(bench_dataset.records("v100") + bench_dataset.records("k80"))
            habitat_mape = habitat.evaluate(target_splits.test)["mape"]

        rows.append(
            {
                "combination": combo["name"],
                "target": target,
                "cdmpp_mape": cdmpp_mape,
                "cdmpp_before_finetune": adaptation.metrics_before["mape"],
                "tlp_mape": tlp_mape,
                "habitat_mape": habitat_mape if habitat_mape is not None else "n/a",
            }
        )
    return rows


def test_fig10_cross_device_error(benchmark, fig10_results):
    rows = run_once(benchmark, lambda: fig10_results)
    print_table(
        "Fig. 10: cross-device TIR-level MAPE",
        rows,
        ["combination", "target", "cdmpp_mape", "cdmpp_before_finetune", "tlp_mape", "habitat_mape"],
    )
    for row in rows:
        # Fine-tuned CDMPP reaches a usable error regime on every target
        # taxonomy (GPU, CPU, accelerator) ...
        assert row["cdmpp_mape"] < 0.6
        # ... and beats TLP by a wide margin on absolute-time prediction.
        assert row["cdmpp_mape"] < row["tlp_mape"] / 2
    gpu_row = next(row for row in rows if row["target"] == "t4")
    # On the GPU target CDMPP also beats Habitat's roofline scaling.
    assert gpu_row["cdmpp_mape"] < gpu_row["habitat_mape"]
