"""Fig. 14b: schedule-search quality with different cost models.

The cost model prunes Ansor-style search: per round a population of candidate
schedules is scored, only the top-scored candidates are measured.  A better
cost model finds faster schedules for BERT-tiny on T4 within the same
measurement budget.  Baselines: an XGBoost cost model and a random scorer.
"""

import numpy as np
import pytest

from benchmarks.common import BENCH_SEED, print_table, run_once
from repro.baselines import XGBoostCostModel
from repro.features.pipeline import featurize_programs
from repro.graph.zoo import build_model
from repro.profiler.records import MeasureRecord
from repro.search.ansor import search_model_schedules

SEARCH_ROUNDS = 6
POPULATION = 12
MEASURE_PER_ROUND = 3


@pytest.fixture(scope="module")
def fig14b_results(t4_cdmpp, device_splits):
    trainer = t4_cdmpp["trainer"]
    splits = device_splits["t4"]
    model = build_model("bert_tiny")

    xgb = XGBoostCostModel(n_estimators=50, seed=BENCH_SEED)
    xgb.fit(splits.train)

    def cdmpp_scores(programs):
        features = featurize_programs(programs, "t4", max_leaves=trainer.predictor.config.max_leaves)
        return trainer.predict(features)

    def xgb_scores(programs):
        records = [MeasureRecord(program=p, device="t4", latency_s=1.0) for p in programs]
        return xgb.predict(records)

    def random_scores(programs):
        rng = np.random.default_rng(abs(hash(len(programs))) % (2**31))
        return rng.random(len(programs))

    scorers = {"cdmpp": cdmpp_scores, "xgboost": xgb_scores, "random": random_scores}
    results = {}
    for name, scorer in scorers.items():
        per_task = search_model_schedules(
            model, "t4", scorer,
            num_rounds=SEARCH_ROUNDS, population=POPULATION,
            measurements_per_round=MEASURE_PER_ROUND, seed=BENCH_SEED,
        )
        total_by_round = [
            sum(task_result.best_latency_per_round[round_index] for task_result in per_task.values())
            for round_index in range(SEARCH_ROUNDS)
        ]
        results[name] = total_by_round
    return results


def test_fig14b_schedule_search_quality(benchmark, fig14b_results):
    results = run_once(benchmark, lambda: fig14b_results)
    rows = [
        {"cost_model": name,
         "round_1_ms": series[0] * 1e3,
         "final_ms": series[-1] * 1e3,
         "improvement_%": 100.0 * (series[0] - series[-1]) / series[0]}
        for name, series in results.items()
    ]
    print_table("Fig. 14b: tuned BERT-tiny task latency (sum over tasks) on T4", rows,
                ["cost_model", "round_1_ms", "final_ms", "improvement_%"])

    for name, series in results.items():
        # Best-so-far latency never increases over rounds.
        assert all(a >= b - 1e-15 for a, b in zip(series, series[1:]))
    # The learned cost models prune the search at least as well as random
    # scoring, and CDMPP ends within 10% of the best of the three.
    best_final = min(series[-1] for series in results.values())
    assert results["cdmpp"][-1] <= results["random"][-1] * 1.05
    assert results["cdmpp"][-1] <= best_final * 1.10
