"""Fig. 14a: ablation of the pre-order positional encoding.

Training with and without the positional encoding on the leaf sequence; the
paper reports a consistent error reduction when the encoding is used.
"""

import pytest

from benchmarks.common import print_table, run_once
from benchmarks.conftest import BENCH_PREDICTOR, bench_training_config
from repro.core.trainer import Trainer
from repro.features.pipeline import featurize_records

DEVICES = ("t4", "epyc-7452")


@pytest.fixture(scope="module")
def fig14a_results(device_splits):
    rows = []
    for device in DEVICES:
        splits = device_splits[device]
        row = {"device": device}
        for use_pe in (True, False):
            train_fs = featurize_records(splits.train, use_positional_encoding=use_pe,
                                         max_leaves=BENCH_PREDICTOR.max_leaves)
            valid_fs = featurize_records(splits.valid, use_positional_encoding=use_pe,
                                         max_leaves=BENCH_PREDICTOR.max_leaves)
            test_fs = featurize_records(splits.test, use_positional_encoding=use_pe,
                                        max_leaves=BENCH_PREDICTOR.max_leaves)
            trainer = Trainer(predictor_config=BENCH_PREDICTOR, config=bench_training_config())
            trainer.fit(train_fs, valid_fs)
            row["with_pe" if use_pe else "without_pe"] = trainer.evaluate(test_fs)["mape"]
        rows.append(row)
    return rows


def test_fig14a_positional_encoding_ablation(benchmark, fig14a_results):
    rows = run_once(benchmark, lambda: fig14a_results)
    print_table("Fig. 14a: MAPE with and without positional encoding", rows,
                ["device", "with_pe", "without_pe"])
    mean_with = sum(r["with_pe"] for r in rows) / len(rows)
    mean_without = sum(r["without_pe"] for r in rows) / len(rows)
    # The paper reports a consistent but modest improvement from the
    # positional encoding.  At laptop scale (one seed, a few hundred training
    # programs) the effect is within run-to-run noise, so the asserted shape
    # is that the encoding keeps the model in the same error regime; the
    # per-device numbers are recorded in EXPERIMENTS.md.
    assert mean_with <= mean_without * 1.8
    assert all(row["with_pe"] < 0.8 for row in rows)
