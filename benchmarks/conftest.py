"""Session fixtures shared by the benchmark harness.

The expensive artefacts -- the multi-device synthetic dataset and the
pre-trained predictors -- are built once and reused by every table/figure
benchmark so the whole suite stays in the minutes range.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import (
    BENCH_EPOCHS,
    BENCH_SCHEDULES_PER_TASK,
    BENCH_SEED,
    BENCH_SYNTHETIC_MODELS,
    BENCH_ZOO_MODELS,
)
from repro.core.config import PredictorConfig, TrainingConfig
from repro.core.trainer import Trainer
from repro.dataset.splits import split_dataset
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.features.pipeline import featurize_records

BENCH_DEVICES = ("t4", "k80", "v100", "epyc-7452", "graviton2", "hl100")

# The architecture used by every learned CDMPP instance in the benchmarks.
BENCH_PREDICTOR = PredictorConfig(
    d_model=48,
    num_heads=4,
    num_encoder_layers=2,
    embedding_dim=48,
    decoder_hidden=(64, 64),
    device_hidden=(32,),
    max_leaves=16,
)


def bench_training_config(**overrides) -> TrainingConfig:
    """The training configuration used across benchmarks."""
    defaults = dict(epochs=BENCH_EPOCHS, batch_size=128, learning_rate=3e-3,
                    scheduler="cosine", lambda_mape=0.1, seed=BENCH_SEED)
    defaults.update(overrides)
    return TrainingConfig(**defaults)


@pytest.fixture(scope="session")
def bench_dataset():
    """The multi-device Tenset-like dataset used by every experiment."""
    config = DatasetConfig(
        devices=BENCH_DEVICES,
        zoo_models=BENCH_ZOO_MODELS,
        num_synthetic_models=BENCH_SYNTHETIC_MODELS,
        schedules_per_task=BENCH_SCHEDULES_PER_TASK,
        seed=BENCH_SEED,
    )
    return generate_dataset(config)


@pytest.fixture(scope="session")
def device_splits(bench_dataset):
    """Record splits (8:1:1) per device."""
    return {
        device: split_dataset(bench_dataset.records(device), seed=BENCH_SEED)
        for device in bench_dataset.devices
    }


def train_cdmpp(records_train, records_valid, epochs: int = BENCH_EPOCHS, **overrides):
    """Train a CDMPP predictor on record lists and return (trainer, result, features)."""
    train_fs = featurize_records(records_train, max_leaves=BENCH_PREDICTOR.max_leaves)
    valid_fs = (
        featurize_records(records_valid, max_leaves=BENCH_PREDICTOR.max_leaves)
        if records_valid
        else None
    )
    trainer = Trainer(
        predictor_config=BENCH_PREDICTOR,
        config=bench_training_config(epochs=epochs, **overrides),
    )
    result = trainer.fit(train_fs, valid_fs)
    return trainer, result, train_fs


@pytest.fixture(scope="session")
def t4_cdmpp(device_splits):
    """A CDMPP predictor pre-trained on the T4 training split."""
    splits = device_splits["t4"]
    trainer, result, train_fs = train_cdmpp(splits.train, splits.valid)
    return {"trainer": trainer, "result": result, "train_features": train_fs, "splits": splits}


@pytest.fixture(scope="session")
def gpu_source_cdmpp(device_splits):
    """A CDMPP predictor pre-trained on K80+V100 (the cross-device source pool)."""
    train = device_splits["k80"].train + device_splits["v100"].train
    valid = device_splits["k80"].valid + device_splits["v100"].valid
    trainer, result, train_fs = train_cdmpp(train, valid)
    return {"trainer": trainer, "result": result, "train_features": train_fs}
