"""Fleet throughput: batched graph-level serving vs the naive per-kernel loop.

A whole-model latency query decomposes into tens of per-kernel cost queries
per device.  Without the fleet tier a caller partitions the model, loops over
kernels calling ``CDMPP.predict_program`` one at a time for every device, and
composes the results — paying per-query featurization and a per-query
predictor call each time.  ``FleetService`` amortizes all of it: one memoized
partition per (model, taxonomy), one batched predictor pass per fleet query,
and per-device LRU shards that answer repeats outright.

This benchmark replays a placement-search-shaped workload (the same networks
ranked across devices over several rounds) both ways and asserts the fleet
contract: warm fleet serving is at least 3x faster than the naive loop.
"""

import time

import numpy as np
import pytest

from benchmarks.common import print_table, run_once
from benchmarks.conftest import train_cdmpp
from repro.core.api import CDMPP
from repro.graph.partition import partition_into_programs
from repro.replay.e2e import compose_latencies
from repro.serving import FleetService

DEVICES = ("t4", "k80")
NETWORKS = ("bert_tiny", "mobilenet_v2")
QUERY_ROUNDS = 3  # every (network, device) pair is asked this many times
GAP_S = 2e-6


@pytest.fixture(scope="module")
def fleet_setup(device_splits):
    """One cross-device model serving both GPUs (CDMPP's speciality)."""
    splits = device_splits["t4"]
    trainer, _, _ = train_cdmpp(splits.train, splits.valid, epochs=8)
    return trainer


def test_fleet_throughput_vs_naive_kernel_loop(benchmark, fleet_setup):
    trainer = fleet_setup
    cdmpp = CDMPP.from_trainer(trainer)
    queries = [(network, device) for _ in range(QUERY_ROUNDS)
               for network in NETWORKS for device in DEVICES]

    def naive_loop():
        """Partition + per-kernel predict_program calls + compose, per query."""
        start = time.perf_counter()
        values = []
        for network, device in queries:
            dfg = partition_into_programs(network, target_kind="gpu", seed=0)
            durations = {
                key: cdmpp.predict_program(program, device)
                for key, program in dfg.unique_programs().items()
            }
            values.append(
                compose_latencies(dfg, durations, device, gap_s=GAP_S).iteration_time_s
            )
        return time.perf_counter() - start, values

    def fleet_cold():
        fleet = FleetService({device: trainer for device in DEVICES})
        start = time.perf_counter()
        values = [
            fleet.predict_model(network, device, seed=0).predicted_latency_s
            for network, device in queries
        ]
        return time.perf_counter() - start, values

    def fleet_warm():
        fleet = FleetService({device: trainer for device in DEVICES})
        for network in NETWORKS:  # steady state: DFGs partitioned, caches hot
            fleet.predict_model_fleet(network, seed=0)
        start = time.perf_counter()
        values = [
            fleet.predict_model(network, device, seed=0).predicted_latency_s
            for network, device in queries
        ]
        return time.perf_counter() - start, values

    (naive_s, naive_values), (cold_s, cold_values), (warm_s, warm_values) = run_once(
        benchmark, lambda: (naive_loop(), fleet_cold(), fleet_warm())
    )

    rows = [
        {"mode": "naive per-kernel loop", "seconds": naive_s,
         "model_queries_per_s": len(queries) / naive_s, "speedup": 1.0},
        {"mode": "fleet (cold cache)", "seconds": cold_s,
         "model_queries_per_s": len(queries) / cold_s, "speedup": naive_s / cold_s},
        {"mode": "fleet (warm cache)", "seconds": warm_s,
         "model_queries_per_s": len(queries) / warm_s, "speedup": naive_s / warm_s},
    ]
    print_table(
        f"Fleet throughput ({len(queries)} model queries = "
        f"{len(NETWORKS)} networks x {len(DEVICES)} devices x {QUERY_ROUNDS} rounds)",
        rows,
        ["mode", "seconds", "model_queries_per_s", "speedup"],
    )

    # Identical estimates on every path.
    np.testing.assert_allclose(cold_values, naive_values, rtol=1e-9)
    np.testing.assert_allclose(warm_values, naive_values, rtol=1e-9)

    # The headline contract: warm fleet serving is >= 3x the naive loop.
    assert naive_s / warm_s >= 3.0, (
        f"warm fleet speedup {naive_s / warm_s:.1f}x below the 3x contract"
    )
