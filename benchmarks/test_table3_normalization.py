"""Table 3: prediction error under different label-normalization methods.

The paper trains the cost model with Box-Cox, Yeo-Johnson, Quantile and raw
labels on three devices; Box-Cox gives the lowest error and raw labels the
highest (the model collapses toward the mean of the skewed distribution).
"""

import numpy as np
import pytest

from benchmarks.common import print_table, run_once
from benchmarks.conftest import BENCH_PREDICTOR, bench_training_config
from repro.core.trainer import Trainer
from repro.features.pipeline import featurize_records

DEVICES = ("t4", "k80")
METHODS = ("box-cox", "yeo-johnson", "quantile", "none")


@pytest.fixture(scope="module")
def table3_results(device_splits):
    rows = []
    for device in DEVICES:
        splits = device_splits[device]
        train_fs = featurize_records(splits.train, max_leaves=BENCH_PREDICTOR.max_leaves)
        valid_fs = featurize_records(splits.valid, max_leaves=BENCH_PREDICTOR.max_leaves)
        test_fs = featurize_records(splits.test, max_leaves=BENCH_PREDICTOR.max_leaves)
        row = {"device": device}
        for method in METHODS:
            trainer = Trainer(
                predictor_config=BENCH_PREDICTOR,
                config=bench_training_config(label_transform=method),
            )
            trainer.fit(train_fs, valid_fs)
            row[method] = trainer.evaluate(test_fs)["mape"]
        rows.append(row)
    return rows


def test_table3_normalization_ablation(benchmark, table3_results):
    rows = run_once(benchmark, lambda: table3_results)
    print_table("Table 3: MAPE by label normalization", rows, ["device", *METHODS])
    for row in rows:
        power_best = min(row["box-cox"], row["yeo-johnson"], row["quantile"])
        # Power/quantile normalization beats training on the raw labels.
        assert power_best < row["none"]
        # Box-Cox is the best or within 25% of the best normalization.
        assert row["box-cox"] <= power_best * 1.25
        # Raw labels produce a clearly degraded model on this skewed data.
        assert row["none"] > 0.3
