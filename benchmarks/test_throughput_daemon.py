"""Daemon load test: N concurrent clients vs sequential in-process serving.

The serving daemon exists so many tuner/optimizer processes can share one
warm, batched cost model instead of each paying library-mode setup and
per-query featurization on its own (TLP-style search loops are throughput
bound on exactly this).  This harness replays the same per-client workload
two ways:

* **sequential in-process** — the 16 client workloads run one after another,
  each through its own fresh ``FleetService`` (what 16 independent library
  callers cost today), and
* **concurrent daemon** — 16 threads, each with its own ``DaemonClient``
  connection, fire the same workloads at one ``ServingDaemon``; requests
  coalesce in the per-device micro-batching window.

Contracts asserted (the issue's acceptance criteria):

* daemon throughput >= 3x the sequential baseline,
* p99 latency <= 5x p50 under the configured ``max_wait_ms``,
* zero dropped requests below the admission limit,
* every wire answer bit-identical to a direct in-process prediction.

Results are also written to ``BENCH_daemon.json`` at the repository root to
start the daemon's perf trajectory.
"""

import json
import os
import threading
import time

import pytest

from benchmarks.common import print_table, run_once
from benchmarks.conftest import train_cdmpp
from repro.serving import DaemonClient, DaemonConfig, FleetService, ServingDaemon

NUM_CLIENTS = 16
REQUESTS_PER_CLIENT = 8
MAX_WAIT_MS = 10.0
# Each request is one of these (network, batch_size) model-level queries.
WORKLOAD = [("bert_tiny", 1), ("bert_tiny", 4), ("mobilenet_v2", 1), ("vgg16", 1)]

RESULTS_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                            "BENCH_daemon.json")


@pytest.fixture(scope="module")
def daemon_setup(device_splits):
    """A trained T4 model and the per-client request list."""
    splits = device_splits["t4"]
    trainer, _, _ = train_cdmpp(splits.train, splits.valid, epochs=8)
    requests = [WORKLOAD[i % len(WORKLOAD)] for i in range(REQUESTS_PER_CLIENT)]
    return trainer, requests


def _percentile(values, fraction):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))]


def test_daemon_throughput_vs_sequential(benchmark, daemon_setup):
    trainer, requests = daemon_setup
    total_requests = NUM_CLIENTS * REQUESTS_PER_CLIENT

    # Reference answers: direct in-process serving, computed once.
    reference_service = FleetService({"t4": trainer})
    reference = {
        (network, batch): reference_service.predict_model(
            network, device="t4", batch_size=batch, seed=0
        ).predicted_latency_s
        for network, batch in WORKLOAD
    }

    def sequential_in_process():
        """16 library callers, one after another, each with a cold service."""
        start = time.perf_counter()
        answers = []
        for _ in range(NUM_CLIENTS):
            service = FleetService({"t4": trainer})
            for network, batch in requests:
                prediction = service.predict_model(
                    network, device="t4", batch_size=batch, seed=0
                )
                answers.append(((network, batch), prediction.predicted_latency_s))
        return time.perf_counter() - start, answers

    def concurrent_daemon():
        """16 concurrent clients against one shared daemon."""
        config = DaemonConfig(
            port=0, max_wait_ms=MAX_WAIT_MS, max_batch_size=64, queue_limit=256
        )
        with ServingDaemon({"t4": trainer}, config) as daemon:
            host, port = daemon.address
            # Warm up: one pass over the distinct queries, so the timed phase
            # measures the steady state the daemon is built for.
            with DaemonClient(host, port) as warm:
                for network, batch in WORKLOAD:
                    warm.query(network, device="t4", batch_size=batch, seed=0)

            answers, latencies, errors = [], [], []
            lock = threading.Lock()
            barrier = threading.Barrier(NUM_CLIENTS)

            def client_thread() -> None:
                try:
                    with DaemonClient(host, port) as client:
                        barrier.wait()
                        for network, batch in requests:
                            t0 = time.perf_counter()
                            served = client.query(
                                network, device="t4", batch_size=batch, seed=0
                            )
                            elapsed = time.perf_counter() - t0
                            with lock:
                                answers.append(((network, batch), served["latency_s"]))
                                latencies.append(elapsed)
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)

            threads = [threading.Thread(target=client_thread) for _ in range(NUM_CLIENTS)]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            stats = daemon._stats_payload(None)["daemon"]
        assert not errors, errors
        return elapsed, answers, latencies, stats

    (seq_s, seq_answers), (daemon_s, daemon_answers, latencies, stats) = run_once(
        benchmark, lambda: (sequential_in_process(), concurrent_daemon())
    )

    seq_qps = total_requests / seq_s
    daemon_qps = total_requests / daemon_s
    speedup = seq_s / daemon_s
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)

    rows = [
        {"mode": "sequential in-process (16 cold callers)", "seconds": seq_s,
         "queries_per_s": seq_qps, "speedup": 1.0},
        {"mode": f"daemon ({NUM_CLIENTS} concurrent clients)", "seconds": daemon_s,
         "queries_per_s": daemon_qps, "speedup": speedup},
    ]
    print_table(
        f"Daemon load test ({total_requests} model queries, max_wait={MAX_WAIT_MS}ms, T4)",
        rows,
        ["mode", "seconds", "queries_per_s", "speedup"],
    )
    print(f"latency p50={p50 * 1e3:.2f}ms p99={p99 * 1e3:.2f}ms "
          f"(p99/p50={p99 / p50:.2f}); batches={stats['batches']}, "
          f"rejected={stats['rejected_overloaded']}, shed={stats['shed_deadline']}")

    # Bit-identical to direct in-process predictions, on both paths.
    for key, value in seq_answers + daemon_answers:
        assert value == reference[key], (key, value, reference[key])
    assert len(daemon_answers) == total_requests  # zero drops below the limit
    assert stats["rejected_overloaded"] == 0
    assert stats["shed_deadline"] == 0

    # Headline contracts.
    assert speedup >= 3.0, f"daemon speedup {speedup:.1f}x below the 3x contract"
    assert p99 <= 5.0 * p50, f"p99 {p99 * 1e3:.2f}ms > 5x p50 {p50 * 1e3:.2f}ms"

    with open(RESULTS_PATH, "w") as handle:
        json.dump(
            {
                "benchmark": "daemon_load_test",
                "clients": NUM_CLIENTS,
                "requests_per_client": REQUESTS_PER_CLIENT,
                "total_requests": total_requests,
                "max_wait_ms": MAX_WAIT_MS,
                "sequential_seconds": seq_s,
                "sequential_qps": seq_qps,
                "daemon_seconds": daemon_s,
                "daemon_qps": daemon_qps,
                "speedup": speedup,
                "latency_p50_ms": p50 * 1e3,
                "latency_p99_ms": p99 * 1e3,
                "batches": stats["batches"],
                "rejected_overloaded": stats["rejected_overloaded"],
                "shed_deadline": stats["shed_deadline"],
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
    print(f"wrote {RESULTS_PATH}")
