"""Figs. 9 and 17: end-to-end model latency prediction (cross-model learning).

The per-program predictions of each cost model drive the replayer; the
predicted iteration time is compared against the simulated ground truth for
several networks and batch sizes, including the HL-100 accelerator case
(Fig. 9c) where convolution/GEMM nodes are split across GEMM engines.
"""

import pytest

from benchmarks.common import BENCH_SEED, print_table, run_once
from repro.baselines import TiramisuCostModel, XGBoostCostModel
from repro.features.pipeline import featurize_programs
from repro.profiler.records import MeasureRecord
from repro.replay.e2e import measure_end_to_end, predict_end_to_end

WORKLOADS = (("bert_tiny", 1), ("mobilenet_v2", 1), ("vgg16", 1))


def _relative_error(predicted: float, truth: float) -> float:
    return abs(predicted - truth) / max(truth, 1e-12)


@pytest.fixture(scope="module")
def fig9_results(t4_cdmpp, device_splits):
    trainer = t4_cdmpp["trainer"]
    splits = device_splits["t4"]

    xgb = XGBoostCostModel(n_estimators=50, seed=BENCH_SEED)
    xgb.fit(splits.train)
    tiramisu = TiramisuCostModel(epochs=1, max_train_samples=150, seed=BENCH_SEED)
    tiramisu.fit(splits.train)

    def cdmpp_cost(programs):
        features = featurize_programs(programs, "t4", max_leaves=trainer.predictor.config.max_leaves)
        predictions = trainer.predict(features)
        return dict(zip(features.task_keys, predictions))

    def baseline_cost(model):
        def cost(programs):
            records = [MeasureRecord(program=p, device="t4", latency_s=1.0) for p in programs]
            predictions = model.predict(records)
            return {p.task.workload_key: float(v) for p, v in zip(programs, predictions)}

        return cost

    rows = []
    for network, batch_size in WORKLOADS:
        truth = measure_end_to_end(network, "t4", seed=BENCH_SEED).iteration_time_s
        cdmpp_pred = predict_end_to_end(network, "t4", cdmpp_cost, seed=BENCH_SEED).iteration_time_s
        xgb_pred = predict_end_to_end(network, "t4", baseline_cost(xgb), seed=BENCH_SEED).iteration_time_s
        tir_pred = predict_end_to_end(network, "t4", baseline_cost(tiramisu), seed=BENCH_SEED).iteration_time_s
        rows.append(
            {
                "network": f"{network} (bs={batch_size})",
                "truth_ms": truth * 1e3,
                "cdmpp_ms": cdmpp_pred * 1e3,
                "cdmpp_err": _relative_error(cdmpp_pred, truth),
                "xgboost_err": _relative_error(xgb_pred, truth),
                "tiramisu_err": _relative_error(tir_pred, truth),
            }
        )

    # Fig. 9c: the accelerator case exercises GEMM-engine splitting.
    hl_truth = measure_end_to_end("bert_tiny", "hl100", seed=BENCH_SEED)
    rows_hl = {
        "truth_ms": hl_truth.iteration_time_s * 1e3,
        "split_nodes": sum(1 for name in hl_truth.timeline if "#engine" in name),
    }
    return {"rows": rows, "hl100": rows_hl}


def test_fig9_end_to_end_cross_model(benchmark, fig9_results):
    result = run_once(benchmark, lambda: fig9_results)
    rows = result["rows"]
    print_table(
        "Fig. 9/17: end-to-end prediction error on T4",
        rows,
        ["network", "truth_ms", "cdmpp_ms", "cdmpp_err", "xgboost_err", "tiramisu_err"],
    )
    mean_cdmpp = sum(r["cdmpp_err"] for r in rows) / len(rows)
    mean_tiramisu = sum(r["tiramisu_err"] for r in rows) / len(rows)
    # Paper shape: CDMPP's end-to-end error is small (12.4% average in the
    # paper); Tiramisu's is catastrophic (293% in the paper).
    assert mean_cdmpp < 0.45
    assert mean_cdmpp < mean_tiramisu / 2
    for row in rows:
        assert row["cdmpp_err"] < 0.8


def test_fig9c_hl100_replay_uses_gemm_engines(benchmark, fig9_results):
    result = run_once(benchmark, lambda: fig9_results)
    print_table("Fig. 9c: HL-100 end-to-end replay", [result["hl100"]], ["truth_ms", "split_nodes"])
    assert result["hl100"]["split_nodes"] > 0
    assert result["hl100"]["truth_ms"] > 0
