"""Fig. 11: latent representations before vs after cross-device fine-tuning.

Target device: EPYC.  The quantitative proxies for the t-SNE plots are the
CMD distance between source and target latents and the mixing (domain
overlap) of their 2-D projection.
"""

import numpy as np
import pytest

from benchmarks.common import BENCH_FINETUNE_EPOCHS, BENCH_SEED, print_table, run_once
from benchmarks.conftest import BENCH_PREDICTOR
from repro.analysis.projection import domain_overlap, pca_project
from repro.core.cmd import cmd_distance
from repro.core.finetune import FineTuner
from repro.features.pipeline import featurize_records


@pytest.fixture(scope="module")
def fig11_results(gpu_source_cdmpp, device_splits):
    trainer = gpu_source_cdmpp["trainer"]
    source_fs = gpu_source_cdmpp["train_features"]
    target_records = device_splits["epyc-7452"].train
    target_fs = featurize_records(target_records, max_leaves=BENCH_PREDICTOR.max_leaves)

    def snapshot(model):
        source_latent = model.latent(source_fs)
        target_latent = model.latent(target_fs)
        projection = pca_project(np.vstack([source_latent, target_latent]), dim=2)
        labels = np.array([0] * len(source_latent) + [1] * len(target_latent))
        return {
            "cmd": cmd_distance(source_latent, target_latent),
            "overlap": domain_overlap(projection, labels, k=5),
        }

    before = snapshot(trainer)
    # Fine-tuning clones the shared fixture's trainer, so no state backup /
    # restore is needed to keep it reusable.
    finetuner = FineTuner(trainer)
    finetuner.finetune(source_fs, target_fs, epochs=BENCH_FINETUNE_EPOCHS, alpha=2.0)
    after = snapshot(finetuner.trainer)
    return {"before": before, "after": after}


def test_fig11_finetuning_reduces_device_shift(benchmark, fig11_results):
    result = run_once(benchmark, lambda: fig11_results)
    rows = [
        {"stage": "before fine-tuning", **result["before"]},
        {"stage": "after fine-tuning", **result["after"]},
    ]
    print_table("Fig. 11: latent shift GPU sources vs EPYC target", rows, ["stage", "cmd", "overlap"])
    # Fine-tuning reduces the distribution shift between source GPUs and the
    # CPU target in the latent space.
    assert result["after"]["cmd"] < result["before"]["cmd"]
    assert result["after"]["overlap"] >= result["before"]["overlap"] * 0.8
