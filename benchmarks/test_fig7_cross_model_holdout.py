"""Figs. 7 and 15: cross-model prediction on hold-out networks.

Protocol: pre-train on every model except the hold-out network, then
fine-tune with input features sampled from the hold-out network (CMD term
only -- no target labels) and evaluate on the hold-out network's records.
"""

import numpy as np
import pytest

from benchmarks.common import (
    BENCH_FINETUNE_EPOCHS,
    BENCH_SEED,
    print_table,
    run_once,
)
from benchmarks.conftest import BENCH_PREDICTOR, train_cdmpp
from repro.baselines import XGBoostCostModel
from repro.core.finetune import FineTuner
from repro.dataset.splits import split_dataset
from repro.features.pipeline import featurize_records

HOLDOUT_NETWORKS = ("bert_tiny", "mobilenet_v2")
DEVICES = ("t4", "epyc-7452")


@pytest.fixture(scope="module")
def fig7_results(bench_dataset):
    rows = []
    for device in DEVICES:
        records = bench_dataset.records(device)
        for network in HOLDOUT_NETWORKS:
            splits = split_dataset(records, holdout_models=(network,), seed=BENCH_SEED)
            trainer, _, train_fs = train_cdmpp(splits.train, splits.valid)
            holdout_fs = featurize_records(splits.holdout, max_leaves=BENCH_PREDICTOR.max_leaves)

            before = trainer.evaluate(holdout_fs)["mape"]
            finetuner = FineTuner(trainer)  # fine-tunes a detached clone
            finetuner.finetune(
                source=train_fs,
                target=holdout_fs,
                epochs=BENCH_FINETUNE_EPOCHS,
            )
            after = finetuner.trainer.evaluate(holdout_fs)["mape"]

            xgb = XGBoostCostModel(n_estimators=50, seed=BENCH_SEED)
            xgb.fit(splits.train)
            xgb_mape = xgb.evaluate(splits.holdout)["mape"]

            rows.append(
                {
                    "device": device,
                    "holdout_network": network,
                    "cdmpp_mape": after,
                    "cdmpp_no_finetune_mape": before,
                    "xgboost_mape": xgb_mape,
                }
            )
    return rows


def test_fig7_holdout_network_error(benchmark, fig7_results):
    rows = run_once(benchmark, lambda: fig7_results)
    print_table(
        "Fig. 7/15: cross-model MAPE on hold-out networks",
        rows,
        ["device", "holdout_network", "cdmpp_mape", "cdmpp_no_finetune_mape", "xgboost_mape"],
    )
    for row in rows:
        # Cross-model shift is real: hold-out error is bounded but clearly
        # above the i.i.d. pre-training error regime.
        assert np.isfinite(row["cdmpp_mape"])
        if row["holdout_network"] == "bert_tiny":
            # The transformer-family hold-out stays in a usable regime and the
            # unlabeled CMD fine-tuning must not blow the predictor up.  The
            # MobileNet-V2 hold-out exhibits a much larger shift, which the
            # paper's own appendix (Fig. 15/16) also reports for every method,
            # so only a loose bound is asserted there.
            assert row["cdmpp_mape"] < 3.0
            assert row["cdmpp_mape"] < row["cdmpp_no_finetune_mape"] * 2.5
        else:
            assert row["cdmpp_mape"] < 10.0
