"""Onboarding throughput and accuracy: growing a fleet by one device.

The deployment loop the adaptation subsystem exists for: a fleet serves a
cross-device checkpoint, a new device arrives, and
:class:`repro.adaptation.OnboardingPipeline` clones the pre-trained model,
profiles only κ KMeans-selected tasks (Algorithm 1) on the newcomer and
CMD-regularize-finetunes the clone (Eq. 7).  This benchmark records what the
paper's Fig. 10/13 story promises in serving terms:

* adapted MAPE on the target device beats zero-shot MAPE (asserted),
* the parent model's weights stay bit-identical through onboarding
  (asserted — the shared-checkpoint-corruption regression),
* onboarding wall time is split into profiling vs fine-tuning, and the
  profiling cost is bounded by the measurement budget.
"""

import time

import numpy as np
import pytest

from benchmarks.common import print_table, run_once
from repro.adaptation import OnboardingPipeline
from repro.core.config import TrainingConfig
from repro.core.scale import get_scale
from repro.core.trainer import Trainer
from repro.dataset.splits import split_dataset
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.features.pipeline import featurize_records

SOURCE_DEVICE = "t4"
TARGET_DEVICE = "epyc-7452"  # GPU -> CPU, the hardest Fig. 10 combination
KAPPA = 8
SCHEDULES_PER_TASK = 4
FINETUNE_EPOCHS = 8
SEED = 0


@pytest.fixture(scope="module")
def onboarding_setup():
    """A source-device predictor plus the data a new device would be onboarded with."""
    scale = get_scale("tiny")
    dataset = generate_dataset(
        DatasetConfig(devices=(SOURCE_DEVICE, TARGET_DEVICE), seed=SEED, **scale.dataset_kwargs())
    )
    source_splits = split_dataset(dataset.records(SOURCE_DEVICE), seed=SEED)
    target_splits = split_dataset(dataset.records(TARGET_DEVICE), seed=SEED)

    trainer = Trainer(
        predictor_config=scale.predictor_config(),
        config=TrainingConfig(epochs=20, batch_size=scale.batch_size, seed=SEED),
    )
    source_train = featurize_records(source_splits.train, max_leaves=trainer.max_leaves)
    trainer.fit(
        source_train, featurize_records(source_splits.valid, max_leaves=trainer.max_leaves)
    )
    target_test = featurize_records(target_splits.test, max_leaves=trainer.max_leaves)
    return {
        "dataset": dataset,
        "trainer": trainer,
        "source_train": source_train,
        "target_test": target_test,
    }


def test_onboarding_improves_over_zero_shot(benchmark, onboarding_setup):
    trainer = onboarding_setup["trainer"]
    weights_before = {k: v.copy() for k, v in trainer.predictor.state_dict().items()}

    def onboard():
        start = time.perf_counter()
        pipeline = OnboardingPipeline(trainer, onboarding_setup["source_train"], seed=SEED)
        result = pipeline.onboard(
            TARGET_DEVICE,
            onboarding_setup["dataset"].tasks(),
            num_tasks=KAPPA,
            schedules_per_task=SCHEDULES_PER_TASK,
            epochs=FINETUNE_EPOCHS,
            patience=None,
            target_test=onboarding_setup["target_test"],
        )
        return result, time.perf_counter() - start

    result, wall_seconds = run_once(benchmark, onboard)

    rows = [
        {
            "stage": "zero-shot",
            "mape": result.zero_shot["mape"],
            "rmse_ms": result.zero_shot["rmse"] * 1e3,
            "records": 0,
            "seconds": 0.0,
        },
        {
            "stage": "adapted",
            "mape": result.adapted["mape"],
            "rmse_ms": result.adapted["rmse"] * 1e3,
            "records": result.profiled_records,
            "seconds": wall_seconds,
        },
    ]
    print_table(
        f"Onboarding {TARGET_DEVICE} from a {SOURCE_DEVICE}-trained model "
        f"(kappa={KAPPA}, {result.profiled_records} profiled records)",
        rows,
        ["stage", "mape", "rmse_ms", "records", "seconds"],
    )
    print(
        f"profiling {result.profiling_seconds:.3f}s, fine-tuning "
        f"{result.finetune.train_seconds:.3f}s "
        f"(best epoch {result.finetune.best_epoch}), "
        f"latent CMD {result.cmd_before:.4f} -> {result.cmd_after:.4f}"
    )

    # The headline contract: adaptation beats zero-shot on the new device.
    assert result.adapted["mape"] < result.zero_shot["mape"]
    # Profiling respected the implicit kappa x schedules budget.
    assert result.profiled_records <= KAPPA * SCHEDULES_PER_TASK
    # The parent model served to the rest of the fleet was never touched.
    weights_after = trainer.predictor.state_dict()
    assert all(np.array_equal(weights_before[k], weights_after[k]) for k in weights_before)


def test_onboarding_budget_caps_profiling(onboarding_setup):
    """A tight measurement budget bounds profiling cost, dropping whole tasks."""
    pipeline = OnboardingPipeline(
        onboarding_setup["trainer"], onboarding_setup["source_train"], seed=SEED
    )
    budget = KAPPA * SCHEDULES_PER_TASK // 4
    result = pipeline.onboard(
        TARGET_DEVICE,
        onboarding_setup["dataset"].tasks(),
        num_tasks=KAPPA,
        schedules_per_task=SCHEDULES_PER_TASK,
        max_measurements=budget,
        epochs=1,
    )
    assert result.profiled_records <= budget
    assert result.profiling_budget == budget
