"""Figs. 8 and 16: latent representations with and without CMD regularisation.

The paper visualises (t-SNE) how the CMD term pulls the hold-out network's
latent representations towards the source networks'.  The quantitative proxy
used here: the CMD distance between source and target latents, and the
domain-overlap of their 2-D projection, before vs after CMD fine-tuning.
"""

import pytest

from benchmarks.common import BENCH_FINETUNE_EPOCHS, BENCH_SEED, print_table, run_once
from benchmarks.conftest import BENCH_PREDICTOR, train_cdmpp
from repro.analysis.projection import domain_overlap, pca_project
from repro.core.cmd import cmd_distance
from repro.core.finetune import FineTuner
from repro.dataset.splits import split_dataset
from repro.features.pipeline import featurize_records

import numpy as np


@pytest.fixture(scope="module")
def fig8_results(bench_dataset):
    network = "bert_tiny"
    records = bench_dataset.records("t4")
    splits = split_dataset(records, holdout_models=(network,), seed=BENCH_SEED)
    trainer, _, train_fs = train_cdmpp(splits.train, splits.valid)
    target_fs = featurize_records(splits.holdout, max_leaves=BENCH_PREDICTOR.max_leaves)

    def snapshot(model):
        source_latent = model.latent(train_fs)
        target_latent = model.latent(target_fs)
        combined = np.vstack([source_latent, target_latent])
        labels = np.array([0] * len(source_latent) + [1] * len(target_latent))
        projection = pca_project(combined, dim=2)
        return {
            "cmd": cmd_distance(source_latent, target_latent),
            "overlap": domain_overlap(projection, labels, k=5),
        }

    before = snapshot(trainer)
    finetuner = FineTuner(trainer)  # fine-tunes a detached clone
    finetuner.finetune(train_fs, target_fs, epochs=BENCH_FINETUNE_EPOCHS, alpha=2.0)
    after = snapshot(finetuner.trainer)
    return {"before": before, "after": after, "network": network}


def test_fig8_cmd_regularisation_aligns_latents(benchmark, fig8_results):
    result = run_once(benchmark, lambda: fig8_results)
    rows = [
        {"stage": "w/o CMD fine-tuning", **result["before"]},
        {"stage": "w/ CMD fine-tuning", **result["after"]},
    ]
    print_table(
        f"Fig. 8/16: latent alignment for hold-out {result['network']}",
        rows,
        ["stage", "cmd", "overlap"],
    )
    # The CMD term reduces the latent distribution discrepancy between the
    # source networks and the target network ...
    assert result["after"]["cmd"] < result["before"]["cmd"]
    # ... and the domains become at least as mixed in the projected space.
    assert result["after"]["overlap"] >= result["before"]["overlap"] * 0.8
