"""Package metadata and the ``cdmpp`` console entry point.

The offline evaluation environment has no ``wheel`` package, so PEP 660
editable installs fail; use ``pip install -e . --no-use-pep517
--no-build-isolation`` (or ``python setup.py develop``) instead.
"""

from pathlib import Path

from setuptools import find_packages, setup

_VERSION_GLOBALS: dict = {}
exec((Path(__file__).parent / "src" / "repro" / "version.py").read_text(), _VERSION_GLOBALS)

setup(
    name="cdmpp-repro",
    version=_VERSION_GLOBALS["__version__"],
    description=(
        "Reproduction of CDMPP: a device-model agnostic framework for "
        "latency prediction of tensor programs (EuroSys 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["cdmpp=repro.cli:main"]},
)
