#!/usr/bin/env python
"""Smoke-check doc code blocks and example scripts so they can't rot.

For every fenced ``python`` block in README.md / docs/*.md, and for every
script under examples/, the script:

* compiles the source (syntax errors fail the check), and
* imports every top-level module it imports, verifying `from x import y`
  names exist (a renamed or deleted ``repro`` symbol fails the check).

Blocks fenced as ``text``/``bash``/anything else are ignored, so illustrative
snippets that are not runnable Python must not be labelled ``python``.

Usage:
    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import ast
import importlib
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

_FENCE = re.compile(r"^```(\w*)\s*$")


def iter_python_blocks(path: Path) -> Iterator[Tuple[int, str]]:
    """Yield (starting line number, source) of every ```python block."""
    language, start, lines = None, 0, []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        match = _FENCE.match(line.strip())
        if match is None:
            if language is not None:
                lines.append(line)
            continue
        if language is None:
            language, start, lines = match.group(1).lower(), number + 1, []
        else:
            if language == "python":
                yield start, "\n".join(lines)
            language = None
    if language == "python":  # unterminated fence: still check what we saw
        yield start, "\n".join(lines)


def check_block(path: Path, line: int, source: str) -> List[str]:
    """Compile one block and import its top-level imports; return errors."""
    location = f"{path.relative_to(REPO_ROOT)}:{line}"
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [f"{location}: syntax error in python block: {error}"]
    errors = []
    modules = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            modules.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            modules.add(node.module)
    for module in sorted(modules):
        try:
            importlib.import_module(module)
        except Exception as error:  # noqa: BLE001 - report any import failure
            errors.append(f"{location}: cannot import {module!r}: {error}")
    # Names imported `from module import name` must actually exist.
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            try:
                imported = importlib.import_module(node.module)
            except Exception:
                continue  # already reported above
            for alias in node.names:
                if alias.name != "*" and not hasattr(imported, alias.name):
                    errors.append(
                        f"{location}: {node.module!r} has no attribute {alias.name!r}"
                    )
    return errors


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    paths = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    errors: List[str] = []
    blocks = 0
    for path in paths:
        if not path.exists():
            errors.append(f"missing documentation file: {path}")
            continue
        for line, source in iter_python_blocks(path):
            blocks += 1
            errors.extend(check_block(path, line, source))
    # Example scripts are documentation too: compile + import-check each one.
    examples = sorted((REPO_ROOT / "examples").glob("*.py"))
    if not examples:
        errors.append(f"no example scripts found under {REPO_ROOT / 'examples'}")
    for path in examples:
        blocks += 1
        errors.extend(check_block(path, 1, path.read_text()))
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"\n{len(errors)} problem(s) in {blocks} python block(s)", file=sys.stderr)
        return 1
    print(
        f"checked {blocks} python block(s) across {len(paths)} doc file(s) "
        f"and {len(examples)} example(s): all good"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
