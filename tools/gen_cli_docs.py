#!/usr/bin/env python
"""Generate (or verify) docs/cli.md from the ``cdmpp`` argparse tree.

Usage:
    PYTHONPATH=src python tools/gen_cli_docs.py            # rewrite docs/cli.md
    PYTHONPATH=src python tools/gen_cli_docs.py --check    # fail if out of date

The CI docs job runs ``--check`` so the reference page cannot drift from the
actual parsers; regenerate and commit after changing anything in
``src/repro/cli.py``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_PATH = REPO_ROOT / "docs" / "cli.md"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify docs/cli.md matches the parsers instead of rewriting it",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.cli import render_cli_docs

    rendered = render_cli_docs()
    if args.check:
        current = DOC_PATH.read_text() if DOC_PATH.exists() else ""
        if current != rendered:
            print(
                "docs/cli.md is out of date with src/repro/cli.py; regenerate with:\n"
                "  PYTHONPATH=src python tools/gen_cli_docs.py",
                file=sys.stderr,
            )
            return 1
        print("docs/cli.md is up to date")
        return 0
    DOC_PATH.write_text(rendered)
    print(f"wrote {DOC_PATH} ({len(rendered.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
