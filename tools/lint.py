#!/usr/bin/env python
"""Run the repro static checker (see src/repro/analysis/).

Thin wrapper so the checker is runnable without setting PYTHONPATH:

    python tools/lint.py --strict src tests benchmarks examples tools

Exit codes follow tools/check_docs.py: 0 clean, 1 findings, 2 usage error.
Rule catalogue and suppression syntax: docs/analysis.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.analysis.lint import main as lint_main

    return lint_main(sys.argv[1:])


if __name__ == "__main__":
    sys.exit(main())
