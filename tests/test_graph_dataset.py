"""Tests for the model zoo, graphs, DFGs and the dataset substrate."""

import numpy as np
import pytest

from repro.dataset.splits import split_dataset
from repro.dataset.synthetic import synthetic_model_tasks
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.errors import DatasetError, ModelError, ReplayError
from repro.graph.dfg import DFGNode, TIRDataFlowGraph, build_dfg
from repro.graph.model import ModelGraph
from repro.graph.partition import extract_tasks_from_models, extract_unique_tasks, tasks_by_model
from repro.graph.zoo import MODEL_BUILDERS, build_model, list_models
from repro.ops import dense


class TestModelGraph:
    def test_add_and_lookup(self, dense_task):
        graph = ModelGraph("toy", batch_size=2)
        name = graph.add("fc", dense_task)
        assert name == "fc"
        assert graph.node("fc").task is dense_task
        assert "fc" in graph and len(graph) == 1

    def test_duplicate_node_rejected(self, dense_task):
        graph = ModelGraph("toy")
        graph.add("fc", dense_task)
        with pytest.raises(ModelError):
            graph.add("fc", dense_task)

    def test_unknown_dependency_rejected(self, dense_task):
        graph = ModelGraph("toy")
        with pytest.raises(ModelError):
            graph.add("fc", dense_task, inputs=["ghost"])

    def test_invalid_batch_size(self):
        with pytest.raises(ModelError):
            ModelGraph("toy", batch_size=0)

    def test_topo_order_respects_dependencies(self, dense_task, conv_task):
        graph = ModelGraph("toy")
        graph.add("a", conv_task)
        graph.add("b", dense_task, ["a"])
        graph.add("c", dense_task, ["a", "b"])
        order = graph.topo_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_unique_tasks_deduplicate(self, dense_task):
        graph = ModelGraph("toy")
        graph.add("a", dense_task)
        graph.add("b", dense_task, ["a"])
        assert len(graph.tasks()) == 2
        assert len(graph.unique_tasks()) == 1


class TestZoo:
    def test_list_models_matches_registry(self):
        assert set(list_models()) == set(MODEL_BUILDERS)

    def test_unknown_model_raises(self):
        with pytest.raises(ModelError):
            build_model("alexnet")

    @pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
    def test_every_zoo_model_builds_and_is_acyclic(self, name):
        graph = build_model(name, batch_size=1)
        assert len(graph) > 5
        assert len(graph.topo_order()) == len(graph)
        assert graph.total_naive_flops() > 0
        # All tasks carry the model name as their domain label.
        assert all(task.model == graph.name for task in graph.tasks())

    def test_resnet50_has_expected_structure(self):
        graph = build_model("resnet50")
        histogram = graph.op_type_histogram()
        assert histogram["conv2d"] == 53
        assert histogram["dense"] == 1

    def test_bert_base_larger_than_bert_tiny(self):
        assert build_model("bert_base").total_naive_flops() > 20 * build_model("bert_tiny").total_naive_flops()

    def test_batch_size_scales_flops(self):
        single = build_model("vgg16", batch_size=1).total_naive_flops()
        quadruple = build_model("vgg16", batch_size=4).total_naive_flops()
        assert quadruple > 3 * single


class TestPartition:
    def test_extract_unique_tasks(self):
        tasks = extract_unique_tasks("bert_tiny")
        assert len(tasks) > 5
        assert all(key == task.workload_key for key, task in tasks.items())

    def test_union_across_models_deduplicates(self):
        merged = extract_tasks_from_models(["bert_tiny", "bert_tiny"])
        single = extract_unique_tasks("bert_tiny")
        assert set(merged) == set(single)

    def test_tasks_by_model_keys(self):
        grouped = tasks_by_model(["bert_tiny", "mobilenet_v2"])
        assert set(grouped) == {"bert_tiny", "mobilenet_v2"}


class TestDFG:
    def test_build_dfg_matches_model(self):
        model = build_model("bert_tiny")
        dfg = build_dfg(model, seed=0)
        assert len(dfg) == len(model)
        assert len(dfg.topo_order()) == len(model)
        assert set(dfg.unique_programs()) == set(model.unique_tasks())

    def test_shared_workloads_share_programs(self):
        dfg = build_dfg(build_model("bert_tiny"), seed=0)
        programs = {}
        for node in dfg.nodes.values():
            programs.setdefault(node.task_key, node.program)
            assert node.program is programs[node.task_key]

    def test_assign_durations_and_total(self):
        dfg = build_dfg(build_model("bert_tiny"), seed=0)
        durations = {key: 1e-5 for key in dfg.unique_programs()}
        dfg.assign_durations(durations)
        assert dfg.total_duration() == pytest.approx(1e-5 * len(dfg))

    def test_assign_durations_missing_key_raises(self):
        dfg = build_dfg(build_model("bert_tiny"), seed=0)
        with pytest.raises(ReplayError):
            dfg.assign_durations({})

    def test_duplicate_dfg_node_rejected(self, dense_program):
        dfg = TIRDataFlowGraph("toy")
        dfg.add_node(DFGNode("a", dense_program))
        with pytest.raises(ReplayError):
            dfg.add_node(DFGNode("a", dense_program))


class TestSyntheticModels:
    def test_requested_number_of_models(self):
        tasks = synthetic_model_tasks(6, seed=0)
        assert len(tasks) == 6
        assert all(len(task_list) > 0 for task_list in tasks.values())

    def test_family_rotation_in_names(self):
        names = list(synthetic_model_tasks(4, seed=0))
        assert any("cnn" in name for name in names)
        assert any("transformer" in name for name in names)

    def test_deterministic_given_seed(self):
        first = synthetic_model_tasks(3, seed=9)
        second = synthetic_model_tasks(3, seed=9)
        for model in first:
            assert [t.workload_key for t in first[model]] == [t.workload_key for t in second[model]]


class TestDataset:
    def test_summary_and_accessors(self, tiny_dataset):
        summary = tiny_dataset.summary()
        assert summary["num_records"] == tiny_dataset.num_records()
        assert set(tiny_dataset.devices) == {"t4", "k80", "epyc-7452"}
        assert "bert_tiny" in tiny_dataset.models
        assert tiny_dataset.num_records("t4") == len(tiny_dataset.records("t4"))

    def test_same_tasks_measured_on_all_devices(self, tiny_dataset):
        keys_t4 = {r.task_key for r in tiny_dataset.records("t4")}
        keys_k80 = {r.task_key for r in tiny_dataset.records("k80")}
        assert keys_t4 == keys_k80

    def test_latencies_are_long_tailed(self, tiny_dataset):
        latencies = tiny_dataset.latencies("t4")
        assert latencies.min() > 0
        assert latencies.mean() > 2 * np.median(latencies)

    def test_unknown_device_or_model_raises(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.records("tpu")
        with pytest.raises(DatasetError):
            tiny_dataset.tasks_of_model("alexnet")

    def test_records_by_model_partition(self, tiny_dataset):
        grouped = tiny_dataset.records_by_model("t4")
        assert sum(len(v) for v in grouped.values()) == tiny_dataset.num_records("t4")

    def test_invalid_config_rejected(self):
        with pytest.raises(DatasetError):
            DatasetConfig(schedules_per_task=0)
        with pytest.raises(DatasetError):
            DatasetConfig(zoo_models=("alexnet",))

    def test_generation_is_deterministic(self):
        config = DatasetConfig(devices=("t4",), zoo_models=("bert_tiny",),
                               num_synthetic_models=0, schedules_per_task=2, seed=5)
        first = generate_dataset(config).latencies("t4")
        second = generate_dataset(config).latencies("t4")
        assert np.array_equal(first, second)


class TestSplits:
    def test_ratios_and_disjointness(self, tiny_dataset):
        records = tiny_dataset.records("t4")
        splits = split_dataset(records, seed=0)
        sizes = splits.sizes
        assert sizes["train"] > sizes["valid"] >= 0
        assert sizes["train"] + sizes["valid"] + sizes["test"] == len(records)

    def test_holdout_models_excluded_from_train(self, tiny_dataset):
        records = tiny_dataset.records("t4")
        splits = split_dataset(records, holdout_models=("bert_tiny",), seed=0)
        assert all(r.model != "bert_tiny" for r in splits.train)
        assert all(r.model == "bert_tiny" for r in splits.holdout)
        assert "bert_tiny" in splits.holdout_by_model()

    def test_group_by_task_keeps_tasks_together(self, tiny_dataset):
        records = tiny_dataset.records("t4")
        splits = split_dataset(records, seed=0, group_by_task=True)
        train_keys = {r.task_key for r in splits.train}
        test_keys = {r.task_key for r in splits.test}
        assert not train_keys & test_keys

    def test_invalid_ratios_raise(self, tiny_dataset):
        with pytest.raises(DatasetError):
            split_dataset(tiny_dataset.records("t4"), ratios=(0.5, 0.1, 0.1))

    def test_all_holdout_raises(self, tiny_dataset):
        records = [r for r in tiny_dataset.records("t4") if r.model == "bert_tiny"]
        with pytest.raises(DatasetError):
            split_dataset(records, holdout_models=("bert_tiny",))
