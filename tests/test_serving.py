"""Tests for the prediction-serving subsystem (repro.serving)."""

import numpy as np
import pytest

from repro.core.api import CDMPP
from repro.errors import ServingError, TrainingError
from repro.serving import (
    LRUCache,
    ModelRegistry,
    PredictionService,
    program_cache_key,
    schedule_fingerprint,
)
from repro.tir.lower import lower
from repro.tir.schedule import random_schedule


@pytest.fixture(scope="module")
def query_programs(tiny_dataset):
    """Distinct test programs for the serving tests (T4 records)."""
    programs, seen = [], set()
    for record in tiny_dataset.records("t4"):
        key = program_cache_key(record.program, "t4", 0)
        if key not in seen:
            seen.add(key)
            programs.append(record.program)
        if len(programs) == 12:
            break
    return programs


@pytest.fixture(scope="module")
def service(trained_trainer):
    return PredictionService(trained_trainer)


class TestLRUCache:
    def test_put_get_and_counters(self):
        cache = LRUCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1.0)
        assert cache.get("a") == 1.0
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh 'a' so 'b' is the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_peek_does_not_count_or_refresh(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        cache.put("c", 3)  # 'a' was NOT refreshed by peek, so it is evicted
        assert "a" not in cache
        assert (cache.hits, cache.misses) == (0, 0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)


class TestCacheKeys:
    def test_key_distinguishes_devices_and_padding(self, dense_program):
        key_t4 = program_cache_key(dense_program, "t4", 16)
        assert key_t4 == program_cache_key(dense_program, "t4", 16)
        assert key_t4 != program_cache_key(dense_program, "k80", 16)
        assert key_t4 != program_cache_key(dense_program, "t4", 32)

    def test_key_distinguishes_schedules_of_one_task(self, dense_task):
        p1 = lower(dense_task, random_schedule(dense_task, np.random.default_rng(1), "gpu"))
        p2 = lower(dense_task, random_schedule(dense_task, np.random.default_rng(2), "gpu"))
        assert p1.task.workload_key == p2.task.workload_key
        assert schedule_fingerprint(p1) != schedule_fingerprint(p2)
        assert program_cache_key(p1, "t4", 16) != program_cache_key(p2, "t4", 16)


class TestPredictionService:
    def test_batch_matches_single_program_queries(self, service, trained_trainer, query_programs):
        cdmpp = CDMPP.from_trainer(trained_trainer)
        naive = [cdmpp.predict_program(program, "t4") for program in query_programs]
        batched = service.predict(query_programs, "t4")
        np.testing.assert_allclose(batched, naive, rtol=1e-9)

    def test_cache_hit_miss_accounting(self, trained_trainer, query_programs):
        service = PredictionService(trained_trainer)
        first = service.predict(query_programs, "t4")
        n = len(query_programs)
        assert service.prediction_cache.misses == n
        assert service.prediction_cache.hits == 0
        assert service.stats.programs_featurized == n
        assert service.stats.batches == 1

        second = service.predict(query_programs, "t4")
        np.testing.assert_allclose(second, first)
        assert service.prediction_cache.hits == n
        assert service.stats.programs_featurized == n  # nothing re-featurized
        assert service.stats.batches == 1  # no new predictor call either

    def test_submit_flush_lifecycle(self, trained_trainer, query_programs):
        service = PredictionService(trained_trainer)
        tickets = [service.submit(program, "t4") for program in query_programs]
        assert service.pending == len(query_programs)
        assert not tickets[0].done
        resolved = service.flush()
        assert resolved == len(query_programs)
        assert service.pending == 0
        assert all(ticket.done for ticket in tickets)
        assert all(ticket.result() > 0 for ticket in tickets)

    def test_ticket_result_triggers_flush(self, trained_trainer, query_programs):
        service = PredictionService(trained_trainer)
        ticket = service.submit(query_programs[0], "t4")
        assert not ticket.done
        assert ticket.result() > 0  # implicit flush
        assert service.pending == 0

    def test_duplicate_submissions_coalesce(self, trained_trainer, query_programs):
        service = PredictionService(trained_trainer)
        program = query_programs[0]
        t1, t2 = service.submit(program, "t4"), service.submit(program, "t4")
        assert service.pending == 1
        assert service.stats.coalesced == 1
        service.flush()
        assert t1.result() == t2.result()
        assert service.stats.predictions_computed == 1

    def test_auto_flush_at_max_batch_size(self, trained_trainer, query_programs):
        service = PredictionService(trained_trainer, max_batch_size=4)
        tickets = [service.submit(program, "t4") for program in query_programs[:4]]
        assert service.pending == 0  # hit the batch limit -> flushed
        assert all(ticket.done for ticket in tickets)

    def test_cross_device_queries_in_one_flush(self, service, trained_trainer, query_programs):
        program = query_programs[0]
        t4 = service.predict_program(program, "t4")
        k80 = service.predict_program(program, "k80")
        cdmpp = CDMPP.from_trainer(trained_trainer)
        assert t4 == pytest.approx(cdmpp.predict_program(program, "t4"), rel=1e-9)
        assert k80 == pytest.approx(cdmpp.predict_program(program, "k80"), rel=1e-9)

    def test_swap_model_invalidates_predictions_keeps_features(
        self, trained_trainer, query_programs
    ):
        service = PredictionService(trained_trainer)
        service.predict(query_programs, "t4")
        featurized_before = service.stats.programs_featurized
        service.swap_model("t4", trained_trainer)
        assert len(service.prediction_cache) == 0
        assert len(service.feature_cache) == len(query_programs)
        service.predict(query_programs, "t4")
        assert service.stats.programs_featurized == featurized_before

    def test_unfitted_model_rejected(self):
        from repro.core.trainer import Trainer

        with pytest.raises(ServingError):
            PredictionService(Trainer())

    def test_unknown_device_without_fallback(self, trained_trainer, query_programs):
        service = PredictionService({"t4": trained_trainer})
        with pytest.raises(ServingError):
            service.submit(query_programs[0], "k80")

    def test_predict_model_matches_facade(self, service, trained_trainer):
        facade = CDMPP.from_trainer(trained_trainer).predict_model("bert_tiny", "t4", seed=0)
        served = service.predict_model("bert_tiny", "t4", seed=0)
        assert served.predicted_latency_s == pytest.approx(facade.predicted_latency_s, rel=1e-9)


class TestPerProgramPredictions:
    """Regression: programs sharing a workload key must not collapse."""

    def test_predict_latencies_returns_one_value_per_program(self, trained_trainer, dense_task):
        cdmpp = CDMPP.from_trainer(trained_trainer)
        p1 = lower(dense_task, random_schedule(dense_task, np.random.default_rng(1), "gpu"))
        p2 = lower(dense_task, random_schedule(dense_task, np.random.default_rng(2), "gpu"))
        assert p1.task.workload_key == p2.task.workload_key
        latencies = cdmpp.predict_latencies([p1, p2, p1], "t4")
        assert latencies.shape == (3,)
        assert latencies[0] == pytest.approx(latencies[2], rel=1e-12)
        assert latencies[0] == pytest.approx(cdmpp.predict_program(p1, "t4"), rel=1e-9)
        assert latencies[1] == pytest.approx(cdmpp.predict_program(p2, "t4"), rel=1e-9)

    def test_predict_programs_dedupes_on_first_occurrence(self, trained_trainer, dense_task):
        cdmpp = CDMPP.from_trainer(trained_trainer)
        p1 = lower(dense_task, random_schedule(dense_task, np.random.default_rng(1), "gpu"))
        p2 = lower(dense_task, random_schedule(dense_task, np.random.default_rng(2), "gpu"))
        result = cdmpp.predict_programs([p1, p2], "t4")
        assert list(result) == [p1.task.workload_key]
        assert result[p1.task.workload_key] == pytest.approx(
            cdmpp.predict_program(p1, "t4"), rel=1e-9
        )

    def test_service_keeps_distinct_schedules_distinct(self, service, dense_task):
        p1 = lower(dense_task, random_schedule(dense_task, np.random.default_rng(1), "gpu"))
        p2 = lower(dense_task, random_schedule(dense_task, np.random.default_rng(2), "gpu"))
        values = service.predict([p1, p2], "t4")
        assert values[0] != values[1]


class TestModelRegistry:
    def test_save_load_roundtrip(self, trained_trainer, t4_features, tmp_path):
        _, _, test = t4_features
        registry = ModelRegistry(tmp_path / "registry")
        registry.save("t4-tiny", trained_trainer, device="t4", scale="tiny")
        restored = registry.load("t4-tiny")
        np.testing.assert_allclose(
            restored.predict(test), trained_trainer.predict(test), rtol=1e-10
        )

    def test_listing_exists_and_describe(self, trained_trainer, tmp_path):
        registry = ModelRegistry(tmp_path)
        assert registry.list() == []
        assert not registry.exists("t4-tiny")
        registry.save("t4-tiny", trained_trainer, device="t4", scale="tiny")
        registry.save("k80-tiny", trained_trainer, device="k80", scale="tiny")
        assert registry.list() == ["k80-tiny", "t4-tiny"]
        assert "t4-tiny" in registry
        meta = registry.describe("t4-tiny")
        assert meta["extra"]["device"] == "t4"
        assert meta["extra"]["scale"] == "tiny"
        assert meta["extra"]["registry_name"] == "t4-tiny"

    def test_delete_and_missing_load(self, trained_trainer, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("m", trained_trainer)
        assert registry.delete("m")
        assert not registry.delete("m")
        with pytest.raises(TrainingError):
            registry.load("m")

    def test_invalid_names_rejected(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        for bad in ("", "../escape", ".hidden"):
            with pytest.raises(TrainingError):
                registry.path_for(bad)

    def test_service_from_registry(self, trained_trainer, query_programs, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("t4-tiny", trained_trainer)
        service = PredictionService.from_registry(registry, "t4-tiny")
        direct = PredictionService(trained_trainer)
        np.testing.assert_allclose(
            service.predict(query_programs, "t4"),
            direct.predict(query_programs, "t4"),
            rtol=1e-10,
        )


class TestConcurrency:
    """Regression tests for the thread-safety fixes in the serving layer.

    Before the serving daemon, ``PredictionService.submit``/``flush`` raced
    on the shared queue and stats counters, and ``DeviceShardedCache``
    eviction was not atomic.  These tests hammer the hot paths from many
    threads and assert the counters still reconcile exactly.
    """

    def test_submit_flush_hammer_totals_reconcile(self, trained_trainer, query_programs):
        import threading

        service = PredictionService(trained_trainer)
        num_threads, rounds = 8, 6
        errors = []
        barrier = threading.Barrier(num_threads)

        def hammer(worker: int) -> None:
            try:
                barrier.wait()
                for round_index in range(rounds):
                    tickets = [
                        service.submit(program, "t4")
                        for program in query_programs[: 4 + (worker + round_index) % 8]
                    ]
                    service.flush()
                    for ticket in tickets:
                        value = ticket.result()  # flushed by us or a peer
                        assert value > 0.0
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert service.pending == 0
        stats = service.describe_stats()
        expected_queries = sum(
            4 + (worker + round_index) % 8
            for worker in range(num_threads)
            for round_index in range(rounds)
        )
        # Every submit is either a cache hit, coalesced onto an in-flight
        # duplicate, or computed by a flush: the counters must add up exactly
        # — a lost update under the old unlocked counters breaks this.
        assert stats["queries"] == expected_queries
        cache_hits = stats["prediction_cache"]["hits"]
        assert cache_hits + stats["coalesced"] + stats["predictions_computed"] == expected_queries

    def test_concurrent_swap_model_never_serves_stale_cache(
        self, trained_trainer, query_programs
    ):
        import threading

        service = PredictionService({"t4": trained_trainer})
        clone = trained_trainer.clone()
        stop = threading.Event()
        errors = []

        def swapper() -> None:
            try:
                while not stop.is_set():
                    service.swap_model("t4", clone)
                    service.swap_model("t4", trained_trainer)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        thread = threading.Thread(target=swapper)
        thread.start()
        try:
            for _ in range(30):
                values = service.predict(query_programs[:6], "t4")
                assert np.all(values > 0.0)
        finally:
            stop.set()
            thread.join()
        assert not errors
        # Both models share weights (clone of a fitted trainer), so every
        # answer must equal the single-model reference bit for bit; a stale
        # cache entry written by a detached flush after a swap would differ.
        reference = PredictionService(trained_trainer).predict(query_programs[:6], "t4")
        np.testing.assert_array_equal(service.predict(query_programs[:6], "t4"), reference)

    def test_sharded_cache_concurrent_eviction_is_atomic(self):
        import threading

        from repro.serving import DeviceShardedCache

        cache = DeviceShardedCache(capacity_per_device=64)
        num_threads, per_thread = 8, 400
        errors = []
        barrier = threading.Barrier(num_threads + 1)

        def writer(worker: int) -> None:
            try:
                barrier.wait()
                for i in range(per_thread):
                    key = (f"wl-{worker}-{i}", 0, "t4", 0)
                    cache.put(key, float(i))
                    cache.get(key)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def invalidator() -> None:
            try:
                barrier.wait()
                for _ in range(200):
                    cache.invalidate_device("t4")
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(num_threads)]
        threads.append(threading.Thread(target=invalidator))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        shard = cache.shard("t4")
        assert len(shard) <= shard.capacity
        # Evictions + invalidations + survivors account for every insert
        # that was not a same-key refresh; with unique keys per write the
        # books must balance: nothing vanishes, nothing is counted twice.
        total_lookups = cache.hits + cache.misses
        assert total_lookups == num_threads * per_thread
